//! Single-pass streaming greedy partitioning (linear deterministic greedy, LDG-style).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_core::api::{
    assemble_outcome, PartitionOutcome, PartitionSpec, Partitioner, ProgressObserver,
};
use shp_core::ShpResult;
use shp_hypergraph::{BipartiteGraph, BucketId, DataId, Partition};
use std::time::Instant;

/// Streams the data vertices in random order; each vertex is placed in the bucket where it has
/// the most already-placed co-query neighbors, discounted by how full the bucket is and subject
/// to the `(1 + ε)` capacity. One pass, `O(|E|)` work — the cheapest locality-aware baseline.
#[derive(Debug, Clone)]
pub struct GreedyStreamPartitioner {
    seed: u64,
}

impl GreedyStreamPartitioner {
    /// Creates a streaming greedy partitioner with the given seed (controls the stream order).
    pub fn new(seed: u64) -> Self {
        GreedyStreamPartitioner { seed }
    }

    /// Direct entry point: one streaming pass into `k` buckets using the constructor seed.
    pub fn partition_into(&self, graph: &BipartiteGraph, k: u32, epsilon: f64) -> Partition {
        let n = graph.num_data();
        let mut rng = Pcg64::seed_from_u64(self.seed);
        let mut order: Vec<DataId> = (0..n as DataId).collect();
        order.shuffle(&mut rng);

        let capacity = (((n as f64 / k as f64).ceil()) * (1.0 + epsilon))
            .floor()
            .max(1.0) as u64;
        let mut assignment: Vec<Option<BucketId>> = vec![None; n];
        let mut loads = vec![0u64; k as usize];
        let mut scores = vec![0f64; k as usize];

        for &v in &order {
            for s in scores.iter_mut() {
                *s = 0.0;
            }
            // Count already-placed co-query neighbors per bucket.
            for &q in graph.data_neighbors(v) {
                for &u in graph.query_neighbors(q) {
                    if u == v {
                        continue;
                    }
                    if let Some(b) = assignment[u as usize] {
                        scores[b as usize] += 1.0;
                    }
                }
            }
            // LDG balance discount: scale by the remaining capacity fraction.
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for b in 0..k as usize {
                if loads[b] >= capacity {
                    continue;
                }
                let remaining = 1.0 - loads[b] as f64 / capacity as f64;
                let score = scores[b] * remaining + remaining * 1e-3;
                if score > best_score {
                    best_score = score;
                    best = b;
                }
            }
            assignment[v as usize] = Some(best as BucketId);
            loads[best] += 1;
        }

        let final_assignment: Vec<BucketId> = assignment
            .into_iter()
            .map(|b| b.expect("every vertex placed"))
            .collect();
        Partition::from_assignment(graph, k, final_assignment).expect("valid by construction")
    }
}

impl Partitioner for GreedyStreamPartitioner {
    fn name(&self) -> &str {
        "greedy"
    }

    /// The unified run takes the stream-order seed from the spec, not the constructor.
    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        _obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let start = Instant::now();
        let partition = GreedyStreamPartitioner::new(spec.seed).partition_into(
            graph,
            spec.num_buckets,
            spec.epsilon,
        );
        Ok(assemble_outcome(
            self.name(),
            graph,
            partition,
            spec,
            0,
            0,
            start.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_datagen::{planted_partition, PlantedConfig};
    use shp_hypergraph::average_fanout;

    #[test]
    fn greedy_beats_random_on_planted_partition() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_blocks: 4,
            block_size: 128,
            num_queries: 2_000,
            query_degree: 5,
            noise: 0.05,
            seed: 3,
        });
        let greedy = GreedyStreamPartitioner::new(1).partition_into(&g, 4, 0.05);
        let random = crate::RandomPartitioner::new(1).partition_into(&g, 4, 0.05);
        assert!(average_fanout(&g, &greedy) < average_fanout(&g, &random));
        assert!(greedy.is_balanced(0.06), "imbalance {}", greedy.imbalance());
    }

    #[test]
    fn greedy_respects_capacity_even_with_one_giant_query() {
        let mut b = shp_hypergraph::GraphBuilder::new();
        b.add_query((0..512u32).collect::<Vec<_>>());
        let g = b.build().unwrap();
        let p = GreedyStreamPartitioner::new(2).partition_into(&g, 4, 0.05);
        assert!(p.is_balanced(0.06), "imbalance {}", p.imbalance());
    }
}
