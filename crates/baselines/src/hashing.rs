//! Modulo hashing — the most common production sharding default.

use shp_core::api::{
    assemble_outcome, PartitionOutcome, PartitionSpec, Partitioner, ProgressObserver,
};
use shp_core::ShpResult;
use shp_hypergraph::{BipartiteGraph, BucketId, Partition};
use std::time::Instant;

/// Assigns data vertex `v` to bucket `hash(v) mod k`. Deterministic and stateless, like
/// consistent-hashing-based sharding before any locality optimization is applied.
#[derive(Debug, Clone, Default)]
pub struct HashPartitioner;

impl HashPartitioner {
    /// Direct entry point: partitions into `k` buckets by hashing vertex ids.
    pub fn partition_into(&self, graph: &BipartiteGraph, k: u32, _epsilon: f64) -> Partition {
        let assignment: Vec<BucketId> = (0..graph.num_data() as u32)
            .map(|v| {
                // SplitMix64-style mix so consecutive ids do not land in consecutive buckets.
                let mut x = v as u64;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((x ^ (x >> 31)) % k as u64) as BucketId
            })
            .collect();
        Partition::from_assignment(graph, k, assignment)
            .expect("assignment is valid by construction")
    }
}

impl Partitioner for HashPartitioner {
    fn name(&self) -> &str {
        "hash"
    }

    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        _obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let start = Instant::now();
        let partition = self.partition_into(graph, spec.num_buckets, spec.epsilon);
        Ok(assemble_outcome(
            self.name(),
            graph,
            partition,
            spec,
            0,
            0,
            start.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    #[test]
    fn hashing_is_deterministic_and_balanced() {
        let mut b = GraphBuilder::new();
        b.add_query((0..2_000u32).collect::<Vec<_>>());
        let g = b.build().unwrap();
        let p = HashPartitioner.partition_into(&g, 8, 0.05);
        assert_eq!(p, HashPartitioner.partition_into(&g, 8, 0.05));
        assert!(p.imbalance() < 0.15, "imbalance {}", p.imbalance());
        assert_eq!(Partitioner::name(&HashPartitioner), "hash");
    }
}
