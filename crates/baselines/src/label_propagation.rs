//! Capacity-constrained label propagation over the bipartite graph.

use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_core::api::{
    assemble_outcome, IterationEvent, PartitionOutcome, PartitionSpec, Partitioner,
    ProgressObserver,
};
use shp_core::ShpResult;
use shp_hypergraph::{average_fanout, BipartiteGraph, BucketId, DataId, Partition};
use std::time::Instant;

/// Iterative label propagation: starting from a random balanced assignment, every data vertex
/// repeatedly adopts the label (bucket) most common among its co-query neighbors, provided the
/// target bucket has spare capacity. A light-weight community-detection-style baseline that,
/// unlike SHP, has no explicit objective and no swap coordination.
#[derive(Debug, Clone)]
pub struct LabelPropagationPartitioner {
    iterations: usize,
    seed: u64,
}

impl LabelPropagationPartitioner {
    /// Creates a label-propagation partitioner running the given number of sweeps.
    pub fn new(iterations: usize, seed: u64) -> Self {
        LabelPropagationPartitioner { iterations, seed }
    }

    /// Direct entry point: runs the sweeps into `k` buckets using the constructor seed.
    pub fn partition_into(&self, graph: &BipartiteGraph, k: u32, epsilon: f64) -> Partition {
        self.sweep_loop(graph, k, epsilon, false).0
    }

    /// Like [`LabelPropagationPartitioner::partition_into`], additionally returning one
    /// [`IterationEvent`] per executed sweep (moves and resulting fanout; the fanout costs one
    /// full graph scan per sweep, so use [`LabelPropagationPartitioner::partition_into`] when
    /// the trace is not consumed).
    pub fn partition_traced(
        &self,
        graph: &BipartiteGraph,
        k: u32,
        epsilon: f64,
    ) -> (Partition, Vec<IterationEvent>) {
        self.sweep_loop(graph, k, epsilon, true)
    }

    /// The propagation loop. `with_fanout` controls whether each sweep's event carries the
    /// (O(|E|)-to-compute) average fanout or `NaN`.
    fn sweep_loop(
        &self,
        graph: &BipartiteGraph,
        k: u32,
        epsilon: f64,
        with_fanout: bool,
    ) -> (Partition, Vec<IterationEvent>) {
        let n = graph.num_data();
        let mut rng = Pcg64::seed_from_u64(self.seed);
        let mut partition = Partition::new_random(graph, k, &mut rng).expect("k >= 1 required");
        let capacity = (((n as f64 / k as f64).ceil()) * (1.0 + epsilon))
            .floor()
            .max(1.0) as u64;

        let mut counts = vec![0u64; k as usize];
        let mut events = Vec::new();
        for sweep in 0..self.iterations {
            let mut moved = 0usize;
            for v in 0..n as DataId {
                for c in counts.iter_mut() {
                    *c = 0;
                }
                for &q in graph.data_neighbors(v) {
                    for &u in graph.query_neighbors(q) {
                        if u != v {
                            counts[partition.bucket_of(u) as usize] += 1;
                        }
                    }
                }
                let current = partition.bucket_of(v);
                let mut best = current;
                let mut best_count = counts[current as usize];
                for b in 0..k {
                    if b != current
                        && counts[b as usize] > best_count
                        && partition.bucket_weight(b) + partition.vertex_weight(v) <= capacity
                    {
                        best = b;
                        best_count = counts[b as usize];
                    }
                }
                if best != current {
                    partition.assign(v, best as BucketId);
                    moved += 1;
                }
            }
            events.push(IterationEvent {
                iteration: sweep,
                moved,
                fanout: if with_fanout {
                    average_fanout(graph, &partition)
                } else {
                    f64::NAN
                },
            });
            if moved == 0 {
                break;
            }
        }
        (partition, events)
    }
}

impl Partitioner for LabelPropagationPartitioner {
    fn name(&self) -> &str {
        "label-propagation"
    }

    /// The unified run takes the seed and sweep cap from the spec (falling back to the
    /// constructor's sweep count when the spec sets no cap).
    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let start = Instant::now();
        let sweeps = spec.max_iterations.unwrap_or(self.iterations);
        // The per-sweep fanout costs a full graph scan, so it is only computed when the
        // observer actually consumes iteration events.
        let trace = obs.wants_iterations();
        let (partition, events) = LabelPropagationPartitioner::new(sweeps, spec.seed).sweep_loop(
            graph,
            spec.num_buckets,
            spec.epsilon,
            trace,
        );
        let mut moves = 0u64;
        for event in &events {
            if trace {
                obs.on_iteration(event);
            }
            moves += event.moved as u64;
        }
        let iterations = events.len();
        Ok(assemble_outcome(
            self.name(),
            graph,
            partition,
            spec,
            iterations,
            moves,
            start.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_datagen::{planted_partition, PlantedConfig};
    use shp_hypergraph::average_fanout;

    #[test]
    fn label_propagation_improves_over_random_within_capacity() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_blocks: 4,
            block_size: 128,
            num_queries: 2_000,
            query_degree: 5,
            noise: 0.05,
            seed: 5,
        });
        let lp = LabelPropagationPartitioner::new(10, 2).partition_into(&g, 4, 0.05);
        let random = crate::RandomPartitioner::new(2).partition_into(&g, 4, 0.05);
        assert!(average_fanout(&g, &lp) < average_fanout(&g, &random));
        assert!(lp.is_balanced(0.06), "imbalance {}", lp.imbalance());
    }

    #[test]
    fn zero_iterations_returns_the_random_start() {
        let (g, _) = planted_partition(&PlantedConfig::default());
        let p = LabelPropagationPartitioner::new(0, 3).partition_into(&g, 4, 0.05);
        let mut rng = Pcg64::seed_from_u64(3);
        let expected = Partition::new_random(&g, 4, &mut rng).unwrap();
        assert_eq!(p, expected);
    }
}
