//! Capacity-constrained label propagation over the bipartite graph.

use crate::Partitioner;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_hypergraph::{BipartiteGraph, BucketId, DataId, Partition};

/// Iterative label propagation: starting from a random balanced assignment, every data vertex
/// repeatedly adopts the label (bucket) most common among its co-query neighbors, provided the
/// target bucket has spare capacity. A light-weight community-detection-style baseline that,
/// unlike SHP, has no explicit objective and no swap coordination.
#[derive(Debug, Clone)]
pub struct LabelPropagationPartitioner {
    iterations: usize,
    seed: u64,
}

impl LabelPropagationPartitioner {
    /// Creates a label-propagation partitioner running the given number of sweeps.
    pub fn new(iterations: usize, seed: u64) -> Self {
        LabelPropagationPartitioner { iterations, seed }
    }
}

impl Partitioner for LabelPropagationPartitioner {
    fn name(&self) -> &'static str {
        "LabelPropagation"
    }

    fn partition(&self, graph: &BipartiteGraph, k: u32, epsilon: f64) -> Partition {
        let n = graph.num_data();
        let mut rng = Pcg64::seed_from_u64(self.seed);
        let mut partition = Partition::new_random(graph, k, &mut rng).expect("k >= 1 required");
        let capacity = (((n as f64 / k as f64).ceil()) * (1.0 + epsilon))
            .floor()
            .max(1.0) as u64;

        let mut counts = vec![0u64; k as usize];
        for _ in 0..self.iterations {
            let mut moved = 0usize;
            for v in 0..n as DataId {
                for c in counts.iter_mut() {
                    *c = 0;
                }
                for &q in graph.data_neighbors(v) {
                    for &u in graph.query_neighbors(q) {
                        if u != v {
                            counts[partition.bucket_of(u) as usize] += 1;
                        }
                    }
                }
                let current = partition.bucket_of(v);
                let mut best = current;
                let mut best_count = counts[current as usize];
                for b in 0..k {
                    if b != current
                        && counts[b as usize] > best_count
                        && partition.bucket_weight(b) + partition.vertex_weight(v) <= capacity
                    {
                        best = b;
                        best_count = counts[b as usize];
                    }
                }
                if best != current {
                    partition.assign(v, best as BucketId);
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }
        partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_datagen::{planted_partition, PlantedConfig};
    use shp_hypergraph::average_fanout;

    #[test]
    fn label_propagation_improves_over_random_within_capacity() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_blocks: 4,
            block_size: 128,
            num_queries: 2_000,
            query_degree: 5,
            noise: 0.05,
            seed: 5,
        });
        let lp = LabelPropagationPartitioner::new(10, 2).partition(&g, 4, 0.05);
        let random = crate::RandomPartitioner::new(2).partition(&g, 4, 0.05);
        assert!(average_fanout(&g, &lp) < average_fanout(&g, &random));
        assert!(lp.is_balanced(0.06), "imbalance {}", lp.imbalance());
    }

    #[test]
    fn zero_iterations_returns_the_random_start() {
        let (g, _) = planted_partition(&PlantedConfig::default());
        let p = LabelPropagationPartitioner::new(0, 3).partition(&g, 4, 0.05);
        let mut rng = Pcg64::seed_from_u64(3);
        let expected = Partition::new_random(&g, 4, &mut rng).unwrap();
        assert_eq!(p, expected);
    }
}
