//! # shp-baselines
//!
//! Baseline hypergraph partitioners used as comparison points for SHP.
//!
//! The paper compares SHP against hMetis, PaToH, Mondriaan, Parkway, and Zoltan — third-party
//! C/C++ packages that are not available in this reproduction. This crate provides from-scratch
//! baselines spanning the same design space:
//!
//! * [`RandomPartitioner`] — the "no optimization" lower bound (also what random sharding does
//!   in production before SHP is applied).
//! * [`HashPartitioner`] — deterministic modulo hashing, the most common sharding default.
//! * [`GreedyStreamPartitioner`] — a single-pass streaming heuristic (linear deterministic
//!   greedy): each vertex goes to the bucket where it has most co-query neighbors, subject to
//!   capacity.
//! * [`LabelPropagationPartitioner`] — iterative label propagation with capacity constraints,
//!   a light-weight community-detection-style baseline.
//! * [`MultilevelPartitioner`] — a single-machine multilevel partitioner (clique-net
//!   coarsening, greedy initial bisection, Fiduccia–Mattheyses refinement, recursive bisection
//!   to `k`), representative of the Mondriaan/Zoltan/hMetis family.
//!
//! Every baseline implements the **unified** [`shp_core::api::Partitioner`] trait, so tables,
//! sweeps, and the CLI treat SHP and the baselines identically. [`full_registry`] returns an
//! [`AlgorithmRegistry`] holding all nine algorithms of the workspace (the four SHP execution
//! paths plus the five baselines):
//!
//! ```
//! use shp_baselines::full_registry;
//! use shp_core::api::{NoopObserver, PartitionSpec};
//! use shp_hypergraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_query([0u32, 1, 2]);
//! b.add_query([3u32, 4, 5]);
//! let graph = b.build().unwrap();
//!
//! let registry = full_registry();
//! let spec = PartitionSpec::new(2).with_seed(7);
//! for name in ["shp2", "multilevel"] {
//!     let outcome = registry.run(name, &graph, &spec, &mut NoopObserver).unwrap();
//!     assert_eq!(outcome.partition.num_buckets(), 2);
//! }
//! ```
//!
//! The structs additionally keep their direct entry points (`partition_into`) for callers that
//! want a bare [`Partition`](shp_hypergraph::Partition) without spec plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod hashing;
pub mod label_propagation;
pub mod multilevel;
pub mod random;

pub use greedy::GreedyStreamPartitioner;
pub use hashing::HashPartitioner;
pub use label_propagation::LabelPropagationPartitioner;
pub use multilevel::{MultilevelConfig, MultilevelPartitioner};
pub use random::RandomPartitioner;

use shp_core::api::AlgorithmRegistry;

/// Registers the five baselines in `registry` under their canonical names:
/// `random`, `hash`, `greedy`, `label-propagation`, `multilevel`.
pub fn register_baselines(registry: &mut AlgorithmRegistry) {
    registry.register("random", |spec| Box::new(RandomPartitioner::new(spec.seed)));
    registry.register("hash", |_| Box::new(HashPartitioner));
    registry.register("greedy", |spec| {
        Box::new(GreedyStreamPartitioner::new(spec.seed))
    });
    registry.register("label-propagation", |spec| {
        Box::new(LabelPropagationPartitioner::new(
            spec.max_iterations.unwrap_or(15),
            spec.seed,
        ))
    });
    registry.register("multilevel", |spec| {
        Box::new(MultilevelPartitioner::new(MultilevelConfig {
            seed: spec.seed,
            ..MultilevelConfig::default()
        }))
    });
}

/// The full workspace registry: the four SHP execution paths of `shp-core` (`shp2`, `shpk`,
/// `distributed`, `incremental`) plus the five baselines of this crate.
pub fn full_registry() -> AlgorithmRegistry {
    let mut registry = AlgorithmRegistry::core();
    register_baselines(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_core::api::{NoopObserver, PartitionSpec, Partitioner};
    use shp_hypergraph::average_fanout;

    /// Every baseline must produce a valid, reasonably balanced partition on a small graph
    /// through the unified trait.
    #[test]
    fn all_baselines_produce_valid_partitions() {
        let graph = shp_datagen::planted_partition(&shp_datagen::PlantedConfig {
            num_blocks: 4,
            block_size: 64,
            num_queries: 512,
            query_degree: 4,
            noise: 0.1,
            seed: 1,
        })
        .0;
        let baselines: Vec<Box<dyn Partitioner>> = vec![
            Box::new(RandomPartitioner::new(1)),
            Box::new(HashPartitioner),
            Box::new(GreedyStreamPartitioner::new(1)),
            Box::new(LabelPropagationPartitioner::new(10, 1)),
            Box::new(MultilevelPartitioner::new(MultilevelConfig::default())),
        ];
        let spec = PartitionSpec::new(4).with_seed(1).with_epsilon(0.05);
        for b in &baselines {
            let outcome = b.partition(&graph, &spec, &mut NoopObserver).unwrap();
            let p = &outcome.partition;
            assert_eq!(p.num_buckets(), 4, "{}", b.name());
            assert_eq!(p.num_data(), graph.num_data(), "{}", b.name());
            assert!(
                p.is_balanced(spec.epsilon),
                "{} weights {:?}",
                b.name(),
                p.bucket_weights()
            );
            let fanout = average_fanout(&graph, p);
            assert!(
                (1.0..=4.0).contains(&fanout),
                "{} fanout {fanout}",
                b.name()
            );
            assert!((outcome.fanout - fanout).abs() < 1e-12);
        }
    }

    #[test]
    fn full_registry_holds_all_nine_algorithms() {
        let registry = full_registry();
        assert_eq!(
            registry.names(),
            vec![
                "distributed",
                "greedy",
                "hash",
                "incremental",
                "label-propagation",
                "multilevel",
                "random",
                "shp2",
                "shpk",
            ]
        );
        for name in registry.names() {
            assert!(registry.contains(&name));
            assert_eq!(registry.get(&name).unwrap().name(), name);
        }
    }
}
