//! # shp-baselines
//!
//! Baseline hypergraph partitioners used as comparison points for SHP.
//!
//! The paper compares SHP against hMetis, PaToH, Mondriaan, Parkway, and Zoltan — third-party
//! C/C++ packages that are not available in this reproduction. This crate provides from-scratch
//! baselines spanning the same design space:
//!
//! * [`RandomPartitioner`] — the "no optimization" lower bound (also what random sharding does
//!   in production before SHP is applied).
//! * [`HashPartitioner`] — deterministic modulo hashing, the most common sharding default.
//! * [`GreedyStreamPartitioner`] — a single-pass streaming heuristic (linear deterministic
//!   greedy): each vertex goes to the bucket where it has most co-query neighbors, subject to
//!   capacity.
//! * [`LabelPropagationPartitioner`] — iterative label propagation with capacity constraints,
//!   a light-weight community-detection-style baseline.
//! * [`MultilevelPartitioner`] — a single-machine multilevel partitioner (clique-net
//!   coarsening, greedy initial bisection, Fiduccia–Mattheyses refinement, recursive bisection
//!   to `k`), representative of the Mondriaan/Zoltan/hMetis family.
//!
//! All baselines implement the common [`Partitioner`] trait so the benchmark harness can treat
//! SHP and the baselines uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod hashing;
pub mod label_propagation;
pub mod multilevel;
pub mod random;

pub use greedy::GreedyStreamPartitioner;
pub use hashing::HashPartitioner;
pub use label_propagation::LabelPropagationPartitioner;
pub use multilevel::{MultilevelConfig, MultilevelPartitioner};
pub use random::RandomPartitioner;

use shp_hypergraph::{BipartiteGraph, Partition};

/// A k-way hypergraph partitioner.
pub trait Partitioner {
    /// Human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Partitions the data vertices of `graph` into `k` buckets with allowed imbalance `epsilon`.
    fn partition(&self, graph: &BipartiteGraph, k: u32, epsilon: f64) -> Partition;
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::average_fanout;

    /// Every baseline must produce a valid, reasonably balanced partition on a small graph.
    #[test]
    fn all_baselines_produce_valid_partitions() {
        let graph = shp_datagen::planted_partition(&shp_datagen::PlantedConfig {
            num_blocks: 4,
            block_size: 64,
            num_queries: 512,
            query_degree: 4,
            noise: 0.1,
            seed: 1,
        })
        .0;
        let baselines: Vec<Box<dyn Partitioner>> = vec![
            Box::new(RandomPartitioner::new(1)),
            Box::new(HashPartitioner),
            Box::new(GreedyStreamPartitioner::new(1)),
            Box::new(LabelPropagationPartitioner::new(10, 1)),
            Box::new(MultilevelPartitioner::new(MultilevelConfig::default())),
        ];
        for b in &baselines {
            let p = b.partition(&graph, 4, 0.05);
            assert_eq!(p.num_buckets(), 4, "{}", b.name());
            assert_eq!(p.num_data(), graph.num_data(), "{}", b.name());
            assert!(
                p.imbalance() < 0.35,
                "{} imbalance {}",
                b.name(),
                p.imbalance()
            );
            let fanout = average_fanout(&graph, &p);
            assert!(
                (1.0..=4.0).contains(&fanout),
                "{} fanout {fanout}",
                b.name()
            );
        }
    }
}
