//! A single-machine multilevel partitioner (the Mondriaan/Zoltan/hMetis stand-in).
//!
//! The multilevel paradigm the paper describes for the existing tools: (1) *coarsen* the
//! hypergraph by repeatedly merging heavily connected vertex pairs of its clique-net graph
//! (heavy-edge matching), (2) compute an *initial* bisection of the small coarse graph with a
//! balanced greedy growth, (3) *uncoarsen* while running Fiduccia–Mattheyses boundary
//! refinement at every level, and (4) apply the whole pipeline recursively to reach `k`
//! buckets. Being single-machine and requiring random access to the whole (clique-net) graph in
//! memory, it exhibits exactly the scalability limits discussed in Section 2 — which the
//! scalability benchmarks demonstrate against SHP.

use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use shp_core::api::{
    assemble_outcome, PartitionOutcome, PartitionSpec, Partitioner, ProgressObserver,
};
use shp_core::ShpResult;
use shp_hypergraph::{BipartiteGraph, BucketId, CliqueNetGraph, DataId, Partition};
use std::time::Instant;

/// Configuration of the multilevel partitioner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultilevelConfig {
    /// Stop coarsening once the graph has at most this many vertices.
    pub coarsen_until: usize,
    /// Maximum number of coarsening levels.
    pub max_levels: usize,
    /// FM refinement passes per uncoarsening level.
    pub refinement_passes: usize,
    /// Hyperedges larger than this are ignored when building the clique-net graph (the standard
    /// guard against the quadratic blow-up).
    pub max_hyperedge_size: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_until: 64,
            max_levels: 20,
            refinement_passes: 3,
            max_hyperedge_size: 500,
            seed: 1,
        }
    }
}

/// The multilevel recursive-bisection partitioner.
#[derive(Debug, Clone)]
pub struct MultilevelPartitioner {
    config: MultilevelConfig,
}

impl MultilevelPartitioner {
    /// Creates a multilevel partitioner.
    pub fn new(config: MultilevelConfig) -> Self {
        MultilevelPartitioner { config }
    }

    /// Direct entry point: the full multilevel pipeline into `k` buckets with the constructor
    /// configuration.
    pub fn partition_into(&self, graph: &BipartiteGraph, k: u32, epsilon: f64) -> Partition {
        self.partition_into_with_workers(graph, k, epsilon, 1)
    }

    /// Like [`MultilevelPartitioner::partition_into`], but building the clique-net graph (the
    /// dominant cost of the pipeline) over `workers` threads. The coarsening/refinement phases
    /// stay sequential, matching the single-machine tools this baseline stands in for.
    pub fn partition_into_with_workers(
        &self,
        graph: &BipartiteGraph,
        k: u32,
        epsilon: f64,
        workers: usize,
    ) -> Partition {
        // Work on the weighted clique-net graph of the hypergraph (Lemma 2's object).
        let clique =
            CliqueNetGraph::build_with_workers(graph, self.config.max_hyperedge_size, workers);
        let n = graph.num_data();
        let weights = vec![1u64; n];
        let assignment = recursive_bisect(
            &clique,
            &weights,
            &(0..n as DataId).collect::<Vec<_>>(),
            k,
            epsilon,
            &self.config,
            0,
        );
        Partition::from_assignment(graph, k, assignment).expect("valid by construction")
    }
}

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> &str {
        "multilevel"
    }

    /// The unified run keeps the constructor's pipeline options but takes the seed from the
    /// spec.
    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        _obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let start = Instant::now();
        let seeded = MultilevelPartitioner::new(MultilevelConfig {
            seed: spec.seed,
            ..self.config.clone()
        });
        let partition =
            seeded.partition_into_with_workers(graph, spec.num_buckets, spec.epsilon, spec.workers);
        Ok(assemble_outcome(
            self.name(),
            graph,
            partition,
            spec,
            0,
            0,
            start.elapsed(),
        ))
    }
}

/// Recursively bisects the vertex subset `vertices` into `k` parts, returning a full assignment
/// vector (entries outside `vertices` are untouched zeros at the top call because `vertices`
/// covers everything).
fn recursive_bisect(
    clique: &CliqueNetGraph,
    weights: &[u64],
    vertices: &[DataId],
    k: u32,
    epsilon: f64,
    config: &MultilevelConfig,
    bucket_offset: u32,
) -> Vec<BucketId> {
    let n_total = weights.len();
    let mut assignment = vec![0 as BucketId; n_total];
    if k <= 1 || vertices.len() <= 1 {
        for &v in vertices {
            assignment[v as usize] = bucket_offset;
        }
        return assignment;
    }
    // Split k into two halves; the left side receives proportionally more vertices when k is
    // odd.
    let k_left = k.div_ceil(2);
    let k_right = k - k_left;
    let left_fraction = k_left as f64 / k as f64;

    let side = bisect_subset(clique, weights, vertices, left_fraction, epsilon, config);

    let left: Vec<DataId> = vertices
        .iter()
        .copied()
        .filter(|&v| side[v as usize] == 0)
        .collect();
    let right: Vec<DataId> = vertices
        .iter()
        .copied()
        .filter(|&v| side[v as usize] == 1)
        .collect();

    let left_assignment = recursive_bisect(
        clique,
        weights,
        &left,
        k_left,
        epsilon,
        config,
        bucket_offset,
    );
    let right_assignment = recursive_bisect(
        clique,
        weights,
        &right,
        k_right,
        epsilon,
        config,
        bucket_offset + k_left,
    );
    for &v in &left {
        assignment[v as usize] = left_assignment[v as usize];
    }
    for &v in &right {
        assignment[v as usize] = right_assignment[v as usize];
    }
    assignment
}

/// Bisects a vertex subset into sides 0/1 with the multilevel pipeline. Returns a side vector
/// indexed by global vertex id (entries outside the subset are 0 but unused).
fn bisect_subset(
    clique: &CliqueNetGraph,
    weights: &[u64],
    vertices: &[DataId],
    left_fraction: f64,
    epsilon: f64,
    config: &MultilevelConfig,
) -> Vec<u8> {
    let n_total = weights.len();
    let mut side = vec![0u8; n_total];
    if vertices.len() <= 1 {
        return side;
    }

    // --- Coarsening: heavy-edge matching restricted to the subset. ---
    // `cluster[v]` maps each subset vertex to its coarse cluster representative.
    let in_subset: Vec<bool> = {
        let mut m = vec![false; n_total];
        for &v in vertices {
            m[v as usize] = true;
        }
        m
    };
    let mut cluster: Vec<u32> = (0..n_total as u32).collect();
    let mut active: Vec<DataId> = vertices.to_vec();
    let mut rng = Pcg64::seed_from_u64(config.seed ^ vertices.len() as u64);
    let mut levels = 0usize;
    while active.len() > config.coarsen_until && levels < config.max_levels {
        use rand::seq::SliceRandom;
        let mut order = active.clone();
        order.shuffle(&mut rng);
        let mut matched: Vec<bool> = vec![false; n_total];
        let mut merged_any = false;
        for &v in &order {
            if matched[v as usize] {
                continue;
            }
            // Find the heaviest unmatched neighbor inside the subset (in terms of current
            // clusters this is approximate but effective).
            let mut best: Option<(DataId, u32)> = None;
            for (u, w) in clique.neighbors(v) {
                if in_subset[u as usize] && !matched[u as usize] && u != v {
                    best = match best {
                        Some((_, bw)) if bw >= w => best,
                        _ => Some((u, w)),
                    };
                }
            }
            if let Some((u, _)) = best {
                matched[v as usize] = true;
                matched[u as usize] = true;
                // Merge u into v's cluster.
                let root = find_root(&cluster, v);
                let other = find_root(&cluster, u);
                cluster[other as usize] = root;
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
        // Recompute the active cluster representatives.
        let mut seen = vec![false; n_total];
        active = vertices
            .iter()
            .copied()
            .filter_map(|v| {
                let r = find_root(&cluster, v);
                if seen[r as usize] {
                    None
                } else {
                    seen[r as usize] = true;
                    Some(r)
                }
            })
            .collect();
        levels += 1;
    }

    // --- Initial bisection on the coarse clusters: greedy growth by cluster weight. ---
    let mut cluster_weight: Vec<u64> = vec![0; n_total];
    for &v in vertices {
        cluster_weight[find_root(&cluster, v) as usize] += weights[v as usize];
    }
    let total_weight: u64 = vertices.iter().map(|&v| weights[v as usize]).sum();
    let target_left = (total_weight as f64 * left_fraction).round() as u64;
    let mut coarse: Vec<DataId> = active.clone();
    coarse.sort_unstable_by_key(|&c| std::cmp::Reverse(cluster_weight[c as usize]));
    let mut left_weight = 0u64;
    let mut side_of_cluster: Vec<u8> = vec![1; n_total];
    for &c in &coarse {
        if left_weight < target_left {
            side_of_cluster[c as usize] = 0;
            left_weight += cluster_weight[c as usize];
        }
    }
    for &v in vertices {
        side[v as usize] = side_of_cluster[find_root(&cluster, v) as usize];
    }

    // --- FM refinement on the original (uncoarsened) subset. ---
    let capacity_left = ((total_weight as f64 * left_fraction) * (1.0 + epsilon)).floor() as u64;
    let capacity_right =
        ((total_weight as f64 * (1.0 - left_fraction)) * (1.0 + epsilon)).floor() as u64;
    let mut side_weight = [0u64; 2];
    for &v in vertices {
        side_weight[side[v as usize] as usize] += weights[v as usize];
    }
    for _ in 0..config.refinement_passes {
        let mut improved = false;
        // One FM pass: repeatedly move the best-gain vertex that keeps balance, never moving a
        // vertex twice per pass.
        let mut locked = vec![false; n_total];
        loop {
            let mut best: Option<(DataId, i64)> = None;
            for &v in vertices {
                if locked[v as usize] {
                    continue;
                }
                let from = side[v as usize];
                let to = 1 - from;
                let to_capacity = if to == 0 {
                    capacity_left
                } else {
                    capacity_right
                };
                if side_weight[to as usize] + weights[v as usize] > to_capacity {
                    continue;
                }
                // Gain = external weight − internal weight over the clique-net edges.
                let mut gain = 0i64;
                for (u, w) in clique.neighbors(v) {
                    if !in_subset[u as usize] {
                        continue;
                    }
                    if side[u as usize] == from {
                        gain -= w as i64;
                    } else {
                        gain += w as i64;
                    }
                }
                best = match best {
                    Some((_, bg)) if bg >= gain => best,
                    _ => Some((v, gain)),
                };
            }
            match best {
                Some((v, gain)) if gain > 0 => {
                    let from = side[v as usize];
                    let to = 1 - from;
                    side[v as usize] = to;
                    side_weight[from as usize] -= weights[v as usize];
                    side_weight[to as usize] += weights[v as usize];
                    locked[v as usize] = true;
                    improved = true;
                }
                _ => break,
            }
        }
        if !improved {
            break;
        }
    }
    side
}

/// Path-compression-free root lookup (clusters are shallow because each level re-roots).
fn find_root(cluster: &[u32], v: DataId) -> DataId {
    let mut r = v;
    let mut hops = 0;
    while cluster[r as usize] != r && hops < 64 {
        r = cluster[r as usize];
        hops += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_datagen::{planted_partition, PlantedConfig};
    use shp_hypergraph::average_fanout;

    #[test]
    fn multilevel_recovers_planted_partition_better_than_random() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_blocks: 4,
            block_size: 128,
            num_queries: 2_000,
            query_degree: 5,
            noise: 0.05,
            seed: 7,
        });
        let ml =
            MultilevelPartitioner::new(MultilevelConfig::default()).partition_into(&g, 4, 0.05);
        let random = crate::RandomPartitioner::new(7).partition_into(&g, 4, 0.05);
        let ml_fanout = average_fanout(&g, &ml);
        let random_fanout = average_fanout(&g, &random);
        assert!(
            ml_fanout < random_fanout * 0.6,
            "multilevel {ml_fanout} should beat random {random_fanout} clearly"
        );
        assert!(ml.imbalance() < 0.3, "imbalance {}", ml.imbalance());
    }

    #[test]
    fn multilevel_handles_odd_k() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_blocks: 3,
            block_size: 64,
            num_queries: 600,
            query_degree: 4,
            noise: 0.05,
            seed: 2,
        });
        let p = MultilevelPartitioner::new(MultilevelConfig::default()).partition_into(&g, 3, 0.05);
        assert_eq!(p.num_buckets(), 3);
        assert!(p.bucket_weights().iter().all(|&w| w > 0));
    }

    #[test]
    fn multilevel_is_deterministic() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_blocks: 2,
            block_size: 64,
            num_queries: 400,
            query_degree: 4,
            noise: 0.1,
            seed: 4,
        });
        let a = MultilevelPartitioner::new(MultilevelConfig::default()).partition_into(&g, 2, 0.05);
        let b = MultilevelPartitioner::new(MultilevelConfig::default()).partition_into(&g, 2, 0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn bisection_of_two_vertices() {
        let mut b = shp_hypergraph::GraphBuilder::new();
        b.add_query([0u32, 1]);
        let g = b.build().unwrap();
        let p = MultilevelPartitioner::new(MultilevelConfig::default()).partition_into(&g, 2, 0.0);
        assert_eq!(p.num_buckets(), 2);
        assert_ne!(p.bucket_of(0), p.bucket_of(1));
    }
}
