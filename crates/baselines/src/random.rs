//! Uniform random partitioning — the unoptimized baseline ("random sharding").

use crate::Partitioner;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_hypergraph::{BipartiteGraph, Partition};

/// Assigns every data vertex to an independently uniform random bucket.
#[derive(Debug, Clone)]
pub struct RandomPartitioner {
    seed: u64,
}

impl RandomPartitioner {
    /// Creates a random partitioner with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPartitioner { seed }
    }
}

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn partition(&self, graph: &BipartiteGraph, k: u32, _epsilon: f64) -> Partition {
        let mut rng = Pcg64::seed_from_u64(self.seed);
        Partition::new_random(graph, k, &mut rng).expect("k >= 1 required")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    #[test]
    fn random_partition_is_roughly_balanced_and_deterministic() {
        let mut b = GraphBuilder::new();
        for i in 0..999u32 {
            b.add_query([i, i + 1]);
        }
        let g = b.build().unwrap();
        let p1 = RandomPartitioner::new(7).partition(&g, 4, 0.05);
        let p2 = RandomPartitioner::new(7).partition(&g, 4, 0.05);
        assert_eq!(p1, p2);
        assert!(p1.imbalance() < 0.2);
        assert_eq!(RandomPartitioner::new(7).name(), "Random");
    }
}
