//! Uniform random partitioning — the unoptimized baseline ("random sharding").

use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_core::api::{
    assemble_outcome, PartitionOutcome, PartitionSpec, Partitioner, ProgressObserver,
};
use shp_core::ShpResult;
use shp_hypergraph::{BipartiteGraph, Partition};
use std::time::Instant;

/// Assigns every data vertex to an independently uniform random bucket.
#[derive(Debug, Clone)]
pub struct RandomPartitioner {
    seed: u64,
}

impl RandomPartitioner {
    /// Creates a random partitioner with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPartitioner { seed }
    }

    /// Direct entry point: partitions into `k` buckets using the constructor seed.
    pub fn partition_into(&self, graph: &BipartiteGraph, k: u32, _epsilon: f64) -> Partition {
        let mut rng = Pcg64::seed_from_u64(self.seed);
        Partition::new_random(graph, k, &mut rng).expect("k >= 1 required")
    }
}

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &str {
        "random"
    }

    /// The unified run takes the seed from the spec (not the constructor), so equal specs give
    /// equal partitions regardless of how the instance was built.
    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        _obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let start = Instant::now();
        let partition =
            RandomPartitioner::new(spec.seed).partition_into(graph, spec.num_buckets, spec.epsilon);
        Ok(assemble_outcome(
            self.name(),
            graph,
            partition,
            spec,
            0,
            0,
            start.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    #[test]
    fn random_partition_is_roughly_balanced_and_deterministic() {
        let mut b = GraphBuilder::new();
        for i in 0..999u32 {
            b.add_query([i, i + 1]);
        }
        let g = b.build().unwrap();
        let p1 = RandomPartitioner::new(7).partition_into(&g, 4, 0.05);
        let p2 = RandomPartitioner::new(7).partition_into(&g, 4, 0.05);
        assert_eq!(p1, p2);
        assert!(p1.imbalance() < 0.2);
        assert_eq!(Partitioner::name(&RandomPartitioner::new(7)), "random");
    }

    #[test]
    fn unified_run_respects_the_spec_seed_and_epsilon() {
        let mut b = GraphBuilder::new();
        for i in 0..999u32 {
            b.add_query([i, i + 1]);
        }
        let g = b.build().unwrap();
        let spec = PartitionSpec::new(4).with_seed(9).with_epsilon(0.0);
        let a = RandomPartitioner::new(1)
            .partition(&g, &spec, &mut shp_core::api::NoopObserver)
            .unwrap();
        let b2 = RandomPartitioner::new(2)
            .partition(&g, &spec, &mut shp_core::api::NoopObserver)
            .unwrap();
        // Constructor seeds differ, spec seeds agree: identical partitions.
        assert_eq!(a.partition, b2.partition);
        assert!(a.partition.is_balanced(0.0));
    }
}
