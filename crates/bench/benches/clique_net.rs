//! Micro-benchmark: clique-net graph construction (the object the multilevel baseline needs in
//! memory, and the reason the clique-net model does not scale — Section 3.1's discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shp_datagen::{power_law_bipartite, PowerLawConfig};
use shp_hypergraph::CliqueNetGraph;

fn bench_clique_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_net_construction");
    group.sample_size(10);
    for queries in [2_000usize, 8_000] {
        let graph = power_law_bipartite(&PowerLawConfig {
            num_queries: queries,
            num_data: queries,
            max_degree: 60,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(queries), &queries, |b, _| {
            b.iter(|| CliqueNetGraph::build(&graph, 500))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clique_net);
criterion_main!(benches);
