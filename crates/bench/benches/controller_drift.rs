//! Online repartitioning benchmark: the trace-record hot path and the hours-compressed
//! drift scenario from `shp-controller`.
//!
//! Two things are measured:
//!
//! * **The record path** — [`AccessTraceCollector::record`] as called from the serving hot
//!   loop, in ns per multiget. Before timing, a counting global allocator asserts the path
//!   performs **zero allocations**: the collector is a fixed arena of atomics, and a single
//!   stray `Vec` here would put an allocator hit on every served multiget.
//! * **The drift scenario** — key popularity rotates phase over phase while a live engine
//!   serves; a budgeted controller run is compared against the never-repartition baseline.
//!   Before timing, the headline invariants are asserted (CI smoke relies on these panicking
//!   on regression): the final drifted phase's fanout must be strictly better than the
//!   baseline's, and no epoch may move more keys than the migration budget.
//!
//! Headline numbers — record-path cost, per-phase fanout and tail latency, moved keys per
//! epoch, and the cumulative migration volume — land in `BENCH_controller.json` at the
//! repository root.

mod support;

use shp_bench::bench_json;
use shp_controller::{run_drift_scenario, AccessTraceCollector, DriftConfig};

#[global_allocator]
static ALLOC: support::CountingAllocator = support::CountingAllocator;

/// Multigets recorded per timed round of the record-path measurement.
const RECORDS_PER_ROUND: usize = 200_000;

/// A deterministic stream of multiget key-sets exercising every record path: co-access
/// samples of 2..=8 keys, plus interleaved singletons (counted, never sampled).
fn key_stream() -> Vec<Vec<u32>> {
    let mut state = 0xD21F_2017_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..512)
        .map(|_| {
            let r = next();
            let len = if r % 8 == 0 { 1 } else { 2 + (r % 7) as usize };
            (0..len)
                .map(|i| ((r >> 16).wrapping_add(i as u64 * 977) % 100_000) as u32)
                .collect()
        })
        .collect()
}

fn record_stream(collector: &AccessTraceCollector, stream: &[Vec<u32>], records: usize) {
    for i in 0..records {
        collector.record(&stream[i % stream.len()]);
    }
}

fn main() {
    let quick = criterion::quick_mode();
    let config = if quick {
        DriftConfig::default().quick()
    } else {
        DriftConfig::default()
    };
    println!(
        "controller_drift: {} keys on {} shards, {} phases x {} multigets, budget {} \
         keys/epoch{}",
        config.num_keys(),
        config.shards,
        config.phases,
        config.queries_per_phase,
        config.migration_budget,
        if quick { " (quick mode)" } else { "" }
    );

    // ---- Gate 1: the record path allocates nothing -------------------------------------
    let collector = AccessTraceCollector::new(1024, 0x5047);
    let stream = key_stream();
    record_stream(&collector, &stream, 4 * stream.len()); // warmup: fill the reservoir
    let before = support::alloc_snapshot();
    record_stream(&collector, &stream, RECORDS_PER_ROUND);
    let (allocs, bytes) = support::alloc_snapshot().delta(&before);
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "the trace record path must not allocate"
    );
    let trace_stats = collector.stats();
    assert_eq!(
        trace_stats.recorded,
        trace_stats.sampled
            + trace_stats.singleton
            + trace_stats.reservoir_skipped
            + trace_stats.contended,
        "trace accounting must be complete"
    );
    println!(
        "controller_drift: record path is allocation-free over {RECORDS_PER_ROUND} multigets \
         ({} reservoir bytes)",
        collector.memory_bytes()
    );

    // ---- Gate 2: the controller beats the baseline within budget -----------------------
    let with = run_drift_scenario(&config).expect("drift scenario");
    let without = run_drift_scenario(&DriftConfig {
        repartition_every: 0,
        ..config.clone()
    })
    .expect("baseline scenario");
    assert!(
        with.max_epoch_moved <= config.migration_budget,
        "budget violated: an epoch moved {} keys (budget {})",
        with.max_epoch_moved,
        config.migration_budget
    );
    assert!(
        with.final_phase_fanout() < without.final_phase_fanout(),
        "the controller must beat the never-repartition baseline: {} vs {}",
        with.final_phase_fanout(),
        without.final_phase_fanout()
    );
    let epochs: usize = with.phases.iter().map(|p| p.epochs.len()).sum();
    let recovery = 100.0 * (1.0 - with.final_phase_fanout() / without.final_phase_fanout());
    println!(
        "controller_drift: final phase fanout {:.4} vs baseline {:.4} ({recovery:.1}% lower); \
         {} keys moved over {epochs} epochs (largest {}, budget {})",
        with.final_phase_fanout(),
        without.final_phase_fanout(),
        with.cumulative_moved,
        with.max_epoch_moved,
        config.migration_budget
    );

    // ---- Measurements ------------------------------------------------------------------
    let rounds = support::rounds();
    let record = support::measure(
        rounds,
        || (),
        |()| record_stream(&collector, &stream, RECORDS_PER_ROUND),
    );
    let scenario = support::measure(
        rounds,
        || (),
        |()| {
            run_drift_scenario(&config).expect("drift scenario");
        },
    );
    println!(
        "controller_drift: record {:.1} ns/multiget, full scenario {:.1} ms",
        record.ns_per_item(RECORDS_PER_ROUND),
        scenario.secs_per_op * 1e3
    );

    let mut rows = vec![
        (
            "workload".to_string(),
            bench_json::render_metrics(&[
                ("keys", config.num_keys() as f64),
                ("shards", config.shards as f64),
                ("phases", config.phases as f64),
                ("queries_per_phase", config.queries_per_phase as f64),
                ("migration_budget", config.migration_budget as f64),
                ("reservoir_bytes", collector.memory_bytes() as f64),
            ]),
        ),
        (
            "trace_record".to_string(),
            bench_json::render_metrics(&[
                ("ns_per_multiget", record.ns_per_item(RECORDS_PER_ROUND)),
                ("allocs_per_op", record.allocs_per_op),
                ("alloc_bytes_per_op", record.bytes_per_op),
            ]),
        ),
        (
            "scenario".to_string(),
            bench_json::render_metrics(&[
                ("ms_per_run", scenario.secs_per_op * 1e3),
                ("controller_final_fanout", with.final_phase_fanout()),
                ("baseline_final_fanout", without.final_phase_fanout()),
                ("fanout_recovery_pct", recovery),
                ("cumulative_moved", with.cumulative_moved as f64),
                ("max_epoch_moved", with.max_epoch_moved as f64),
                (
                    "moved_per_epoch",
                    if epochs > 0 {
                        with.cumulative_moved as f64 / epochs as f64
                    } else {
                        0.0
                    },
                ),
                ("epochs", epochs as f64),
            ]),
        ),
    ];
    for (label, report) in [("controller", &with), ("baseline", &without)] {
        for phase in &report.phases {
            rows.push((
                format!("{label}_phase{}", phase.phase),
                bench_json::render_metrics(&[
                    ("mean_fanout", phase.mean_fanout),
                    ("p99", phase.p99),
                    ("p999", phase.p999),
                    (
                        "moved",
                        phase.epochs.iter().map(|e| e.moved_keys).sum::<usize>() as f64,
                    ),
                ]),
            ));
        }
    }
    let path = bench_json::repo_root().join(bench_json::BENCH_CONTROLLER_JSON_NAME);
    bench_json::update_section(
        &path,
        "controller_drift",
        &bench_json::render_section(&rows),
    )
    .expect("write BENCH_controller.json");
    println!("controller_drift: trajectory written to {}", path.display());
}
