//! Fault-tolerance benchmark: the kill → degrade → recover failure drill from
//! `shp-controller`.
//!
//! Before timing, every drill gate is asserted (CI smoke relies on these panicking on
//! regression):
//!
//! * **Correctness under faults** — zero wrong values served through failovers and hedges,
//!   and the unreplicated leg's typed partial results name exactly the keys placed on the
//!   dead shard (zero mismatches).
//! * **Availability** — with `replication = 2`, every phase of the incident and recovery
//!   stays at ≥ 99% complete queries while a primary is down.
//! * **Bounded recovery** — the dead shard drains to empty with no epoch moving more keys
//!   than the migration budget, and the post-recovery fanout returns to within 5% of the
//!   pre-incident baseline.
//! * **Determinism** — a second run of the same config produces the identical report.
//!
//! Headline numbers — per-phase fanout/p99/availability, retries, hedges won, the degraded
//! leg's availability, and the recovery churn — land in `BENCH_drill.json` at the
//! repository root.

mod support;

use shp_bench::bench_json;
use shp_controller::{run_drill_scenario, DrillConfig};

#[global_allocator]
static ALLOC: support::CountingAllocator = support::CountingAllocator;

fn main() {
    let quick = criterion::quick_mode();
    let config = if quick {
        DrillConfig::default().quick()
    } else {
        DrillConfig::default()
    };
    println!(
        "drill: {} keys on {} shards (replication {}), 4 phases x {} multigets, shard {} \
         crashes, budget {} keys/epoch{}",
        config.num_keys(),
        config.shards,
        config.replication,
        config.queries_per_phase,
        config.dead_shard,
        config.migration_budget,
        if quick { " (quick mode)" } else { "" }
    );

    // ---- Gates: correctness, availability, bounded recovery, determinism ---------------
    let report = run_drill_scenario(&config).expect("drill scenario");
    assert_eq!(
        report.wrong_values, 0,
        "failover/hedging served a wrong value"
    );
    assert_eq!(
        report.missing_mismatches, 0,
        "typed partial results were imprecise"
    );
    assert!(
        report.incident_availability() >= 0.99,
        "availability {} under the incident (gate: >= 0.99)",
        report.incident_availability()
    );
    assert!(
        report.max_epoch_moved <= config.migration_budget,
        "budget violated: a recovery epoch moved {} keys (budget {})",
        report.max_epoch_moved,
        config.migration_budget
    );
    assert_eq!(report.recovery_remaining, 0, "dead shard was not drained");
    assert!(
        report.post_fanout() <= 1.05 * report.baseline_fanout(),
        "post-recovery fanout {} vs baseline {}",
        report.post_fanout(),
        report.baseline_fanout()
    );
    let rerun = run_drill_scenario(&config).expect("drill rerun");
    assert_eq!(report, rerun, "the drill must be deterministic");

    let incident = &report.phases[1];
    println!(
        "drill: availability {:.4} through the incident ({} retries, {} hedges won), \
         unreplicated leg degrades to {:.4}; drained {} keys in {} epochs (largest {})",
        report.incident_availability(),
        incident.retries,
        incident.hedges_won,
        report.degraded_leg_availability,
        report.recovery_moved,
        report.recovery_epochs,
        report.max_epoch_moved
    );

    // ---- Measurement -------------------------------------------------------------------
    let rounds = support::rounds();
    let scenario = support::measure(
        rounds,
        || (),
        |()| {
            run_drill_scenario(&config).expect("drill scenario");
        },
    );
    println!("drill: full scenario {:.1} ms", scenario.secs_per_op * 1e3);

    let mut rows = vec![
        (
            "workload".to_string(),
            bench_json::render_metrics(&[
                ("keys", config.num_keys() as f64),
                ("shards", config.shards as f64),
                ("replication", config.replication as f64),
                ("queries_per_phase", config.queries_per_phase as f64),
                ("migration_budget", config.migration_budget as f64),
            ]),
        ),
        (
            "scenario".to_string(),
            bench_json::render_metrics(&[
                ("ms_per_run", scenario.secs_per_op * 1e3),
                ("incident_availability", report.incident_availability()),
                (
                    "degraded_leg_availability",
                    report.degraded_leg_availability,
                ),
                ("wrong_values", report.wrong_values as f64),
                ("missing_mismatches", report.missing_mismatches as f64),
                ("recovery_epochs", report.recovery_epochs as f64),
                ("recovery_moved", report.recovery_moved as f64),
                ("max_epoch_moved", report.max_epoch_moved as f64),
                ("recovery_remaining", report.recovery_remaining as f64),
            ]),
        ),
    ];
    for phase in &report.phases {
        rows.push((
            format!("phase_{}", phase.name),
            bench_json::render_metrics(&[
                ("mean_fanout", phase.mean_fanout),
                ("p99", phase.p99),
                ("availability", phase.availability),
                ("degraded_queries", phase.degraded_queries as f64),
                ("retries", phase.retries as f64),
                ("hedges_won", phase.hedges_won as f64),
            ]),
        ));
    }
    let path = bench_json::repo_root().join(bench_json::BENCH_DRILL_JSON_NAME);
    bench_json::update_section(&path, "drill", &bench_json::render_section(&rows))
        .expect("write BENCH_drill.json");
    println!("drill: trajectory written to {}", path.display());
}
