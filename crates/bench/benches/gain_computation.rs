//! Micro-benchmark: move-gain computation for all data vertices (the core of superstep 3).
//! Backs the O(k·|E|) computational-complexity claim of Section 3.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_core::{gains, NeighborData, Objective, TargetConstraint};
use shp_datagen::{social_graph, SocialGraphConfig};
use shp_hypergraph::Partition;

fn bench_gain_computation(c: &mut Criterion) {
    let graph = social_graph(&SocialGraphConfig {
        num_users: 5_000,
        avg_degree: 15,
        ..Default::default()
    });
    let mut group = c.benchmark_group("gain_computation");
    group.sample_size(10);
    for k in [2u32, 8, 32] {
        let mut rng = Pcg64::seed_from_u64(1);
        let partition = Partition::new_random(&graph, k, &mut rng).unwrap();
        let nd = NeighborData::build(&graph, &partition);
        let objective = Objective::PFanout { p: 0.5 };
        let constraint = TargetConstraint::all(k);
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), format!("w{workers}")),
                &k,
                |b, _| {
                    b.iter(|| {
                        gains::compute_proposals(
                            &objective,
                            &graph,
                            &partition,
                            &nd,
                            &constraint,
                            true,
                            workers,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gain_computation);
criterion_main!(benches);
