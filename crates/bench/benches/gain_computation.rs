//! Micro-benchmark: move-gain computation for all data vertices (the core of superstep 3).
//! Backs the O(k·|E|) computational-complexity claim of Section 3.3 — and records the dense
//! scratch kernel against the legacy hash-map kernel at k = 64 on the power-law graph into
//! `BENCH_refinement.json` (ops/s, ns/vertex, allocation proxy), asserting bit-identical
//! proposal lists first.

mod support;

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_bench::bench_json;
use shp_core::{gains, GainKernel, NeighborData, Objective, TargetConstraint};
use shp_datagen::{social_graph, SocialGraphConfig};
use shp_hypergraph::Partition;

#[global_allocator]
static ALLOC: support::CountingAllocator = support::CountingAllocator;

fn bench_gain_computation(c: &mut Criterion) {
    let graph = social_graph(&SocialGraphConfig {
        num_users: 5_000,
        avg_degree: 15,
        ..Default::default()
    });
    let mut group = c.benchmark_group("gain_computation");
    group.sample_size(10);
    for k in [2u32, 8, 32] {
        let mut rng = Pcg64::seed_from_u64(1);
        let partition = Partition::new_random(&graph, k, &mut rng).unwrap();
        let nd = NeighborData::build(&graph, &partition);
        let objective = Objective::PFanout { p: 0.5 };
        let constraint = TargetConstraint::all(k);
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), format!("w{workers}")),
                &k,
                |b, _| {
                    b.iter(|| {
                        gains::compute_proposals(
                            &objective,
                            &graph,
                            &partition,
                            &nd,
                            &constraint,
                            true,
                            workers,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

/// The trajectory section: the raw gain sweep at k = 64 on the power-law graph, single worker,
/// scratch kernel vs legacy hash-map kernel.
fn hot_path_trajectory() {
    const K: u32 = 64;
    let graph = support::bench_power_law();
    let n = graph.num_data();
    let mut rng = Pcg64::seed_from_u64(1);
    let partition = Partition::new_random(&graph, K, &mut rng).unwrap();
    let nd = NeighborData::build(&graph, &partition);
    let objective = Objective::PFanout { p: 0.5 };
    let constraint = TargetConstraint::all(K);

    let sweep = |kernel: GainKernel| {
        gains::compute_proposals_with_kernel(
            &objective,
            &graph,
            &partition,
            &nd,
            &constraint,
            true,
            1,
            kernel,
        )
    };

    // Correctness gate for the CI smoke job: bit-identical proposals, including gain bits.
    let scratch_proposals = sweep(GainKernel::Scratch);
    let legacy_proposals = sweep(GainKernel::LegacyHashMap);
    assert_eq!(scratch_proposals.len(), legacy_proposals.len());
    for (s, l) in scratch_proposals.iter().zip(legacy_proposals.iter()) {
        assert_eq!(
            (s.vertex, s.from, s.to, s.gain.to_bits()),
            (l.vertex, l.from, l.to, l.gain.to_bits()),
            "scratch kernel diverged from legacy kernel at vertex {}",
            s.vertex
        );
    }

    let rounds = support::rounds();
    let measure_kernel = |kernel: GainKernel| {
        support::measure(
            rounds,
            || (),
            |()| {
                let _ = sweep(kernel);
            },
        )
    };
    let scratch = measure_kernel(GainKernel::Scratch);
    let legacy = measure_kernel(GainKernel::LegacyHashMap);
    let speedup = legacy.secs_per_op / scratch.secs_per_op;
    println!(
        "gain_computation/power_law_k64_w1: scratch {:.2} ms vs legacy {:.2} ms ({speedup:.2}x, \
         allocs {:.0} vs {:.0})",
        scratch.secs_per_op * 1e3,
        legacy.secs_per_op * 1e3,
        scratch.allocs_per_op,
        legacy.allocs_per_op,
    );

    let rows = vec![
        (
            "power_law_k64_w1_scratch".to_string(),
            bench_json::render_metrics(&scratch.metrics(n)),
        ),
        (
            "power_law_k64_w1_legacy".to_string(),
            bench_json::render_metrics(&legacy.metrics(n)),
        ),
        (
            "speedup_scratch_vs_legacy".to_string(),
            bench_json::render_number(speedup),
        ),
    ];
    let path = bench_json::repo_root().join(bench_json::BENCH_JSON_NAME);
    bench_json::update_section(
        &path,
        "gain_computation",
        &bench_json::render_section(&rows),
    )
    .expect("write BENCH_refinement.json");
    println!("gain_computation: trajectory written to {}", path.display());
}

criterion_group!(benches, bench_gain_computation);

fn main() {
    benches();
    hot_path_trajectory();
}
