//! Ingestion benchmark: dataset file → `BipartiteGraph`, across the three pipeline layers of
//! the ingestion rework.
//!
//! On a ~1M-pin power-law bipartite graph (the Table-1-style workload shape) this measures:
//!
//! * the **legacy oracle** text path (per-line `String`s + `str::parse` + the
//!   `BuildKernel::Legacy` per-query-`Vec` CSR build);
//! * the **zero-copy** text path at `workers = 1` and `workers = 4` (in-place byte scanning,
//!   hand-rolled decimal parser, flat-arena builder, counting-sort CSR);
//! * the **`.shpb` compact binary** path (checksummed container holding the CSR verbatim);
//! * the writers: `write_edge_list` through the reusable byte buffer vs the per-line
//!   formatting machinery it replaced.
//!
//! Before anything is timed, every variant's output is asserted **equal** to the legacy
//! oracle's (and the writers byte-identical) — the CI smoke job (`--quick`) relies on this
//! panicking on any conformance regression, exactly like the refinement benches.
//!
//! Headline numbers (MB/s, edges/s, allocation proxies, speedups) land in
//! `BENCH_ingest.json` at the repository root.

mod support;

use shp_bench::bench_json;
use shp_datagen::{power_law_bipartite, PowerLawConfig};
use shp_hypergraph::{io, BipartiteGraph};
use std::io::Write as _;

#[global_allocator]
static ALLOC: support::CountingAllocator = support::CountingAllocator;

/// The measured graph: ~1M pins in full mode; a proportionally smaller graph in `--quick`
/// smoke mode (the conformance assertions are identical, only the timings shrink).
fn ingest_power_law() -> BipartiteGraph {
    let (num_queries, num_data) = if criterion::quick_mode() {
        (28_000, 15_000)
    } else {
        (280_000, 150_000)
    };
    power_law_bipartite(&PowerLawConfig {
        num_queries,
        num_data,
        min_degree: 2,
        max_degree: 60,
        seed: 0x5047,
        ..Default::default()
    })
}

/// The pre-rework writer: one `writeln!` formatting round trip per line.
fn write_edge_list_formatting(graph: &BipartiteGraph, out: &mut Vec<u8>) {
    writeln!(out, "# bipartite edge list: query_id\tdata_id").unwrap();
    for (q, v) in graph.edges() {
        writeln!(out, "{q}\t{v}").unwrap();
    }
}

fn main() {
    let graph = ingest_power_law();
    let edges = graph.num_edges();
    println!(
        "graph_ingest: power-law graph with {} queries, {} data vertices, {edges} pins{}",
        graph.num_queries(),
        graph.num_data(),
        if criterion::quick_mode() {
            " (quick mode)"
        } else {
            ""
        }
    );

    // Serialize once; all read measurements parse from memory so the numbers measure the
    // pipelines, not the page cache.
    let mut text = Vec::new();
    io::write_edge_list(&graph, &mut text).unwrap();
    let mut binary = Vec::new();
    io::write_shpb(&graph, &mut binary).unwrap();

    // ---- Correctness gates (CI smoke relies on these panicking on regression) ----------
    let oracle = io::read_edge_list_legacy(&text[..]).expect("legacy parse");
    for workers in [1usize, 2, 4, 8] {
        let parsed = io::parse_edge_list_bytes(&text, workers).expect("zero-copy parse");
        assert_eq!(
            parsed, oracle,
            "zero-copy parse (workers={workers}) diverged from the legacy oracle"
        );
    }
    let from_binary = io::parse_shpb_bytes(&binary).expect("shpb parse");
    assert_eq!(
        from_binary, graph,
        "shpb roundtrip diverged from the source graph"
    );
    assert_eq!(
        from_binary, oracle,
        "shpb graph diverged from the text-parsed graph"
    );
    let mut formatted = Vec::new();
    write_edge_list_formatting(&graph, &mut formatted);
    assert_eq!(
        text, formatted,
        "byte-buffer writer output diverged from the formatting writer"
    );
    println!(
        "graph_ingest: conformance gates passed (new == legacy == shpb, writers byte-identical)"
    );

    // ---- Measurements ------------------------------------------------------------------
    let rounds = support::rounds();
    let read_legacy = support::measure(
        rounds,
        || (),
        |()| {
            io::read_edge_list_legacy(&text[..]).unwrap();
        },
    );
    let read_new_w1 = support::measure(
        rounds,
        || (),
        |()| {
            io::parse_edge_list_bytes(&text, 1).unwrap();
        },
    );
    let read_new_w4 = support::measure(
        rounds,
        || (),
        |()| {
            io::parse_edge_list_bytes(&text, 4).unwrap();
        },
    );
    let read_shpb = support::measure(
        rounds,
        || (),
        |()| {
            io::parse_shpb_bytes(&binary).unwrap();
        },
    );
    let write_new = support::measure(
        rounds,
        || Vec::with_capacity(text.len()),
        |mut out| io::write_edge_list(&graph, &mut out).unwrap(),
    );
    let write_formatting = support::measure(
        rounds,
        || Vec::with_capacity(text.len()),
        |mut out| write_edge_list_formatting(&graph, &mut out),
    );

    let speedup_text_w1 = read_legacy.secs_per_op / read_new_w1.secs_per_op;
    let speedup_text_w4 = read_legacy.secs_per_op / read_new_w4.secs_per_op;
    let speedup_shpb = read_new_w1.secs_per_op / read_shpb.secs_per_op;
    let speedup_write = write_formatting.secs_per_op / write_new.secs_per_op;
    println!(
        "graph_ingest/read: legacy {:.1} ms, zero-copy w1 {:.1} ms ({speedup_text_w1:.2}x), \
         w4 {:.1} ms ({speedup_text_w4:.2}x), shpb {:.2} ms ({speedup_shpb:.2}x over w1 text)",
        read_legacy.secs_per_op * 1e3,
        read_new_w1.secs_per_op * 1e3,
        read_new_w4.secs_per_op * 1e3,
        read_shpb.secs_per_op * 1e3,
    );
    println!(
        "graph_ingest/write: formatting {:.1} ms, byte-buffer {:.1} ms ({speedup_write:.2}x); \
         text {:.1} MB, shpb {:.1} MB",
        write_formatting.secs_per_op * 1e3,
        write_new.secs_per_op * 1e3,
        text.len() as f64 / 1e6,
        binary.len() as f64 / 1e6,
    );

    let rows = vec![
        (
            "sizes".to_string(),
            bench_json::render_metrics(&[
                ("edges", edges as f64),
                ("text_bytes", text.len() as f64),
                ("shpb_bytes", binary.len() as f64),
            ]),
        ),
        (
            "read_text_legacy_w1".to_string(),
            bench_json::render_metrics(&read_legacy.throughput_metrics(text.len(), edges)),
        ),
        (
            "read_text_zero_copy_w1".to_string(),
            bench_json::render_metrics(&read_new_w1.throughput_metrics(text.len(), edges)),
        ),
        (
            "read_text_zero_copy_w4".to_string(),
            bench_json::render_metrics(&read_new_w4.throughput_metrics(text.len(), edges)),
        ),
        (
            "read_shpb".to_string(),
            bench_json::render_metrics(&read_shpb.throughput_metrics(binary.len(), edges)),
        ),
        (
            "write_text_formatting".to_string(),
            bench_json::render_metrics(&write_formatting.throughput_metrics(text.len(), edges)),
        ),
        (
            "write_text_byte_buffer".to_string(),
            bench_json::render_metrics(&write_new.throughput_metrics(text.len(), edges)),
        ),
        (
            "speedup_text_w1".to_string(),
            bench_json::render_number(speedup_text_w1),
        ),
        (
            "speedup_text_w4".to_string(),
            bench_json::render_number(speedup_text_w4),
        ),
        (
            "speedup_shpb_vs_text_w1".to_string(),
            bench_json::render_number(speedup_shpb),
        ),
        (
            "speedup_write".to_string(),
            bench_json::render_number(speedup_write),
        ),
    ];
    let path = bench_json::repo_root().join(bench_json::BENCH_INGEST_JSON_NAME);
    bench_json::update_section(&path, "graph_ingest", &bench_json::render_section(&rows))
        .expect("write BENCH_ingest.json");
    println!("graph_ingest: trajectory written to {}", path.display());
}
