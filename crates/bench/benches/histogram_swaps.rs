//! Micro-benchmark: building gain histograms and matching bins (the master-side work of the
//! advanced swap scheme of Section 3.4), as a function of the number of proposals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shp_core::histogram::GainHistogramSet;
use shp_core::MoveProposal;

fn proposals(n: usize, k: u32) -> Vec<MoveProposal> {
    (0..n)
        .map(|i| {
            let from = (i as u32) % k;
            let to = (from + 1 + (i as u32 / k) % (k - 1)) % k;
            MoveProposal {
                vertex: i as u32,
                from,
                to,
                gain: ((i % 37) as f64 - 10.0) / 7.0,
            }
        })
        .collect()
}

fn bench_histogram_swaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_swaps");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let props = proposals(n, 16);
        group.bench_with_input(
            BenchmarkId::new("build_and_match", n),
            &props,
            |b, props| {
                b.iter(|| {
                    let set = GainHistogramSet::from_proposals(props);
                    set.match_bins()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_histogram_swaps);
criterion_main!(benches);
