//! Out-of-core benchmark: datagen-streamed `.shpb` container → owned vs memory-mapped loads.
//!
//! On a datagen-streamed power-law container (10M+ pins in full mode — the out-of-core
//! workload shape the streaming writer and the mmap loader exist for) this measures:
//!
//! * the **streaming generation** path (`PowerLawStream` → `stream_shpb_file`): wall time and
//!   the bounded heap it allocates while writing a container it never materializes;
//! * the **owned open** (`read_shpb_file`): read the file, validate structure, copy every
//!   section onto the heap;
//! * the **mapped open** (`map_shpb_file`): map the file, validate the header and offsets,
//!   one body-checksum pass, zero section copies.
//!
//! Before anything is timed, the mapped graph is asserted **equal** to the owned graph and
//! the memory accounting is asserted to distinguish the two representations (`memory_bytes`
//! = 0 for a mapped graph; `mapped_bytes` = the owned heap it avoids). The CI smoke job
//! (`--quick`) relies on these panicking on any conformance regression.
//!
//! Headline numbers (open latency, speedup, resident-heap deltas) land in
//! `BENCH_outofcore.json` at the repository root. Full (non-quick) mode additionally
//! enforces the acceptance floor: mapped open ≥ 10x faster than the owned open.

mod support;

use shp_bench::bench_json;
use shp_datagen::{PowerLawConfig, PowerLawStream};
use shp_hypergraph::io;
use std::time::Instant;

#[global_allocator]
static ALLOC: support::CountingAllocator = support::CountingAllocator;

/// The streamed container shape: ~10M pins in full mode (min_degree 4 with a fat power-law
/// tail averages ~8 pins per query), a proportionally smaller graph in `--quick` smoke mode
/// (identical assertions, smaller timings).
fn stream_config() -> PowerLawConfig {
    let (num_queries, num_data) = if criterion::quick_mode() {
        (40_000, 20_000)
    } else {
        (1_450_000, 750_000)
    };
    PowerLawConfig {
        num_queries,
        num_data,
        min_degree: 4,
        max_degree: 60,
        seed: 0x5047,
        ..Default::default()
    }
}

fn main() {
    let config = stream_config();
    let path = std::env::temp_dir().join(format!("shp-outofcore-{}.shpb", std::process::id()));

    // ---- Streaming generation (timed once: it is the expensive, run-once pipeline stage) --
    let stream_before = support::alloc_snapshot();
    let stream_start = Instant::now();
    let mut stream = PowerLawStream::new(config.clone());
    let stats = io::stream_shpb_file(&mut stream, &path).expect("stream container");
    let stream_secs = stream_start.elapsed().as_secs_f64();
    let (_, stream_alloc_bytes) = support::alloc_snapshot().delta(&stream_before);
    println!(
        "outofcore: streamed {} pins ({} queries over {} data vertices) into {:.1} MB in \
         {stream_secs:.2}s, {} source passes, {:.1} MB allocated{}",
        stats.num_pins,
        stats.num_queries,
        stats.num_data,
        stats.bytes_written as f64 / 1e6,
        stats.source_passes,
        stream_alloc_bytes as f64 / 1e6,
        if criterion::quick_mode() {
            " (quick mode)"
        } else {
            ""
        }
    );

    // ---- Correctness gates (CI smoke relies on these panicking on regression) ------------
    let owned = io::read_shpb_file(&path).expect("owned open");
    let mapped = io::map_shpb_file(&path).expect("mapped open");
    assert_eq!(owned, mapped, "mapped graph diverged from the owned graph");
    assert!(!owned.is_mapped() && mapped.is_mapped());
    assert_eq!(
        mapped.memory_bytes(),
        0,
        "a mapped graph must report zero owned heap"
    );
    assert_eq!(
        mapped.mapped_bytes(),
        owned.memory_bytes(),
        "mapped_bytes must account exactly the owned heap the mapping avoids"
    );
    assert_eq!(stats.num_pins as usize, owned.num_edges());
    let owned_heap = owned.memory_bytes();
    let mapped_span = mapped.mapped_bytes();
    let edges = owned.num_edges();
    drop(owned);
    drop(mapped);
    println!("outofcore: conformance gates passed (mapped == owned, memory accounting split)");

    // ---- Measurements --------------------------------------------------------------------
    let rounds = support::rounds();
    let file_bytes = std::fs::metadata(&path).expect("container metadata").len() as usize;
    let open_owned = support::measure(
        rounds,
        || (),
        |()| {
            io::read_shpb_file(&path).unwrap();
        },
    );
    let open_mapped = support::measure(
        rounds,
        || (),
        |()| {
            io::map_shpb_file(&path).unwrap();
        },
    );
    std::fs::remove_file(&path).ok();

    let speedup_open = open_owned.secs_per_op / open_mapped.secs_per_op;
    let resident_delta = open_owned.bytes_per_op - open_mapped.bytes_per_op;
    println!(
        "outofcore/open: owned {:.1} ms ({:.1} MB heap per open), mapped {:.2} ms \
         ({:.3} MB heap per open) — {speedup_open:.1}x faster, {:.1} MB less resident heap",
        open_owned.secs_per_op * 1e3,
        open_owned.bytes_per_op / 1e6,
        open_mapped.secs_per_op * 1e3,
        open_mapped.bytes_per_op / 1e6,
        resident_delta / 1e6,
    );

    let rows = vec![
        (
            "sizes".to_string(),
            bench_json::render_metrics(&[
                ("pins", stats.num_pins as f64),
                ("queries", stats.num_queries as f64),
                ("data_vertices", stats.num_data as f64),
                ("file_bytes", file_bytes as f64),
                ("owned_heap_bytes", owned_heap as f64),
                ("mapped_span_bytes", mapped_span as f64),
            ]),
        ),
        (
            "stream_generate".to_string(),
            bench_json::render_metrics(&[
                ("secs", stream_secs),
                ("mb_per_s", file_bytes as f64 / 1e6 / stream_secs),
                ("pins_per_s", stats.num_pins as f64 / stream_secs),
                ("source_passes", stats.source_passes as f64),
                ("alloc_bytes", stream_alloc_bytes as f64),
            ]),
        ),
        (
            "open_owned".to_string(),
            bench_json::render_metrics(&open_owned.throughput_metrics(file_bytes, edges)),
        ),
        (
            "open_mapped".to_string(),
            bench_json::render_metrics(&open_mapped.throughput_metrics(file_bytes, edges)),
        ),
        (
            "speedup_open_mapped".to_string(),
            bench_json::render_number(speedup_open),
        ),
        (
            "resident_heap_delta_bytes".to_string(),
            bench_json::render_number(resident_delta),
        ),
    ];
    let path_json = bench_json::repo_root().join(bench_json::BENCH_OUTOFCORE_JSON_NAME);
    bench_json::update_section(&path_json, "outofcore", &bench_json::render_section(&rows))
        .expect("write BENCH_outofcore.json");
    println!("outofcore: trajectory written to {}", path_json.display());

    // The acceptance floor only binds at the full graph size: at smoke scale the mapped
    // open's fixed syscall cost is a visible fraction of the tiny file.
    if !criterion::quick_mode() {
        assert!(
            speedup_open >= 10.0,
            "mapped open must be at least 10x faster than the owned open on the 10M-pin \
             container, measured {speedup_open:.2}x"
        );
    }
}
