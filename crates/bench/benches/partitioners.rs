//! Macro-benchmark: end-to-end partitioning time of SHP-2, SHP-k, and the baselines on one
//! mid-size graph (the run-time comparison behind Table 3's qualitative story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shp_bench::run_algorithm;
use shp_datagen::{social_graph, SocialGraphConfig};

fn bench_partitioners(c: &mut Criterion) {
    let graph = social_graph(&SocialGraphConfig {
        num_users: 4_000,
        avg_degree: 12,
        ..Default::default()
    });
    let mut group = c.benchmark_group("partitioners_end_to_end");
    group.sample_size(10);
    for algorithm in ["shp2", "shpk", "multilevel", "greedy", "label-propagation"] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm),
            &algorithm,
            |b, &name| b.iter(|| run_algorithm(name, &graph, 8, 0.05, 1)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
