//! Micro-benchmark: one full refinement iteration of Algorithm 1 (gains + swap coordination +
//! move application), comparing the basic matrix and the advanced histogram swap strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_core::{BalanceMode, NeighborData, Objective, Refiner, SwapStrategy, TargetConstraint};
use shp_datagen::{social_graph, SocialGraphConfig};
use shp_hypergraph::Partition;

fn bench_refinement(c: &mut Criterion) {
    let graph = social_graph(&SocialGraphConfig {
        num_users: 5_000,
        avg_degree: 15,
        ..Default::default()
    });
    let k = 8;
    let mut group = c.benchmark_group("refinement_iteration");
    group.sample_size(10);
    for strategy in [SwapStrategy::Matrix, SwapStrategy::Histogram] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter_batched(
                    || {
                        let mut rng = Pcg64::seed_from_u64(1);
                        let partition = Partition::new_random(&graph, k, &mut rng).unwrap();
                        let nd = NeighborData::build(&graph, &partition);
                        (partition, nd)
                    },
                    |(mut partition, mut nd)| {
                        let refiner = Refiner::new(
                            &graph,
                            Objective::PFanout { p: 0.5 },
                            TargetConstraint::all(k),
                            strategy,
                            BalanceMode::Expectation,
                            false,
                            0.05,
                            1,
                        );
                        refiner.run_iteration(&mut partition, &mut nd, 0)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
