//! Micro-benchmark: one full refinement iteration of Algorithm 1 (gains + swap coordination +
//! move application), comparing the basic matrix and the advanced histogram swap strategies —
//! plus the hot-path trajectory section: the optimized pipeline (dense scratch kernel +
//! dirty-vertex active set) against the legacy pipeline (hash-map kernel + full rescan) at
//! k = 64 on the power-law graph, single worker, with bit-identity asserted before timing.
//!
//! Headline numbers (ops/s, ns/vertex, allocation proxy, speedups) are written to
//! `BENCH_refinement.json` at the repository root; `--quick` runs the same measurements and
//! assertions with minimal sample counts (the CI smoke job).

mod support;

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_bench::bench_json;
use shp_core::{
    BalanceMode, GainKernel, NeighborData, Objective, Refiner, SwapStrategy, TargetConstraint,
};
use shp_datagen::{social_graph, SocialGraphConfig};
use shp_hypergraph::{BipartiteGraph, Partition};

#[global_allocator]
static ALLOC: support::CountingAllocator = support::CountingAllocator;

fn bench_refinement(c: &mut Criterion) {
    let graph = social_graph(&SocialGraphConfig {
        num_users: 5_000,
        avg_degree: 15,
        ..Default::default()
    });
    let k = 8;
    let mut group = c.benchmark_group("refinement_iteration");
    group.sample_size(10);
    for strategy in [SwapStrategy::Matrix, SwapStrategy::Histogram] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter_batched(
                    || {
                        let mut rng = Pcg64::seed_from_u64(1);
                        let partition = Partition::new_random(&graph, k, &mut rng).unwrap();
                        let nd = NeighborData::build(&graph, &partition);
                        (partition, nd)
                    },
                    |(mut partition, mut nd)| {
                        let refiner = make_refiner(&graph, k, strategy, true, GainKernel::Scratch);
                        refiner.run_iteration(&mut partition, &mut nd, 0)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn make_refiner(
    graph: &BipartiteGraph,
    k: u32,
    strategy: SwapStrategy,
    dirty_set: bool,
    kernel: GainKernel,
) -> Refiner<'_> {
    Refiner::new(
        graph,
        Objective::PFanout { p: 0.5 },
        TargetConstraint::all(k),
        strategy,
        BalanceMode::Expectation,
        false,
        0.05,
        1,
    )
    .with_dirty_set(dirty_set)
    .with_kernel(kernel)
}

/// Runs `iterations` refinement iterations from the seeded random partition with the given
/// pipeline flavor, returning the final partition and per-iteration fingerprints.
fn run_pipeline(
    graph: &BipartiteGraph,
    k: u32,
    iterations: usize,
    dirty_set: bool,
    kernel: GainKernel,
) -> (Partition, Vec<(usize, u64, u64)>) {
    let mut rng = Pcg64::seed_from_u64(1);
    let mut partition = Partition::new_random(graph, k, &mut rng).unwrap();
    let mut nd = NeighborData::build(graph, &partition);
    let refiner = make_refiner(graph, k, SwapStrategy::Histogram, dirty_set, kernel);
    let history = refiner.run(&mut partition, &mut nd, iterations, 0.0);
    let stats = history
        .iter()
        .map(|s| (s.moved, s.applied_gain.to_bits(), s.fanout_after.to_bits()))
        .collect();
    (partition, stats)
}

/// The trajectory section: k = 64 on the power-law graph, single worker — so the measured win
/// is structural (kernel + dirty set), not thread count.
fn hot_path_trajectory() {
    const K: u32 = 64;
    const RUN_ITERATIONS: usize = 12;
    let graph = support::bench_power_law();
    let n = graph.num_data();

    // Correctness gate (the CI smoke job relies on this panicking on regression): the
    // optimized pipeline must reproduce the legacy pipeline bit-for-bit.
    let (p_new, s_new) = run_pipeline(&graph, K, RUN_ITERATIONS, true, GainKernel::Scratch);
    let (p_old, s_old) = run_pipeline(&graph, K, RUN_ITERATIONS, false, GainKernel::LegacyHashMap);
    assert_eq!(
        p_new, p_old,
        "scratch+dirty pipeline diverged from legacy full-rescan pipeline"
    );
    assert_eq!(
        s_new, s_old,
        "iteration stats diverged from legacy pipeline"
    );

    let rounds = support::rounds();
    let single = |kernel: GainKernel, dirty: bool| {
        support::measure(
            rounds,
            || {
                let mut rng = Pcg64::seed_from_u64(1);
                let partition = Partition::new_random(&graph, K, &mut rng).unwrap();
                let nd = NeighborData::build(&graph, &partition);
                (partition, nd)
            },
            |(mut partition, mut nd)| {
                let refiner = make_refiner(&graph, K, SwapStrategy::Histogram, dirty, kernel);
                refiner.run_iteration(&mut partition, &mut nd, 0);
            },
        )
    };
    let single_scratch = single(GainKernel::Scratch, true);
    let single_legacy = single(GainKernel::LegacyHashMap, false);

    let full_run = |kernel: GainKernel, dirty: bool| {
        support::measure(
            rounds,
            || (),
            |()| {
                let _ = run_pipeline(&graph, K, RUN_ITERATIONS, dirty, kernel);
            },
        )
    };
    let run_scratch = full_run(GainKernel::Scratch, true);
    let run_legacy = full_run(GainKernel::LegacyHashMap, false);

    let speedup_single = single_legacy.secs_per_op / single_scratch.secs_per_op;
    let speedup_run = run_legacy.secs_per_op / run_scratch.secs_per_op;
    println!(
        "refinement_iteration/power_law_k64_w1: scratch {:.2} ms vs legacy {:.2} ms \
         ({speedup_single:.2}x); {RUN_ITERATIONS}-iteration run: {:.2} ms vs {:.2} ms \
         ({speedup_run:.2}x)",
        single_scratch.secs_per_op * 1e3,
        single_legacy.secs_per_op * 1e3,
        run_scratch.secs_per_op * 1e3,
        run_legacy.secs_per_op * 1e3,
    );

    let rows = vec![
        (
            "power_law_k64_w1_iteration_scratch_dirty".to_string(),
            bench_json::render_metrics(&single_scratch.metrics(n)),
        ),
        (
            "power_law_k64_w1_iteration_legacy_rescan".to_string(),
            bench_json::render_metrics(&single_legacy.metrics(n)),
        ),
        (
            format!("power_law_k64_w1_run{RUN_ITERATIONS}_scratch_dirty"),
            bench_json::render_metrics(&run_scratch.metrics(n * RUN_ITERATIONS)),
        ),
        (
            format!("power_law_k64_w1_run{RUN_ITERATIONS}_legacy_rescan"),
            bench_json::render_metrics(&run_legacy.metrics(n * RUN_ITERATIONS)),
        ),
        (
            "speedup_single_iteration".to_string(),
            bench_json::render_number(speedup_single),
        ),
        (
            "speedup_full_run".to_string(),
            bench_json::render_number(speedup_run),
        ),
    ];
    let path = bench_json::repo_root().join(bench_json::BENCH_JSON_NAME);
    bench_json::update_section(
        &path,
        "refinement_iteration",
        &bench_json::render_section(&rows),
    )
    .expect("write BENCH_refinement.json");
    println!(
        "refinement_iteration: trajectory written to {}",
        path.display()
    );
}

criterion_group!(benches, bench_refinement);

fn main() {
    benches();
    hot_path_trajectory();
}
