//! Micro-benchmark: multiget routing throughput of the serving layer's `ShardRouter` under a
//! random vs. an SHP partition of the same workload. SHP plans have fewer batches per query
//! (lower fanout), so routing is faster *and* the plans it emits are cheaper to execute — the
//! serving-side dividend of partition quality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shp_bench::run_algorithm;
use shp_datagen::{social_graph, SocialGraphConfig};
use shp_serving::{PartitionSnapshot, ShardRouter};

fn bench_serving_router(c: &mut Criterion) {
    let graph = social_graph(&SocialGraphConfig {
        num_users: 4_000,
        avg_degree: 12,
        ..Default::default()
    });
    let mut group = c.benchmark_group("serving_router");
    group.sample_size(10);
    for algorithm in ["random", "shp2"] {
        let run = run_algorithm(algorithm, &graph, 16, 0.05, 1);
        let snapshot = PartitionSnapshot::from_partition(&run.partition, 0).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm),
            &snapshot,
            |b, snapshot| {
                let router = ShardRouter::new();
                b.iter(|| {
                    let mut total_batches = 0usize;
                    for q in graph.queries() {
                        let plan = router.route(snapshot, graph.query_neighbors(q)).unwrap();
                        total_batches += plan.batches.len();
                    }
                    total_batches
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serving_router);
criterion_main!(benches);
