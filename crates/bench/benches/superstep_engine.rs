//! Micro-benchmark: distributed SHP iterations (four supersteps each) on the vertex-centric
//! engine, across worker counts. Backs the Figure 5b worker-scaling experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shp_core::{partition_distributed, ShpConfig};
use shp_datagen::{social_graph, SocialGraphConfig};

fn bench_distributed_iterations(c: &mut Criterion) {
    let graph = social_graph(&SocialGraphConfig {
        num_users: 3_000,
        avg_degree: 12,
        ..Default::default()
    });
    let mut group = c.benchmark_group("distributed_supersteps");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let config = ShpConfig::direct(8).with_seed(1).with_max_iterations(3);
                    partition_distributed(&graph, &config, workers).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distributed_iterations);
criterion_main!(benches);
