//! Shared support for the hot-path bench binaries: a counting global allocator (the
//! "allocations proxy" recorded in `BENCH_refinement.json`) and a measurement helper.
//!
//! This lives under `benches/support/` (not auto-discovered as a bench target) and is pulled
//! into each bench binary with `mod support;`. The allocator wraps the system allocator with
//! relaxed atomic counters; a bench binary installs it via
//! `#[global_allocator] static A: support::CountingAllocator = support::CountingAllocator;`.

#![allow(dead_code)] // each bench binary compiles this module and uses a subset of it

use shp_datagen::{power_law_bipartite, PowerLawConfig};
use shp_hypergraph::BipartiteGraph;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The power-law graph both hot-path benches measure at k = 64: large enough for stable
/// timings, small enough that the legacy pipeline still finishes quickly in smoke mode.
pub fn bench_power_law() -> BipartiteGraph {
    power_law_bipartite(&PowerLawConfig {
        num_queries: 12_000,
        num_data: 9_000,
        min_degree: 2,
        max_degree: 60,
        seed: 0x5047,
        ..Default::default()
    })
}

/// Measurement rounds honoring `--quick` smoke mode.
pub fn rounds() -> usize {
    if criterion::quick_mode() {
        2
    } else {
        10
    }
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper counting every allocation call and byte (deallocations are not
/// tracked: the proxy measures allocator pressure on the hot path, not live footprint).
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Snapshot of the allocation counters.
#[derive(Debug, Clone, Copy)]
pub struct AllocSnapshot {
    allocations: u64,
    bytes: u64,
}

/// Takes a counter snapshot; subtract two snapshots via [`AllocSnapshot::delta`].
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
    }
}

impl AllocSnapshot {
    /// `(allocation calls, bytes)` since `earlier`.
    pub fn delta(&self, earlier: &AllocSnapshot) -> (u64, u64) {
        (
            self.allocations - earlier.allocations,
            self.bytes - earlier.bytes,
        )
    }
}

/// One measured hot-path variant: mean wall time plus the allocation proxy, over `rounds`
/// executions of `op` (after one warmup).
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean wall-clock seconds per operation.
    pub secs_per_op: f64,
    /// Mean allocator calls per operation.
    pub allocs_per_op: f64,
    /// Mean allocated bytes per operation.
    pub bytes_per_op: f64,
}

impl Measurement {
    /// Operations per second.
    pub fn ops_per_s(&self) -> f64 {
        if self.secs_per_op > 0.0 {
            1.0 / self.secs_per_op
        } else {
            f64::INFINITY
        }
    }

    /// Nanoseconds per item for an operation covering `items` items.
    pub fn ns_per_item(&self, items: usize) -> f64 {
        self.secs_per_op * 1e9 / items.max(1) as f64
    }

    /// The metric row recorded in `BENCH_refinement.json` for this variant.
    pub fn metrics(&self, items: usize) -> Vec<(&'static str, f64)> {
        vec![
            ("ops_per_s", self.ops_per_s()),
            ("ns_per_vertex", self.ns_per_item(items)),
            ("allocs_per_op", self.allocs_per_op),
            ("alloc_bytes_per_op", self.bytes_per_op),
        ]
    }

    /// The throughput row recorded in `BENCH_ingest.json` for an ingestion variant covering
    /// `bytes` of input (or output) and `edges` bipartite edges per operation.
    pub fn throughput_metrics(&self, bytes: usize, edges: usize) -> Vec<(&'static str, f64)> {
        vec![
            ("mb_per_s", bytes as f64 / 1e6 / self.secs_per_op),
            ("edges_per_s", edges as f64 / self.secs_per_op),
            ("ms_per_op", self.secs_per_op * 1e3),
            ("allocs_per_op", self.allocs_per_op),
            ("alloc_bytes_per_op", self.bytes_per_op),
        ]
    }
}

/// Measures `op` (with per-round `setup` outside the timed window) over `rounds` rounds.
pub fn measure<I, S: FnMut() -> I, F: FnMut(I)>(
    rounds: usize,
    mut setup: S,
    mut op: F,
) -> Measurement {
    op(setup()); // warmup
    let mut total = 0.0f64;
    let mut allocs = 0u64;
    let mut bytes = 0u64;
    for _ in 0..rounds {
        let input = setup();
        let before = alloc_snapshot();
        let start = Instant::now();
        op(input);
        total += start.elapsed().as_secs_f64();
        let (a, b) = alloc_snapshot().delta(&before);
        allocs += a;
        bytes += b;
    }
    let r = rounds.max(1) as f64;
    Measurement {
        secs_per_op: total / r,
        allocs_per_op: allocs as f64 / r,
        bytes_per_op: bytes as f64 / r,
    }
}
