//! Telemetry overhead benchmark: the cost of one observation on every record path the
//! serving hot loop touches.
//!
//! On a fixed deterministic observation stream this measures, in ns per record:
//!
//! * the raw `shp-telemetry` primitives — sharded [`Counter`] increment, log-linear
//!   [`Histogram`] record, and bounded [`TopKSketch`] record;
//! * [`ServingMetrics::record`] (the lock-free rebuild) vs [`LegacyServingMetrics::record`]
//!   (the retained `Mutex<Vec>` oracle), single-threaded and with four threads contending —
//!   the contended case is where the old mutex serialized every serving client.
//!
//! Before anything is timed, both implementations ingest the identical stream and their
//! reports are asserted to agree: exact fields equal, latency percentiles within the
//! documented ≤1.56% bucket quantization — and the same holds with the global telemetry
//! toggle off, because `ServingMetrics` must keep working when instrumentation is disabled.
//! The CI smoke job (`--quick`) relies on these gates panicking on regression.
//!
//! Headline numbers (ns/record, speedups, memory) land in `BENCH_telemetry.json` at the
//! repository root.

mod support;

use shp_bench::bench_json;
use shp_serving::{CacheStats, LegacyServingMetrics, ServingMetrics, ServingReport};
use shp_telemetry::histogram::QUANTIZATION_ERROR;
use shp_telemetry::{Counter, Histogram, TopKSketch};

#[global_allocator]
static ALLOC: support::CountingAllocator = support::CountingAllocator;

/// Shard count of the simulated serving tier.
const NUM_SHARDS: u32 = 64;

/// Threads in the contended measurement (the serving engine's default client count).
const CONTENDING_THREADS: usize = 4;

/// One synthetic multiget observation.
#[derive(Debug, Clone, Copy)]
struct Observation {
    fanout: u32,
    first_shard: u32,
    latency: f64,
    epoch: u64,
    key: u32,
}

/// Deterministic xorshift64 observation stream (no RNG crate on the bench hot path).
fn observations(n: usize) -> Vec<Observation> {
    let mut state = 0x5047_2017_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| {
            let r = next();
            Observation {
                fanout: 1 + (r % 16) as u32,
                first_shard: ((r >> 8) % NUM_SHARDS as u64) as u32,
                latency: 0.05 + (r >> 16 & 0xFFFF) as f64 / 65536.0 * 4.0,
                epoch: (i / 1_000) as u64,
                // A skewed key stream: half the traffic concentrates on 64 hot keys.
                key: if r & 1 == 0 {
                    ((r >> 32) % 64) as u32
                } else {
                    ((r >> 32) % 100_000) as u32
                },
            }
        })
        .collect()
}

fn record_all(metrics: &ServingMetrics, stream: &[Observation]) {
    for o in stream {
        metrics.record(
            o.fanout,
            NUM_SHARDS,
            (0..o.fanout).map(|i| (o.first_shard + i) % NUM_SHARDS),
            o.latency,
            o.epoch,
        );
    }
}

fn record_all_legacy(metrics: &LegacyServingMetrics, stream: &[Observation]) {
    for o in stream {
        metrics.record(
            o.fanout,
            NUM_SHARDS,
            (0..o.fanout).map(|i| (o.first_shard + i) % NUM_SHARDS),
            o.latency,
            o.epoch,
        );
    }
}

/// Splits the stream across [`CONTENDING_THREADS`] threads hammering one accumulator.
fn record_contended(record_chunk: &(dyn Fn(&[Observation]) + Sync), stream: &[Observation]) {
    let chunk = stream.len().div_ceil(CONTENDING_THREADS).max(1);
    std::thread::scope(|scope| {
        for slice in stream.chunks(chunk) {
            scope.spawn(move || record_chunk(slice));
        }
    });
}

/// The conformance gate: exact fields equal, percentiles within the quantization bound.
fn assert_conforms(exact: &ServingReport, quantized: &ServingReport, context: &str) {
    assert_eq!(quantized.queries, exact.queries, "{context}: queries");
    assert_eq!(
        quantized.mean_fanout.to_bits(),
        exact.mean_fanout.to_bits(),
        "{context}: mean fanout"
    );
    assert_eq!(
        quantized.max_fanout, exact.max_fanout,
        "{context}: max fanout"
    );
    assert_eq!(
        quantized.fanout_histogram, exact.fanout_histogram,
        "{context}: fanout histogram"
    );
    assert_eq!(
        quantized.shard_requests, exact.shard_requests,
        "{context}: shard requests"
    );
    assert_eq!(quantized.min_epoch, exact.min_epoch, "{context}: min epoch");
    assert_eq!(quantized.max_epoch, exact.max_epoch, "{context}: max epoch");
    for (name, q, e) in [
        ("p50", quantized.p50, exact.p50),
        ("p90", quantized.p90, exact.p90),
        ("p99", quantized.p99, exact.p99),
        ("p999", quantized.p999, exact.p999),
    ] {
        assert!(
            q <= e + 1e-12 && e <= q * (1.0 + QUANTIZATION_ERROR) + 1e-12,
            "{context}: {name} {q} outside the quantization bound of exact {e}"
        );
    }
    assert!(
        (quantized.mean_latency - exact.mean_latency).abs() < 1e-3,
        "{context}: mean latency {} vs exact {}",
        quantized.mean_latency,
        exact.mean_latency
    );
}

fn main() {
    let n = if criterion::quick_mode() {
        100_000
    } else {
        1_000_000
    };
    let stream = observations(n);
    println!(
        "telemetry_overhead: {n} observations, {NUM_SHARDS} shards{}",
        if criterion::quick_mode() {
            " (quick mode)"
        } else {
            ""
        }
    );

    // ---- Conformance gates (CI smoke relies on these panicking on regression) ----------
    let metrics = ServingMetrics::new();
    let legacy = LegacyServingMetrics::new();
    record_all(&metrics, &stream);
    record_all_legacy(&legacy, &stream);
    let exact = legacy.report(CacheStats::default());
    assert_conforms(&exact, &metrics.report(CacheStats::default()), "enabled");

    // The global toggle gates instrumentation sites, never the metrics accumulator itself:
    // with telemetry off the report must be byte-for-byte the same.
    shp_telemetry::set_enabled(false);
    metrics.reset();
    record_all(&metrics, &stream);
    assert_conforms(&exact, &metrics.report(CacheStats::default()), "disabled");
    shp_telemetry::set_enabled(true);
    println!(
        "telemetry_overhead: conformance gates passed (lock-free == legacy oracle, \
         toggle-independent); metrics footprint {} KiB",
        metrics.memory_bytes() / 1024
    );

    // ---- Measurements ------------------------------------------------------------------
    let rounds = support::rounds();
    let counter = Counter::new();
    let counter_inc = support::measure(
        rounds,
        || (),
        |()| {
            for _ in 0..n {
                counter.inc();
            }
        },
    );
    let histogram = Histogram::new();
    let histogram_record = support::measure(
        rounds,
        || (),
        |()| {
            for o in &stream {
                histogram.record(o.latency);
            }
        },
    );
    let sketch = TopKSketch::new(4096);
    let sketch_record = support::measure(
        rounds,
        || (),
        |()| {
            for o in &stream {
                sketch.record(o.key);
            }
        },
    );
    let serving_1t = support::measure(
        rounds,
        || metrics.reset(),
        |()| record_all(&metrics, &stream),
    );
    let legacy_1t = support::measure(rounds, LegacyServingMetrics::new, |fresh| {
        record_all_legacy(&fresh, &stream)
    });
    let serving_4t = support::measure(
        rounds,
        || metrics.reset(),
        |()| record_contended(&|slice| record_all(&metrics, slice), &stream),
    );
    let legacy_4t = support::measure(rounds, LegacyServingMetrics::new, |fresh| {
        record_contended(&|slice| record_all_legacy(&fresh, slice), &stream)
    });

    let speedup_1t = legacy_1t.secs_per_op / serving_1t.secs_per_op;
    let speedup_4t = legacy_4t.secs_per_op / serving_4t.secs_per_op;
    println!(
        "telemetry_overhead/primitives: counter {:.1} ns, histogram {:.1} ns, sketch {:.1} ns \
         per record",
        counter_inc.ns_per_item(n),
        histogram_record.ns_per_item(n),
        sketch_record.ns_per_item(n),
    );
    println!(
        "telemetry_overhead/serving: lock-free {:.1} ns vs legacy {:.1} ns per record \
         ({speedup_1t:.2}x); {CONTENDING_THREADS} threads contending: {:.1} ns vs {:.1} ns \
         ({speedup_4t:.2}x)",
        serving_1t.ns_per_item(n),
        legacy_1t.ns_per_item(n),
        serving_4t.ns_per_item(n),
        legacy_4t.ns_per_item(n),
    );

    let rows = vec![
        (
            "workload".to_string(),
            bench_json::render_metrics(&[
                ("records", n as f64),
                ("shards", NUM_SHARDS as f64),
                ("metrics_bytes", metrics.memory_bytes() as f64),
            ]),
        ),
        (
            "counter_inc".to_string(),
            bench_json::render_metrics(&counter_inc.metrics(n)),
        ),
        (
            "histogram_record".to_string(),
            bench_json::render_metrics(&histogram_record.metrics(n)),
        ),
        (
            "sketch_record".to_string(),
            bench_json::render_metrics(&sketch_record.metrics(n)),
        ),
        (
            "serving_record_t1".to_string(),
            bench_json::render_metrics(&serving_1t.metrics(n)),
        ),
        (
            "legacy_record_t1".to_string(),
            bench_json::render_metrics(&legacy_1t.metrics(n)),
        ),
        (
            "serving_record_t4".to_string(),
            bench_json::render_metrics(&serving_4t.metrics(n)),
        ),
        (
            "legacy_record_t4".to_string(),
            bench_json::render_metrics(&legacy_4t.metrics(n)),
        ),
        (
            "speedup_t1".to_string(),
            bench_json::render_number(speedup_1t),
        ),
        (
            "speedup_t4".to_string(),
            bench_json::render_number(speedup_4t),
        ),
    ];
    let path = bench_json::repo_root().join(bench_json::BENCH_TELEMETRY_JSON_NAME);
    bench_json::update_section(
        &path,
        "telemetry_overhead",
        &bench_json::render_section(&rows),
    )
    .expect("write BENCH_telemetry.json");
    println!(
        "telemetry_overhead: trajectory written to {}",
        path.display()
    );
}
