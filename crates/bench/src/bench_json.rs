//! Machine-readable benchmark trajectory output.
//!
//! The hot-path benches (`refinement_iteration`, `gain_computation`) record their headline
//! numbers — ops/s, ns per vertex, and an allocation-count proxy — into a single
//! `BENCH_refinement.json` at the repository root, one top-level section per bench binary.
//! Future PRs diff that file to track the performance trajectory of the refinement hot path
//! without re-parsing human-oriented bench logs.
//!
//! The vendored `serde` has no data-format backend, so this module hand-rolls the tiny JSON
//! subset it needs: a top-level object whose values are replaced as opaque raw spans. A bench
//! binary only rewrites its own section; sections written by other binaries survive untouched.

use std::path::{Path, PathBuf};

/// The refinement-trajectory file name, created at the repository root.
pub const BENCH_JSON_NAME: &str = "BENCH_refinement.json";

/// The ingestion-trajectory file name (written by the `graph_ingest` bench), created at the
/// repository root.
pub const BENCH_INGEST_JSON_NAME: &str = "BENCH_ingest.json";

/// The telemetry-trajectory file name (written by the `telemetry_overhead` bench), created at
/// the repository root.
pub const BENCH_TELEMETRY_JSON_NAME: &str = "BENCH_telemetry.json";

/// The online-repartitioning trajectory file name (written by the `controller_drift` bench),
/// created at the repository root.
pub const BENCH_CONTROLLER_JSON_NAME: &str = "BENCH_controller.json";

/// The out-of-core trajectory file name (written by the `outofcore` bench: streaming `.shpb`
/// generation and mmap-vs-owned open latency/residency), created at the repository root.
pub const BENCH_OUTOFCORE_JSON_NAME: &str = "BENCH_outofcore.json";

/// The fault-tolerance trajectory file name (written by the `drill` bench: availability,
/// retries, and recovery churn through the kill → degrade → recover failure drill), created
/// at the repository root.
pub const BENCH_DRILL_JSON_NAME: &str = "BENCH_drill.json";

/// The repository root, resolved relative to this crate's manifest (`crates/bench/../..`).
pub fn repo_root() -> PathBuf {
    let raw = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    raw.canonicalize().unwrap_or(raw)
}

/// A string→number map rendered as one JSON object (a bench metric row).
pub fn render_metrics(metrics: &[(&str, f64)]) -> String {
    let body: Vec<String> = metrics
        .iter()
        .map(|(k, v)| format!("\"{k}\": {}", render_number(*v)))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Renders an f64 as a JSON number (finite values only; non-finite become `null`).
pub fn render_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Renders a section body from named metric rows plus named scalar values.
pub fn render_section(rows: &[(String, String)]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    format!("{{\n{}\n  }}", body.join(",\n"))
}

/// Reads `path` (if it exists), replaces or appends the top-level `section` with the raw JSON
/// value `body`, and writes the file back. Other sections are preserved byte-for-byte. A
/// malformed existing file is replaced wholesale (the trajectory file is generated output, not
/// a source of truth).
pub fn update_section(path: &Path, section: &str, body: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut sections = parse_top_level(&existing).unwrap_or_default();
    match sections.iter_mut().find(|(k, _)| k == section) {
        Some((_, v)) => *v = body.to_string(),
        None => sections.push((section.to_string(), body.to_string())),
    }
    let rendered: Vec<String> = sections
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    std::fs::write(path, format!("{{\n{}\n}}\n", rendered.join(",\n")))
}

/// Parses the top level of a JSON object into `(key, raw value span)` pairs, preserving order.
/// Returns `None` on anything that does not scan as `{ "key": <value>, ... }`.
pub fn parse_top_level(input: &str) -> Option<Vec<(String, String)>> {
    let mut chars = input.char_indices().peekable();
    skip_ws(&mut chars);
    if chars.next().map(|(_, c)| c) != Some('{') {
        return None;
    }
    let mut result = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek().copied() {
            Some((_, '}')) => {
                chars.next();
                return Some(result);
            }
            Some((_, '"')) => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next().map(|(_, c)| c) != Some(':') {
            return None;
        }
        skip_ws(&mut chars);
        let start = chars.peek()?.0;
        let end = scan_value(input, &mut chars)?;
        result.push((key, input[start..end].trim_end().to_string()));
        skip_ws(&mut chars);
        match chars.peek().copied() {
            Some((_, ',')) => {
                chars.next();
            }
            Some((_, '}')) => {}
            _ => return None,
        }
    }
}

type CharStream<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut CharStream<'_>) {
    while matches!(chars.peek(), Some(&(_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut CharStream<'_>) -> Option<String> {
    if chars.next().map(|(_, c)| c) != Some('"') {
        return None;
    }
    let mut out = String::new();
    loop {
        let (_, c) = chars.next()?;
        match c {
            '"' => return Some(out),
            '\\' => {
                let (_, escaped) = chars.next()?;
                out.push(escaped);
            }
            _ => out.push(c),
        }
    }
}

/// Consumes one JSON value (scalar, string, array, or object), returning the byte offset just
/// past its end.
fn scan_value(input: &str, chars: &mut CharStream<'_>) -> Option<usize> {
    let mut depth = 0usize;
    let mut end = chars.peek()?.0;
    loop {
        let Some(&(i, c)) = chars.peek() else {
            return (depth == 0).then_some(end);
        };
        match c {
            '"' => {
                parse_string(chars)?;
                end = chars.peek().map_or(input.len(), |&(j, _)| j);
            }
            '{' | '[' => {
                depth += 1;
                chars.next();
                end = i + 1;
            }
            '}' | ']' => {
                if depth == 0 {
                    return Some(end);
                }
                depth -= 1;
                chars.next();
                end = i + 1;
            }
            ',' if depth == 0 => return Some(end),
            _ => {
                chars.next();
                end = i + c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_nested_sections() {
        let input = r#"{
  "a": {"x": 1, "y": [1, 2, {"z": "s,tr}ing"}]},
  "b": 3.5,
  "c": {"nested": {"deep": true}}
}"#;
        let sections = parse_top_level(input).expect("valid");
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].0, "a");
        assert_eq!(sections[1], ("b".to_string(), "3.5".to_string()));
        assert!(sections[2].1.contains("\"deep\": true"));
    }

    #[test]
    fn update_section_preserves_other_sections() {
        let dir = std::env::temp_dir().join(format!("shp_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let _ = std::fs::remove_file(&path);
        update_section(&path, "one", "{\"v\": 1}").unwrap();
        update_section(&path, "two", "{\"v\": 2}").unwrap();
        update_section(&path, "one", "{\"v\": 9}").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let sections = parse_top_level(&content).expect("written file parses");
        assert_eq!(
            sections,
            vec![
                ("one".to_string(), "{\"v\": 9}".to_string()),
                ("two".to_string(), "{\"v\": 2}".to_string()),
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_existing_content_is_replaced() {
        let dir = std::env::temp_dir().join(format!("shp_bench_json_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        std::fs::write(&path, "not json at all").unwrap();
        update_section(&path, "s", "{}").unwrap();
        let sections = parse_top_level(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(sections, vec![("s".to_string(), "{}".to_string())]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn number_rendering_is_json_safe() {
        assert_eq!(render_number(3.0), "3");
        assert_eq!(render_number(3.25), "3.250");
        assert_eq!(render_number(f64::INFINITY), "null");
        assert_eq!(render_number(f64::NAN), "null");
        assert_eq!(
            render_metrics(&[("a", 1.0), ("b", 0.5)]),
            "{\"a\": 1, \"b\": 0.500}"
        );
    }

    #[test]
    fn repo_root_contains_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }
}
