//! Figure 4: distribution of multi-get latency as a function of query fanout.
//!
//! * `--synthetic` (Figure 4a): trivial parallel requests at every fanout 1..40.
//! * `--replay` (Figure 4b): a Facebook-like friendship graph sharded over 40 servers with SHP,
//!   the live query workload replayed against the simulated cluster, latency bucketed by the
//!   realized fanout of every query.
//!
//! Without arguments both experiments run.

use shp_bench::{env_usize, TextTable};
use shp_core::{partition_recursive, ShpConfig};
use shp_datagen::{social_graph, SocialGraphConfig};
use shp_hypergraph::Partition;
use shp_sharding_sim::{LatencyModel, ShardedCluster};

fn print_report(title: &str, report: &shp_sharding_sim::ReplayReport) {
    println!("{title}");
    println!("average fanout: {:.2}\n", report.average_fanout);
    let mut table = TextTable::new(["fanout", "queries", "p50", "p90", "p95", "p99", "mean"]);
    for (fanout, summary) in &report.by_fanout {
        table.add_row([
            fanout.to_string(),
            summary.count.to_string(),
            format!("{:.2}t", summary.p50),
            format!("{:.2}t", summary.p90),
            format!("{:.2}t", summary.p95),
            format!("{:.2}t", summary.p99),
            format!("{:.2}t", summary.mean),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_synthetic = args.is_empty() || args.iter().any(|a| a == "--synthetic");
    let run_replay = args.is_empty() || args.iter().any(|a| a == "--replay");
    let servers = env_usize("SHP_BENCH_SERVERS", 40) as u32;
    let users = env_usize("SHP_BENCH_USERS", 20_000);
    let model = LatencyModel::default();

    if run_synthetic {
        // Figure 4a: latency of f parallel trivial requests, f = 1..40.
        let dummy_graph = social_graph(&SocialGraphConfig {
            num_users: servers as usize,
            ..Default::default()
        });
        let uniform =
            Partition::from_assignment(&dummy_graph, servers, (0..servers).collect::<Vec<_>>())
                .expect("one record per server");
        let cluster = ShardedCluster::from_partition(&uniform, model.clone());
        let report = cluster.synthetic_fanout_sweep(servers.min(40), 20_000, 0x5047);
        print_report(
            "Figure 4a — synthetic queries (latency in units of t, the single-request mean)",
            &report,
        );
    }

    if run_replay {
        // Figure 4b: a social graph sharded with SHP over 40 servers, live workload replayed.
        let graph = social_graph(&SocialGraphConfig {
            num_users: users,
            avg_degree: 20,
            avg_community_size: 120,
            cross_community_fraction: 0.08,
            seed: 0x5047,
        });
        let config = ShpConfig::recursive_bisection(servers).with_seed(0x5047);
        let shp = partition_recursive(&graph, &config).expect("valid config");
        let cluster = ShardedCluster::from_partition(&shp.partition, model.clone());
        let report = cluster.replay(&graph, 1, 0x5047);
        print_report(
            &format!(
                "Figure 4b — real-world-style workload on {servers} servers sharded with SHP (average fanout {:.1})",
                report.average_fanout
            ),
            &report,
        );

        // For contrast, the same workload under random sharding (the \"fanout 40\" end of the plot).
        let random = shp_baselines::RandomPartitioner::new(1);
        let random_partition = random.partition_into(&graph, servers, 0.05);
        let random_cluster = ShardedCluster::from_partition(&random_partition, model);
        let random_report = random_cluster.replay(&graph, 1, 0x5047);
        println!(
            "Random sharding for comparison: average fanout {:.1}, mean latency {:.2}t (SHP mean {:.2}t) — {:.1}x reduction\n",
            random_report.average_fanout,
            random_report.overall.mean,
            report.overall.mean,
            random_report.overall.mean / report.overall.mean.max(1e-9),
        );
    }
}
