//! Figure 5: scalability of SHP-2 in the distributed setting.
//!
//! * `--edges` (Figure 5a): total time as a function of the number of edges |E| for bucket
//!   counts k ∈ {2, 32, 512, 8192, 131072}, verifying the O(log k · |E|) complexity.
//! * `--machines` (Figure 5b): run-time and total machine-time on the largest graph for
//!   4 / 8 / 16 simulated workers.
//!
//! Without arguments both experiments run.

use shp_bench::{env_usize, fmt_secs, TextTable};
use shp_core::{partition_distributed, ShpConfig};
use shp_datagen::{social_graph, SocialGraphConfig};
use std::time::Instant;

fn fb_like(num_users: usize) -> shp_hypergraph::BipartiteGraph {
    social_graph(&SocialGraphConfig {
        num_users,
        avg_degree: 25,
        avg_community_size: 150,
        cross_community_fraction: 0.08,
        seed: 0x5047,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_edges = args.is_empty() || args.iter().any(|a| a == "--edges");
    let run_machines = args.is_empty() || args.iter().any(|a| a == "--machines");
    let base_users = env_usize("SHP_BENCH_USERS", 10_000);
    let max_k = env_usize("SHP_BENCH_MAX_K", 512) as u32;

    if run_edges {
        println!("Figure 5a — SHP-2 total time vs |E| on 4 simulated workers\n");
        let mut table = TextTable::new(["users", "|E|", "k", "run-time", "total time (4 workers)"]);
        for multiplier in [1usize, 2, 4, 8] {
            let graph = fb_like(base_users * multiplier);
            for &k in &[2u32, 32, 512, 8192, 131_072] {
                if k > max_k || k as usize > graph.num_data() {
                    continue;
                }
                let config = ShpConfig::recursive_bisection(k).with_seed(0x5047);
                let start = Instant::now();
                let result = partition_distributed(&graph, &config, 4).expect("valid config");
                let elapsed = start.elapsed();
                table.add_row([
                    graph.num_data().to_string(),
                    graph.num_edges().to_string(),
                    k.to_string(),
                    fmt_secs(elapsed),
                    fmt_secs(elapsed * 4),
                ]);
                let _ = result;
            }
        }
        println!("{}", table.render());
    }

    if run_machines {
        println!("Figure 5b — SHP-2 run-time and total time vs number of workers (largest graph, k = 32)\n");
        let graph = fb_like(base_users * 8);
        let mut table = TextTable::new([
            "workers",
            "run-time",
            "total time",
            "remote messages",
            "remote fraction",
        ]);
        for workers in [4usize, 8, 16] {
            let config = ShpConfig::recursive_bisection(32).with_seed(0x5047);
            let start = Instant::now();
            let result = partition_distributed(&graph, &config, workers).expect("valid config");
            let elapsed = start.elapsed();
            table.add_row([
                workers.to_string(),
                fmt_secs(elapsed),
                fmt_secs(elapsed * workers as u32),
                result.metrics.total_remote_messages().to_string(),
                format!("{:.2}", result.metrics.remote_fraction()),
            ]);
        }
        println!("{}", table.render());
    }
}
