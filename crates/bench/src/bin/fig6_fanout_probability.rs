//! Figure 6: fanout reduction achieved by SHP-2 on soc-Pokec as a function of the fanout
//! probability p, for several bucket counts.
//!
//! The reported quantity is the percentage reduction in (non-probabilistic) fanout relative to
//! the random initial partition; the paper finds 0.4 ≤ p ≤ 0.8 best, with p = 0.5 the default.

use shp_baselines::RandomPartitioner;
use shp_bench::{bench_scale, env_usize, load_dataset, TextTable};
use shp_core::{partition_recursive, ObjectiveKind, ShpConfig};
use shp_datagen::Dataset;
use shp_hypergraph::average_fanout;

fn main() {
    let scale = bench_scale();
    let max_k = env_usize("SHP_BENCH_MAX_K", 32) as u32;
    let graph = load_dataset(Dataset::SocPokec, scale);
    let ks: Vec<u32> = [2u32, 8, 32, 128, 512]
        .into_iter()
        .filter(|&k| k <= max_k)
        .collect();
    let ps = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

    println!(
        "Figure 6 — fanout reduction (%) vs fanout probability p on soc-Pokec (scale {scale})\n"
    );
    let mut table = TextTable::new(["k", "p", "fanout", "reduction vs random (%)"]);
    for &k in &ks {
        let random = RandomPartitioner::new(0x5047).partition_into(&graph, k, 0.05);
        let random_fanout = average_fanout(&graph, &random);
        for &p in &ps {
            let objective = if p >= 1.0 {
                ObjectiveKind::Fanout
            } else {
                ObjectiveKind::ProbabilisticFanout { p }
            };
            let config = ShpConfig::recursive_bisection(k)
                .with_objective(objective)
                .with_seed(0x5047);
            let result = partition_recursive(&graph, &config).expect("valid config");
            let reduction = (result.report.final_fanout - random_fanout) / random_fanout * 100.0;
            table.add_row([
                k.to_string(),
                format!("{p:.1}"),
                format!("{:.3}", result.report.final_fanout),
                format!("{reduction:+.1}"),
            ]);
        }
    }
    println!("{}", table.render());
}
