//! Figure 7: progress of fanout optimization with SHP-k for p = 0.5 and p = 1.0 on soc-LJ with
//! k = 8 — average fanout per iteration (7a) and the percentage of moved vertices per
//! iteration (7b).

use shp_bench::{bench_scale, load_dataset, TextTable};
use shp_core::{partition_direct, ObjectiveKind, ShpConfig};
use shp_datagen::Dataset;

fn main() {
    let scale = bench_scale();
    let graph = load_dataset(Dataset::SocLiveJournal, scale);
    let k = 8;

    println!("Figure 7 — SHP-k convergence on soc-LJ (scale {scale}, k = {k})\n");
    let mut table = TextTable::new([
        "p",
        "iteration",
        "fanout",
        "moved vertices (%)",
        "candidates",
    ]);
    for (label, objective) in [
        ("0.5", ObjectiveKind::ProbabilisticFanout { p: 0.5 }),
        ("1.0", ObjectiveKind::Fanout),
    ] {
        let config = ShpConfig::direct(k)
            .with_objective(objective)
            .with_seed(0x5047)
            .with_max_iterations(50);
        let result = partition_direct(&graph, &config).expect("valid config");
        for stats in &result.report.history {
            table.add_row([
                label.to_string(),
                stats.iteration.to_string(),
                format!("{:.3}", stats.fanout_after),
                format!("{:.2}", stats.moved_fraction * 100.0),
                stats.candidates.to_string(),
            ]);
        }
        println!(
            "p = {label}: final fanout {:.3} after {} iterations\n",
            result.report.final_fanout,
            result.report.total_iterations()
        );
    }
    println!("{}", table.render());
}
