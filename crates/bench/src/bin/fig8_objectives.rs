//! Figure 8: the impact of the optimization objective on the final (non-probabilistic) fanout
//! for SHP-2 across hypergraphs and k ∈ {2, 8, 32}.
//!
//! * 8a — percentage increase in fanout when optimizing direct fanout (p = 1.0) instead of
//!   p-fanout with p = 0.5.
//! * 8b — percentage increase when optimizing the clique-net objective (the p → 0 limit)
//!   instead of p = 0.5.

use shp_bench::{bench_scale, env_usize, load_dataset, TextTable};
use shp_core::{partition_recursive, ObjectiveKind, ShpConfig};
use shp_datagen::Dataset;

fn main() {
    let scale = bench_scale();
    let max_k = env_usize("SHP_BENCH_MAX_K", 32) as u32;
    let ks: Vec<u32> = [2u32, 8, 32].into_iter().filter(|&k| k <= max_k).collect();
    let datasets = [
        Dataset::EmailEnron,
        Dataset::SocEpinions,
        Dataset::WebBerkStan,
        Dataset::WebStanford,
        Dataset::SocPokec,
        Dataset::SocLiveJournal,
    ];

    println!("Figure 8 — fanout increase over p = 0.5 for direct (p = 1.0) and clique-net (p → 0) objectives (scale {scale})\n");
    let mut table = TextTable::new([
        "hypergraph",
        "k",
        "fanout p=0.5",
        "fanout p=1.0",
        "8a: direct vs 0.5 (%)",
        "fanout clique-net",
        "8b: clique-net vs 0.5 (%)",
    ]);
    for &dataset in &datasets {
        let graph = load_dataset(dataset, scale);
        for &k in &ks {
            let run = |objective: ObjectiveKind| {
                let config = ShpConfig::recursive_bisection(k)
                    .with_objective(objective)
                    .with_seed(0x5047);
                partition_recursive(&graph, &config)
                    .expect("valid config")
                    .report
                    .final_fanout
            };
            let half = run(ObjectiveKind::ProbabilisticFanout { p: 0.5 });
            let direct = run(ObjectiveKind::Fanout);
            let clique = run(ObjectiveKind::CliqueNet);
            table.add_row([
                dataset.spec().name.to_string(),
                k.to_string(),
                format!("{half:.3}"),
                format!("{direct:.3}"),
                format!("{:+.1}", (direct - half) / half * 100.0),
                format!("{clique:.3}"),
                format!("{:+.1}", (clique - half) / half * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
}
