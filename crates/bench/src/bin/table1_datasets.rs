//! Table 1: properties of the hypergraphs used in the experiments.
//!
//! Prints, for every registered dataset, the published |Q| / |D| / |E| and the sizes of the
//! synthetic stand-in generated at the benchmark scale.

use shp_bench::{bench_scale, load_dataset, TextTable};
use shp_datagen::Dataset;
use shp_hypergraph::GraphStats;

fn main() {
    let scale = bench_scale();
    println!("Table 1 — dataset properties (synthetic stand-ins at scale {scale})\n");
    let mut table = TextTable::new([
        "hypergraph",
        "paper |Q|",
        "paper |D|",
        "paper |E|",
        "ours |Q|",
        "ours |D|",
        "ours |E|",
    ]);
    for &dataset in Dataset::all() {
        let spec = dataset.spec();
        // The billion-edge graphs are only generated for the scalability runs; keep Table 1
        // fast by capping their generation scale.
        let effective_scale = if spec.paper_edges > 100_000_000 {
            scale * 0.05
        } else {
            scale
        };
        let graph = load_dataset(dataset, effective_scale.max(1e-4));
        let stats = GraphStats::compute(&graph);
        table.add_row([
            spec.name.to_string(),
            spec.paper_queries.to_string(),
            spec.paper_data.to_string(),
            spec.paper_edges.to_string(),
            stats.num_queries.to_string(),
            stats.num_data.to_string(),
            stats.num_edges.to_string(),
        ]);
    }
    println!("{}", table.render());
}
