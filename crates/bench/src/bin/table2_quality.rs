//! Table 2 (and the relative-quality plot of Figure 2-left of the evaluation): fanout achieved
//! by SHP-2, SHP-k and the baseline partitioners across datasets and bucket counts.
//!
//! For every dataset and k it prints the raw fanout per algorithm plus the percentage above the
//! minimum fanout achieved by any algorithm (the paper's "(Fanout − Min Fanout) / Min Fanout").

use shp_bench::{
    bench_scale, env_usize, fmt_secs, load_dataset, quality_algorithms, run_algorithm, TextTable,
};
use shp_datagen::Dataset;

fn main() {
    let scale = bench_scale();
    let epsilon = 0.05;
    // The paper sweeps k ∈ {2, 8, 32, 128, 512}; SHP_BENCH_MAX_K trims the sweep for quick runs.
    let max_k = env_usize("SHP_BENCH_MAX_K", 32) as u32;
    let ks: Vec<u32> = [2u32, 8, 32, 128, 512]
        .into_iter()
        .filter(|&k| k <= max_k)
        .collect();

    println!(
        "Table 2 — fanout by algorithm, dataset, and bucket count (scale {scale}, eps {epsilon})\n"
    );
    let mut table = TextTable::new([
        "hypergraph",
        "k",
        "algorithm",
        "fanout",
        "vs min (%)",
        "imbalance",
        "time",
    ]);

    for &dataset in Dataset::quality_benchmark_set() {
        let graph = load_dataset(dataset, scale);
        for &k in &ks {
            let runs: Vec<_> = quality_algorithms()
                .iter()
                .map(|name| run_algorithm(name, &graph, k, epsilon, 0x5047))
                .collect();
            let min_fanout = runs.iter().map(|r| r.fanout).fold(f64::INFINITY, f64::min);
            for run in runs {
                let rel = (run.fanout - min_fanout) / min_fanout * 100.0;
                table.add_row([
                    dataset.spec().name.to_string(),
                    k.to_string(),
                    run.algorithm.clone(),
                    format!("{:.3}", run.fanout),
                    format!("{:+.1}", rel),
                    format!("{:.3}", run.imbalance),
                    fmt_secs(run.elapsed),
                ]);
            }
        }
        // Print incrementally so long runs show progress.
        println!("{}", table.render());
        table = TextTable::new([
            "hypergraph",
            "k",
            "algorithm",
            "fanout",
            "vs min (%)",
            "imbalance",
            "time",
        ]);
    }
}
