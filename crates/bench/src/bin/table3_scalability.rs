//! Table 3 / Figure 3 of the evaluation: run-time of the distributed partitioners across the
//! large hypergraphs and bucket counts, on a fixed number of (simulated) worker machines.
//!
//! SHP-2 and SHP-k run on the vertex-centric engine with 4 workers; the single-machine
//! multilevel baseline (the Mondriaan/Zoltan stand-in) is included to show where it stops being
//! feasible — mirroring the paper's finding that only SHP-2 completes on every instance.

use shp_baselines::{full_registry, MultilevelConfig, MultilevelPartitioner};
use shp_bench::{bench_scale, env_usize, fmt_secs, load_dataset, TextTable};
use shp_core::api::{DistributedShp, NoopObserver, PartitionSpec, Partitioner};
use shp_datagen::{power_law_bipartite, Dataset, PowerLawConfig};
use shp_hypergraph::average_fanout;
use std::time::Duration;

/// The worker-scaling section: run the in-process SHP paths on one fixed power-law graph with
/// `workers ∈ {1, 2, 4, 8}` and report wall-clock speedup over the single-worker run. The
/// outcomes are asserted bit-identical across worker counts (the determinism contract), so the
/// speedup column is the only thing that may vary.
fn parallel_speedup_section() {
    let queries = env_usize("SHP_BENCH_SPEEDUP_QUERIES", 40_000);
    let config = PowerLawConfig {
        num_queries: queries,
        num_data: queries,
        min_degree: 4,
        max_degree: 120,
        seed: 0x5047,
        ..Default::default()
    };
    let graph = power_law_bipartite(&config);
    let hardware = rayon::current_num_threads();
    println!(
        "Parallel speedup — SHP on a power-law graph ({} queries, {} keys, {} edges/pins), \
         {hardware} hardware thread(s)",
        graph.num_queries(),
        graph.num_data(),
        graph.num_edges()
    );
    if hardware == 1 {
        println!(
            "note: this machine exposes a single hardware thread; worker threads are real but \
             time-share one core, so expect speedup ~1.00x here and near-linear scaling on \
             multi-core hardware"
        );
    }
    println!();
    let registry = full_registry();
    let mut table = TextTable::new(["algorithm", "workers", "time", "speedup", "fanout"]);
    for algorithm in ["shpk", "shp2"] {
        let mut baseline: Option<(Duration, Vec<u32>)> = None;
        for workers in [1usize, 2, 4, 8] {
            let spec = PartitionSpec::new(16)
                .with_seed(0x5047)
                .with_max_iterations(10)
                .with_workers(workers);
            let outcome = registry
                .run(algorithm, &graph, &spec, &mut NoopObserver)
                .expect("registered algorithm and valid spec");
            let speedup = match &baseline {
                None => {
                    baseline = Some((outcome.elapsed, outcome.partition.assignment().to_vec()));
                    "1.00x".to_string()
                }
                Some((t1, assignment)) => {
                    assert_eq!(
                        assignment,
                        outcome.partition.assignment(),
                        "{algorithm}: outcome must be bit-identical at workers={workers}"
                    );
                    format!("{:.2}x", t1.as_secs_f64() / outcome.elapsed.as_secs_f64())
                }
            };
            table.add_row([
                algorithm.to_string(),
                workers.to_string(),
                fmt_secs(outcome.elapsed),
                speedup,
                format!("{:.3}", outcome.fanout),
            ]);
        }
    }
    println!("{}", table.render());
}

fn main() {
    parallel_speedup_section();
    let scale = bench_scale();
    let workers = env_usize("SHP_BENCH_WORKERS", 4);
    let max_k = env_usize("SHP_BENCH_MAX_K", 512) as u32;
    let ks: Vec<u32> = [32u32, 512, 8192]
        .into_iter()
        .filter(|&k| k <= max_k)
        .collect();
    // Budget per run standing in for the paper's 10-hour limit (scaled to the benchmark sizes).
    let budget = Duration::from_secs(env_usize("SHP_BENCH_BUDGET_SECS", 300) as u64);
    let epsilon = 0.05;

    println!(
        "Table 3 — distributed run-time in seconds ({workers} simulated workers, scale {scale}, budget {}s per run)\n",
        budget.as_secs()
    );
    let mut table = TextTable::new(["hypergraph", "k", "algorithm", "time", "fanout", "status"]);

    for &dataset in Dataset::scalability_benchmark_set() {
        // The billion-edge graphs are generated at a further-reduced scale so the sweep finishes.
        let spec = dataset.spec();
        let effective_scale = if spec.paper_edges > 100_000_000 {
            scale * 0.05
        } else {
            scale
        };
        let graph = load_dataset(dataset, effective_scale.max(1e-4));
        for &k in &ks {
            let run_spec = PartitionSpec::new(k)
                .with_epsilon(epsilon)
                .with_seed(0x5047)
                .with_workers(workers);
            // SHP-2 (recursive bisection on the BSP engine), via the unified trait.
            let shp2 = DistributedShp::default()
                .partition(&graph, &run_spec, &mut NoopObserver)
                .expect("valid spec");
            table.add_row([
                spec.name.to_string(),
                k.to_string(),
                "SHP-2".to_string(),
                fmt_secs(shp2.elapsed),
                format!("{:.2}", shp2.fanout),
                "ok".to_string(),
            ]);

            // SHP-k (direct) — the paper shows it scales linearly in k, so skip huge k.
            if k <= 512 {
                let shpk = DistributedShp::direct()
                    .partition(&graph, &run_spec, &mut NoopObserver)
                    .expect("valid spec");
                table.add_row([
                    spec.name.to_string(),
                    k.to_string(),
                    "SHP-k".to_string(),
                    fmt_secs(shpk.elapsed),
                    format!("{:.2}", shpk.fanout),
                    "ok".to_string(),
                ]);
            } else {
                table.add_row([
                    spec.name.to_string(),
                    k.to_string(),
                    "SHP-k".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "skipped (k too large for direct mode budget)".to_string(),
                ]);
            }

            // Multilevel-FM baseline (single machine): only attempted on the smaller graphs,
            // like Zoltan/Parkway in the paper it fails (here: exceeds the budget) on the rest.
            if graph.num_edges() <= 2_000_000 && k <= 512 {
                let ml = MultilevelPartitioner::new(MultilevelConfig::default())
                    .partition(&graph, &run_spec, &mut NoopObserver)
                    .expect("valid spec");
                let status = if ml.elapsed > budget {
                    "exceeded budget"
                } else {
                    "ok"
                };
                table.add_row([
                    spec.name.to_string(),
                    k.to_string(),
                    "Multilevel-FM".to_string(),
                    fmt_secs(ml.elapsed),
                    format!("{:.2}", average_fanout(&graph, &ml.partition)),
                    status.to_string(),
                ]);
            } else {
                table.add_row([
                    spec.name.to_string(),
                    k.to_string(),
                    "Multilevel-FM".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "failed (single-machine baseline infeasible at this size)".to_string(),
                ]);
            }
        }
        println!("{}", table.render());
        table = TextTable::new(["hypergraph", "k", "algorithm", "time", "fanout", "status"]);
    }
}
