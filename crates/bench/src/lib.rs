//! # shp-bench
//!
//! Shared harness utilities for the benchmark binaries that regenerate the tables and figures
//! of the SHP paper's evaluation (Section 4). Each binary prints the same rows/series the paper
//! reports; see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded runs.
//!
//! All binaries accept the environment variable `SHP_BENCH_SCALE` (default `0.01`) controlling
//! the fraction of the published dataset sizes that is synthesized, so the full suite runs on a
//! laptop while preserving the qualitative shapes of the results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use shp_baselines::full_registry;
use shp_core::api::{NoopObserver, PartitionSpec};
use shp_datagen::Dataset;
use shp_hypergraph::{BipartiteGraph, Partition};
use std::time::Duration;

pub mod bench_json;

/// Default dataset scale used by the benchmark binaries.
pub const DEFAULT_SCALE: f64 = 0.01;

/// Reads the benchmark scale from `SHP_BENCH_SCALE` (fraction of the published dataset size).
pub fn bench_scale() -> f64 {
    std::env::var("SHP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(DEFAULT_SCALE)
}

/// Reads an environment variable as usize with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Generates a dataset at the benchmark scale with the standard seed, removing trivial queries
/// (degree ≤ 1) exactly as the paper's experiments do.
pub fn load_dataset(dataset: Dataset, scale: f64) -> BipartiteGraph {
    dataset.generate(scale, 0x5047).filter_small_queries(2)
}

/// Result of running one partitioner on one graph.
#[derive(Debug, Clone)]
pub struct AlgorithmRun {
    /// Algorithm name as printed in the tables.
    pub algorithm: String,
    /// Average fanout of the produced partition.
    pub fanout: f64,
    /// Realized imbalance.
    pub imbalance: f64,
    /// Wall-clock run time.
    pub elapsed: Duration,
    /// The partition itself.
    pub partition: Partition,
}

/// The registry names compared in the quality tables. `shpk` and `shp2` are ours; the
/// remaining entries are the stand-ins for the third-party packages of the paper.
pub fn quality_algorithms() -> Vec<String> {
    vec![
        "shpk".to_string(),
        "shp2".to_string(),
        "multilevel".to_string(),
        "label-propagation".to_string(),
        "greedy".to_string(),
        "random".to_string(),
    ]
}

/// Runs one registry algorithm on a graph through the unified `Partitioner` trait.
///
/// # Panics
/// Panics on an unknown registry name or an invalid spec (the harness passes literal specs).
pub fn run_algorithm(
    name: &str,
    graph: &BipartiteGraph,
    k: u32,
    epsilon: f64,
    seed: u64,
) -> AlgorithmRun {
    let registry = full_registry();
    let spec = PartitionSpec::new(k).with_epsilon(epsilon).with_seed(seed);
    let outcome = registry
        .run(name, graph, &spec, &mut NoopObserver)
        .expect("registered algorithm and valid spec");
    AlgorithmRun {
        algorithm: outcome.algorithm,
        fanout: outcome.fanout,
        imbalance: outcome.imbalance,
        elapsed: outcome.elapsed,
        partition: outcome.partition,
    }
}

/// A minimal fixed-width text table printer used by every benchmark binary.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same arity as the header).
    pub fn add_row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i] + 2))
                .collect::<String>()
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.add_row(["alpha", "1"]);
        t.add_row(["b", "12345"]);
        let rendered = t.render();
        assert!(rendered.contains("alpha"));
        assert!(rendered.contains("12345"));
        assert_eq!(rendered.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn text_table_rejects_wrong_arity() {
        let mut t = TextTable::new(["a", "b"]);
        t.add_row(["only-one"]);
    }

    #[test]
    fn run_algorithm_covers_all_quality_algorithms() {
        let graph = load_dataset(Dataset::EmailEnron, 0.005);
        for name in quality_algorithms() {
            let run = run_algorithm(&name, &graph, 4, 0.05, 1);
            assert!(run.fanout >= 1.0, "{name} fanout {}", run.fanout);
            assert_eq!(run.partition.num_buckets(), 4);
        }
    }

    #[test]
    fn bench_scale_defaults_and_parses() {
        // The default is used when the variable is unset or invalid (we cannot mutate the
        // environment safely in parallel tests, so just check the default constant).
        const { assert!(DEFAULT_SCALE > 0.0 && DEFAULT_SCALE <= 1.0) };
        assert!(bench_scale() > 0.0);
    }

    #[test]
    fn shp_beats_random_on_a_registry_dataset() {
        let graph = load_dataset(Dataset::Fb10M, 0.005);
        let shp = run_algorithm("shp2", &graph, 8, 0.05, 1);
        let random = run_algorithm("random", &graph, 8, 0.05, 1);
        assert!(
            shp.fanout < random.fanout,
            "shp2 {} vs random {}",
            shp.fanout,
            random.fanout
        );
    }
}
