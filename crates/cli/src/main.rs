//! `shp` — command-line interface for the Social Hash Partitioner.
//!
//! Subcommands:
//!
//! * `generate <dataset> <scale> <output.hgr>` — synthesize a Table-1 dataset stand-in and
//!   write it in hMetis format.
//! * `algorithms` — list every partitioning algorithm registered in the workspace registry.
//! * `convert <input> <output> [--from <fmt>] [--to <fmt>] [--workers <n>]` — convert a
//!   graph between the edge-list, hMetis, and `.shpb` compact binary formats, with format
//!   autodetection by extension and contents (`shp convert --help` spells out the rules).
//! * `partition <input> <k> <output.part> [--mode <algorithm>] [--p <p>] [--epsilon <eps>]
//!   [--seed <seed>] [--iterations <n>] [--workers <n>] [--json]` — partition a graph file
//!   (any supported format, autodetected — a `.shpb` input skips parsing entirely) with
//!   **any registered algorithm** (SHP or baseline) and write the bucket of every vertex;
//!   `--json` emits the full `PartitionOutcome`. `--workers` sets the number of real threads
//!   driving both the text parse and the refinement hot paths — the output is bit-identical
//!   for every worker count (see the determinism contract in `shp-core`), only the
//!   wall-clock time changes.
//! * `evaluate <input> <partition.part> <k> [--json]` — report fanout, p-fanout, hyperedge
//!   cut, and imbalance of an existing partition (any graph format).
//! * `replay [options]` — drive a synthetic open-loop multiget workload through the
//!   `shp-serving` engine under a random and an SHP partition and compare mean fanout,
//!   latency percentiles, and shard load skew. `--graph <file>` serves a graph loaded from
//!   disk instead of a generated dataset.
//! * `serve [options]` — start serving, compute an SHP repartition in the background through
//!   the unified registry, and warm-start it *live* mid-run. `--graph <file>` (ideally a
//!   `.shpb` snapshot) plus `--partition <file>` warm-start serving from on-disk artifacts:
//!   the engine opens on the saved placement instead of a random one.
//!
//! Every failure path is a typed [`ShpError`]; `?` composes from file parsing through
//! partitioning to the serving engine without a single stringly-typed error.
//!
//! The hMetis format is the one exchanged by hMetis/PaToH/Mondriaan/Parkway/Zoltan, so
//! partitions can be compared against other tools directly.

use shp_baselines::{full_registry, RandomPartitioner};
use shp_core::api::{AlgorithmRegistry, NoopObserver, PartitionOutcome, PartitionSpec};
use shp_core::{ObjectiveKind, ShpError, ShpResult};
use shp_datagen::Dataset;
use shp_hypergraph::io::GraphFormat;
use shp_hypergraph::{
    average_fanout, average_p_fanout, hyperedge_cut, io, BipartiteGraph, GraphStats,
};
use shp_serving::{open_loop_schedule, EngineConfig, ServingEngine, WorkloadConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("algorithms") => cmd_algorithms(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("partition") => cmd_partition(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  shp generate <dataset> <scale> <output.hgr>
  shp algorithms
  shp convert <input> <output> [--from <format>] [--to <format>] [--workers <n>]
  shp partition <input> <k> <output.part> [--mode <algorithm>] [--p <p>] [--epsilon <eps>]
                [--seed <seed>] [--iterations <n>] [--workers <n>] [--json]
  shp evaluate <input> <partition.part> <k> [--json]
  shp replay [--dataset <name> | --graph <file>] [--scale <s>] [--shards <k>] [--rate <r>]
             [--duration <d>] [--clients <n>] [--cache <capacity>] [--seed <seed>]
             [--workers <n>]
  shp serve  [--dataset <name> | --graph <file>] [--partition <file>] [--scale <s>]
             [--shards <k>] [--rate <r>] [--duration <d>] [--clients <n>]
             [--cache <capacity>] [--seed <seed>] [--workers <n>]

`shp algorithms` lists the names accepted by --mode. Graph inputs may be edge-list, hMetis,
or .shpb binary files (autodetected; see `shp convert --help`).
datasets: email-Enron soc-Epinions web-Stanford web-BerkStan soc-Pokec soc-LJ FB-10M FB-50M FB-2B FB-5B FB-10B";

const CONVERT_HELP: &str =
    "usage: shp convert <input> <output> [--from <format>] [--to <format>] [--workers <n>]

Converts a graph between the three supported formats, losslessly:
  edgelist  plain text, one `query_id<TAB>data_id` pair per line, `#` comments
  hmetis    hMetis hypergraph text format (header `|Q| |D|`, one hyperedge per line)
  shpb      compact binary container (checksummed header + raw CSR sections);
            loads an order of magnitude faster than text — ideal for warm starts

Format autodetection, in order of precedence:
  1. an explicit --from / --to flag always wins;
  2. the file extension:  .shpb -> shpb;  .hgr .hmetis .graph -> hmetis;
     .txt .tsv .edges .edgelist .el -> edgelist;
  3. (inputs only) the contents: the `SHPB` magic -> shpb; a first non-blank
     byte of `#` -> edgelist; anything else -> hmetis.
The output format must be resolvable from the extension or --to.

--workers <n> parses text inputs with n threads (the result is bit-identical
for every worker count).

Caveat: an edge list stores only the edges, so queries with no pins and
trailing isolated data vertices are not representable in it; hmetis and shpb
round-trip every graph exactly (shpb including data weights).";

fn usage_error(message: impl Into<String>) -> ShpError {
    ShpError::InvalidArgument(format!("{}\n{USAGE}", message.into()))
}

fn cmd_generate(args: &[String]) -> ShpResult<()> {
    let [name, scale, output] = args else {
        return Err(usage_error("generate needs 3 arguments"));
    };
    let dataset = Dataset::from_name(name)
        .ok_or_else(|| ShpError::InvalidArgument(format!("unknown dataset {name:?}")))?;
    let scale: f64 = scale
        .parse()
        .map_err(|_| ShpError::InvalidArgument(format!("invalid scale {scale:?}")))?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(ShpError::InvalidArgument("scale must lie in (0, 1]".into()));
    }
    let graph = dataset.generate(scale, 0x5047);
    io::write_hmetis_file(&graph, output)?;
    println!(
        "{}",
        GraphStats::compute(&graph).table1_row(dataset.spec().name)
    );
    println!("wrote {output}");
    Ok(())
}

fn cmd_algorithms(args: &[String]) -> ShpResult<()> {
    if !args.is_empty() {
        return Err(usage_error("algorithms takes no arguments"));
    }
    let registry = full_registry();
    println!("registered partitioning algorithms (accepted by `shp partition --mode <name>`):");
    for name in registry.names() {
        println!("  {name}");
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> ShpResult<()> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{CONVERT_HELP}");
        return Ok(());
    }
    if args.len() < 2 {
        return Err(usage_error("convert needs an input and an output path"));
    }
    let input = &args[0];
    let output = &args[1];
    let mut from: Option<GraphFormat> = None;
    let mut to: Option<GraphFormat> = None;
    let mut workers = 4usize;
    let mut i = 2;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| ShpError::InvalidArgument(format!("{flag} needs a value")))?;
        match flag {
            "--from" | "--to" => {
                let format = GraphFormat::from_name(value).ok_or_else(|| {
                    ShpError::InvalidArgument(format!(
                        "unknown format {value:?} (expected edgelist, hmetis, or shpb)"
                    ))
                })?;
                if flag == "--from" {
                    from = Some(format);
                } else {
                    to = Some(format);
                }
            }
            "--workers" => {
                workers = value
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--workers needs a number".into()))?
            }
            other => {
                return Err(ShpError::InvalidArgument(format!(
                    "unknown option {other:?}"
                )))
            }
        }
        i += 2;
    }

    // Input: explicit flag > extension > content sniffing.
    let bytes = std::fs::read(input).map_err(shp_hypergraph::GraphError::from)?;
    let input_format = from.unwrap_or_else(|| GraphFormat::detect(input, &bytes));
    let graph = match input_format {
        GraphFormat::EdgeList => io::parse_edge_list_bytes(&bytes, workers),
        GraphFormat::Hmetis => io::parse_hmetis_bytes(&bytes, workers),
        GraphFormat::Shpb => io::parse_shpb_bytes(&bytes),
    }?;

    // Output: explicit flag > extension (contents cannot be sniffed for a file that does not
    // exist yet).
    let output_format = to
        .or_else(|| GraphFormat::from_extension(output))
        .ok_or_else(|| {
            ShpError::InvalidArgument(format!(
                "cannot infer the output format of {output:?}: use a known extension or --to"
            ))
        })?;
    io::write_graph_file(&graph, output, output_format)?;
    println!(
        "converted {input} ({}) -> {output} ({}): {} queries, {} data vertices, {} pins",
        input_format.name(),
        output_format.name(),
        graph.num_queries(),
        graph.num_data(),
        graph.num_edges()
    );
    Ok(())
}

fn cmd_partition(args: &[String]) -> ShpResult<()> {
    if args.len() < 3 {
        return Err(usage_error("partition needs at least 3 arguments"));
    }
    let input = &args[0];
    let k: u32 = args[1]
        .parse()
        .map_err(|_| ShpError::InvalidArgument(format!("invalid k {:?}", args[1])))?;
    let output = &args[2];
    let mut mode = "shp2".to_string();
    let mut p = 0.5f64;
    let mut epsilon = 0.05f64;
    let mut seed = 0x5047u64;
    let mut iterations: Option<usize> = None;
    let mut workers = 4usize;
    let mut json = false;
    let mut i = 3;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            json = true;
            i += 1;
            continue;
        }
        let value = || {
            args.get(i + 1)
                .ok_or_else(|| ShpError::InvalidArgument(format!("{flag} needs a value")))
        };
        match flag {
            "--mode" => mode = value()?.clone(),
            "--p" => {
                p = value()?
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--p needs a number".into()))?
            }
            "--epsilon" => {
                epsilon = value()?
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--epsilon needs a number".into()))?
            }
            "--seed" => {
                seed = value()?
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--seed needs a number".into()))?
            }
            "--iterations" => {
                iterations =
                    Some(value()?.parse().map_err(|_| {
                        ShpError::InvalidArgument("--iterations needs a number".into())
                    })?)
            }
            "--workers" => {
                workers = value()?
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--workers needs a number".into()))?
            }
            other => {
                return Err(ShpError::InvalidArgument(format!(
                    "unknown option {other:?}"
                )))
            }
        }
        i += 2;
    }

    let objective = if p >= 1.0 {
        ObjectiveKind::Fanout
    } else if p <= 0.0 {
        ObjectiveKind::CliqueNet
    } else {
        ObjectiveKind::ProbabilisticFanout { p }
    };
    let mut spec = PartitionSpec::new(k)
        .with_objective(objective)
        .with_epsilon(epsilon)
        .with_seed(seed)
        .with_workers(workers);
    if let Some(iters) = iterations {
        spec = spec.with_max_iterations(iters);
    }

    let graph = io::read_graph_file_with(input, workers)?;
    let registry = full_registry();
    let outcome = registry.run(&mode, &graph, &spec, &mut NoopObserver)?;
    io::write_partition_file(&outcome.partition, output)?;
    if json {
        // Keep stdout machine-readable: exactly one JSON object, nothing else.
        println!("{}", outcome.to_json());
        eprintln!("wrote {output}");
    } else {
        print_outcome(&outcome);
        println!("wrote {output}");
    }
    Ok(())
}

fn print_outcome(outcome: &PartitionOutcome) {
    println!(
        "{}: fanout {:.4}  p-fanout(0.5) {:.4}  imbalance {:.4}  iterations {}  moves {}  time {:.2}s",
        outcome.algorithm,
        outcome.fanout,
        outcome.p_fanout,
        outcome.imbalance,
        outcome.iterations,
        outcome.moves,
        outcome.elapsed.as_secs_f64()
    );
}

fn cmd_evaluate(args: &[String]) -> ShpResult<()> {
    let (positional, json) = match args {
        [a, b, c] => ([a, b, c], false),
        [a, b, c, flag] if flag == "--json" => ([a, b, c], true),
        _ => return Err(usage_error("evaluate needs 3 arguments")),
    };
    let [input, partition_path, k] = positional;
    let k: u32 = k
        .parse()
        .map_err(|_| ShpError::InvalidArgument(format!("invalid k {k:?}")))?;
    let graph = io::read_graph_file(input)?;
    let partition = io::read_partition_file(&graph, k, partition_path)?;
    let fanout = average_fanout(&graph, &partition);
    let p_fanout = average_p_fanout(&graph, &partition, 0.5);
    let cut = hyperedge_cut(&graph, &partition);
    let imbalance = partition.imbalance();
    if json {
        println!(
            "{{\"fanout\":{fanout:.6},\"p_fanout\":{p_fanout:.6},\"hyperedge_cut\":{cut},\
             \"imbalance\":{imbalance:.6},\"num_buckets\":{k}}}"
        );
    } else {
        println!("{}", GraphStats::compute(&graph));
        println!(
            "fanout {fanout:.4}  p-fanout(0.5) {p_fanout:.4}  hyperedge-cut {cut}  imbalance {imbalance:.4}"
        );
    }
    Ok(())
}

/// Shared options of the serving subcommands.
struct ServeOptions {
    dataset: Dataset,
    /// Serve a graph loaded from this file (any supported format) instead of a generated
    /// dataset; a `.shpb` snapshot makes the warm start skip parsing entirely.
    graph: Option<String>,
    /// Warm-start serving from this partition file instead of a random placement (serve
    /// subcommand only).
    partition: Option<String>,
    scale: f64,
    shards: u32,
    rate: f64,
    duration: f64,
    clients: usize,
    cache: usize,
    seed: u64,
    workers: usize,
}

impl ServeOptions {
    fn parse(args: &[String]) -> ShpResult<Self> {
        let mut options = ServeOptions {
            dataset: Dataset::EmailEnron,
            graph: None,
            partition: None,
            scale: 0.05,
            shards: 16,
            rate: 200.0,
            duration: 60.0,
            clients: 4,
            cache: 0,
            seed: 0x5047,
            workers: 4,
        };
        let invalid = |message: String| ShpError::InvalidArgument(message);
        let mut i = 0;
        while i < args.len() {
            // Recognize the flag before demanding a value, so an unknown trailing flag is
            // reported as unknown rather than as missing its (nonexistent) value.
            if !matches!(
                args[i].as_str(),
                "--dataset"
                    | "--graph"
                    | "--partition"
                    | "--scale"
                    | "--shards"
                    | "--rate"
                    | "--duration"
                    | "--clients"
                    | "--cache"
                    | "--seed"
                    | "--workers"
            ) {
                return Err(invalid(format!("unknown option {:?}", args[i])));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| invalid(format!("{} needs a value", args[i])))?;
            match args[i].as_str() {
                "--dataset" => {
                    options.dataset = Dataset::from_name(value)
                        .ok_or_else(|| invalid(format!("unknown dataset {value:?}")))?;
                }
                "--graph" => options.graph = Some(value.clone()),
                "--partition" => options.partition = Some(value.clone()),
                "--scale" => {
                    options.scale = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid scale {value:?}")))?;
                    if !(options.scale > 0.0 && options.scale <= 1.0) {
                        return Err(invalid("scale must lie in (0, 1]".into()));
                    }
                }
                "--shards" => {
                    options.shards = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid shard count {value:?}")))?;
                    if options.shards < 2 {
                        return Err(invalid("at least 2 shards are required".into()));
                    }
                }
                "--rate" => {
                    options.rate = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid rate {value:?}")))?;
                    if !(options.rate > 0.0 && options.rate.is_finite()) {
                        return Err(invalid("rate must be a positive number".into()));
                    }
                }
                "--duration" => {
                    options.duration = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid duration {value:?}")))?;
                    if !(options.duration > 0.0 && options.duration.is_finite()) {
                        return Err(invalid("duration must be a positive number".into()));
                    }
                }
                "--clients" => {
                    options.clients = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid client count {value:?}")))?;
                }
                "--cache" => {
                    options.cache = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid cache capacity {value:?}")))?;
                }
                "--seed" => {
                    options.seed = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid seed {value:?}")))?;
                }
                "--workers" => {
                    options.workers = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid worker count {value:?}")))?;
                    if options.workers == 0 {
                        return Err(invalid("at least 1 worker is required".into()));
                    }
                }
                _ => unreachable!("flag names are checked above"),
            }
            i += 2;
        }
        Ok(options)
    }

    fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            arrival_rate: self.rate,
            duration: self.duration,
            seed: self.seed,
            ..Default::default()
        }
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            cache_capacity: self.cache,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// The serving graph plus the optional on-disk placement: from `--graph` (and
    /// `--partition`) through the serving bootstrap, or a generated dataset otherwise.
    fn load_warm_start(&self) -> ShpResult<(BipartiteGraph, Option<shp_hypergraph::Partition>)> {
        match &self.graph {
            Some(path) => {
                let warm = shp_serving::load_warm_start(
                    path,
                    self.partition.as_ref(),
                    self.shards,
                    self.workers,
                )?;
                Ok((warm.graph, warm.partition))
            }
            None => {
                if self.partition.is_some() {
                    return Err(ShpError::InvalidArgument(
                        "--partition requires --graph (a generated dataset has no saved \
                         placement)"
                            .into(),
                    ));
                }
                let graph = self
                    .dataset
                    .generate(self.scale, self.seed)
                    .filter_small_queries(2);
                Ok((graph, None))
            }
        }
    }

    fn graph_label(&self) -> String {
        match &self.graph {
            Some(path) => path.clone(),
            None => self.dataset.spec().name.to_string(),
        }
    }

    fn spec(&self) -> PartitionSpec {
        PartitionSpec::new(self.shards)
            .with_seed(self.seed)
            .with_workers(self.workers)
    }

    fn shp_outcome(
        &self,
        registry: &AlgorithmRegistry,
        graph: &BipartiteGraph,
    ) -> ShpResult<PartitionOutcome> {
        registry.run("shp2", graph, &self.spec(), &mut NoopObserver)
    }
}

fn cmd_replay(args: &[String]) -> ShpResult<()> {
    let options = ServeOptions::parse(args)?;
    if options.partition.is_some() {
        return Err(ShpError::InvalidArgument(
            "--partition is only meaningful for `shp serve`".into(),
        ));
    }
    let (graph, _) = options.load_warm_start()?;
    println!(
        "workload: {} ({} queries, {} keys), {} shards, rate {}/t for {}t, {} clients",
        options.graph_label(),
        graph.num_queries(),
        graph.num_data(),
        options.shards,
        options.rate,
        options.duration,
        options.clients
    );

    let events = open_loop_schedule(graph.num_queries(), &options.workload());
    println!("schedule: {} multigets\n", events.len());

    let registry = full_registry();
    let random = registry.run("random", &graph, &options.spec(), &mut NoopObserver)?;
    println!("computing SHP-2 partition...");
    let shp = options.shp_outcome(&registry, &graph)?;

    let mut rows: Vec<(&str, shp_serving::ServingReport)> = Vec::new();
    for (name, outcome) in [("Random", &random), ("SHP-2", &shp)] {
        let engine = ServingEngine::new(&outcome.partition, options.engine_config())?;
        let report = engine.run_workload(&graph, &events, options.clients)?;
        println!("=== {name} ===\n{report}\n");
        rows.push((name, report));
    }

    let (random_report, shp_report) = (&rows[0].1, &rows[1].1);
    println!(
        "SHP-2 vs Random: mean fanout {:.3} -> {:.3} ({:.1}% lower), p99 latency {:.3}t -> {:.3}t ({:.1}% lower)",
        random_report.mean_fanout,
        shp_report.mean_fanout,
        100.0 * (1.0 - shp_report.mean_fanout / random_report.mean_fanout),
        random_report.p99,
        shp_report.p99,
        100.0 * (1.0 - shp_report.p99 / random_report.p99),
    );
    if shp_report.mean_fanout >= random_report.mean_fanout {
        return Err(ShpError::Runtime(
            "SHP partition failed to lower mean fanout".into(),
        ));
    }
    if shp_report.p99 >= random_report.p99 {
        return Err(ShpError::Runtime(
            "SHP partition failed to lower p99 latency".into(),
        ));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> ShpResult<()> {
    let options = ServeOptions::parse(args)?;
    let (graph, loaded_partition) = options.load_warm_start()?;
    let events = open_loop_schedule(graph.num_queries(), &options.workload());
    let start = match loaded_partition {
        Some(partition) => {
            println!(
                "serving {} multigets over {} keys on {} shards; warm start from the \
                 placement in {}",
                events.len(),
                graph.num_data(),
                options.shards,
                options.partition.as_deref().unwrap_or("?"),
            );
            partition
        }
        None => {
            println!(
                "serving {} multigets over {} keys on {} shards; starting from a random \
                 partition",
                events.len(),
                graph.num_data(),
                options.shards
            );
            RandomPartitioner::new(options.seed).partition_into(&graph, options.shards, 0.05)
        }
    };
    let engine = ServingEngine::new(&start, options.engine_config())?;

    // Plan the repartition off the serving path, then warm-start it live once at least half of
    // the schedule has been served: the swapper thread races the concurrent clients, and every
    // in-flight multiget finishes on whichever generation it loaded.
    println!("planning SHP-2 repartition off the serving path...");
    let registry = full_registry();
    let shp = options.shp_outcome(&registry, &graph)?;
    let progress = AtomicUsize::new(0);
    let swap_at = events.len() / 2;
    let chunk = events.len().div_ceil(options.clients.max(1)).max(1);
    let outcome: ShpResult<()> = std::thread::scope(|scope| {
        let engine_ref = &engine;
        let graph_ref = &graph;
        let progress_ref = &progress;
        let shp_ref = &shp;
        let swapper = scope.spawn(move || -> ShpResult<u64> {
            while progress_ref.load(Ordering::Relaxed) < swap_at {
                std::thread::yield_now();
            }
            Ok(engine_ref.warm_start(shp_ref)?)
        });
        let clients: Vec<_> = events
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || -> ShpResult<()> {
                    for event in slice {
                        engine_ref.multiget(graph_ref.query_neighbors(event.query))?;
                        progress_ref.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread panicked")?;
        }
        let epoch = swapper.join().expect("swapper thread panicked")?;
        println!("installed SHP-2 partition live at epoch {epoch}");
        Ok(())
    });
    outcome?;

    let report = engine.report();
    println!("\n{report}");
    if report.queries != events.len() as u64 {
        return Err(ShpError::Runtime(format!(
            "serving gap: only {} of {} multigets were served",
            report.queries,
            events.len()
        )));
    }
    if report.max_epoch == 0 {
        return Err(ShpError::Runtime(
            "the run finished before the repartition could be installed; \
             increase --duration or --rate so the swap lands mid-run"
                .into(),
        ));
    }
    println!(
        "\nno serving gap: all {} multigets answered across epochs {}..={}",
        report.queries, report.min_epoch, report.max_epoch
    );
    Ok(())
}
