//! `shp` — command-line interface for the Social Hash Partitioner.
//!
//! Subcommands:
//!
//! * `generate <dataset> <scale> <output.hgr>` — synthesize a Table-1 dataset stand-in and
//!   write it in hMetis format.
//! * `partition <input.hgr> <k> <output.part> [--mode shp2|shpk] [--p <p>] [--epsilon <eps>] [--seed <seed>]`
//!   — partition a hypergraph file and write the bucket of every vertex.
//! * `evaluate <input.hgr> <partition.part> <k>` — report fanout, p-fanout, hyperedge cut, and
//!   imbalance of an existing partition.
//! * `replay [options]` — drive a synthetic open-loop multiget workload through the
//!   `shp-serving` engine under a random and an SHP partition and compare mean fanout,
//!   latency percentiles, and shard load skew.
//! * `serve [options]` — start serving on a random partition, compute an SHP repartition in
//!   the background, and install it *live* mid-run, reporting per-epoch fanout.
//!
//! The hMetis format is the one exchanged by hMetis/PaToH/Mondriaan/Parkway/Zoltan, so
//! partitions can be compared against other tools directly.

use shp_baselines::{Partitioner, RandomPartitioner};
use shp_core::{partition_direct, partition_recursive, ObjectiveKind, ShpConfig};
use shp_datagen::Dataset;
use shp_hypergraph::{
    average_fanout, average_p_fanout, hyperedge_cut, io, BipartiteGraph, GraphStats, Partition,
};
use shp_serving::{open_loop_schedule, EngineConfig, ServingEngine, WorkloadConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("partition") => cmd_partition(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  shp generate <dataset> <scale> <output.hgr>
  shp partition <input.hgr> <k> <output.part> [--mode shp2|shpk] [--p <p>] [--epsilon <eps>] [--seed <seed>]
  shp evaluate <input.hgr> <partition.part> <k>
  shp replay [--dataset <name>] [--scale <s>] [--shards <k>] [--rate <r>] [--duration <d>]
             [--clients <n>] [--cache <capacity>] [--seed <seed>]
  shp serve  [--dataset <name>] [--scale <s>] [--shards <k>] [--rate <r>] [--duration <d>]
             [--clients <n>] [--cache <capacity>] [--seed <seed>]

datasets: email-Enron soc-Epinions web-Stanford web-BerkStan soc-Pokec soc-LJ FB-10M FB-50M FB-2B FB-5B FB-10B";

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [name, scale, output] = args else {
        return Err(format!("generate needs 3 arguments\n{USAGE}"));
    };
    let dataset = Dataset::from_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale: f64 = scale
        .parse()
        .map_err(|_| format!("invalid scale {scale:?}"))?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("scale must lie in (0, 1]".into());
    }
    let graph = dataset.generate(scale, 0x5047);
    io::write_hmetis_file(&graph, output).map_err(|e| e.to_string())?;
    println!(
        "{}",
        GraphStats::compute(&graph).table1_row(dataset.spec().name)
    );
    println!("wrote {output}");
    Ok(())
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    if args.len() < 3 {
        return Err(format!("partition needs at least 3 arguments\n{USAGE}"));
    }
    let input = &args[0];
    let k: u32 = args[1]
        .parse()
        .map_err(|_| format!("invalid k {:?}", args[1]))?;
    let output = &args[2];
    let mut mode = "shp2".to_string();
    let mut p = 0.5f64;
    let mut epsilon = 0.05f64;
    let mut seed = 0x5047u64;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                mode = args.get(i + 1).cloned().ok_or("--mode needs a value")?;
                i += 2;
            }
            "--p" => {
                p = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--p needs a number")?;
                i += 2;
            }
            "--epsilon" => {
                epsilon = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--epsilon needs a number")?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a number")?;
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }

    let graph = io::read_hmetis_file(input).map_err(|e| e.to_string())?;
    let objective = if p >= 1.0 {
        ObjectiveKind::Fanout
    } else if p <= 0.0 {
        ObjectiveKind::CliqueNet
    } else {
        ObjectiveKind::ProbabilisticFanout { p }
    };
    let result = match mode.as_str() {
        "shp2" => {
            let config = ShpConfig::recursive_bisection(k)
                .with_objective(objective)
                .with_epsilon(epsilon)
                .with_seed(seed);
            partition_recursive(&graph, &config)?
        }
        "shpk" => {
            let config = ShpConfig::direct(k)
                .with_objective(objective)
                .with_epsilon(epsilon)
                .with_seed(seed);
            partition_direct(&graph, &config)?
        }
        other => return Err(format!("unknown mode {other:?} (expected shp2 or shpk)")),
    };
    io::write_partition_file(&result.partition, output).map_err(|e| e.to_string())?;
    println!(
        "fanout {:.4}  p-fanout(0.5) {:.4}  imbalance {:.4}  iterations {}  time {:.2}s",
        result.report.final_fanout,
        result.report.final_p_fanout,
        result.report.imbalance,
        result.report.total_iterations(),
        result.report.elapsed.as_secs_f64()
    );
    println!("wrote {output}");
    Ok(())
}

/// Shared options of the serving subcommands.
struct ServeOptions {
    dataset: Dataset,
    scale: f64,
    shards: u32,
    rate: f64,
    duration: f64,
    clients: usize,
    cache: usize,
    seed: u64,
}

impl ServeOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = ServeOptions {
            dataset: Dataset::EmailEnron,
            scale: 0.05,
            shards: 16,
            rate: 200.0,
            duration: 60.0,
            clients: 4,
            cache: 0,
            seed: 0x5047,
        };
        let mut i = 0;
        while i < args.len() {
            // Recognize the flag before demanding a value, so an unknown trailing flag is
            // reported as unknown rather than as missing its (nonexistent) value.
            if !matches!(
                args[i].as_str(),
                "--dataset"
                    | "--scale"
                    | "--shards"
                    | "--rate"
                    | "--duration"
                    | "--clients"
                    | "--cache"
                    | "--seed"
            ) {
                return Err(format!("unknown option {:?}", args[i]));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))?;
            match args[i].as_str() {
                "--dataset" => {
                    options.dataset = Dataset::from_name(value)
                        .ok_or_else(|| format!("unknown dataset {value:?}"))?;
                }
                "--scale" => {
                    options.scale = value
                        .parse()
                        .map_err(|_| format!("invalid scale {value:?}"))?;
                    if !(options.scale > 0.0 && options.scale <= 1.0) {
                        return Err("scale must lie in (0, 1]".into());
                    }
                }
                "--shards" => {
                    options.shards = value
                        .parse()
                        .map_err(|_| format!("invalid shard count {value:?}"))?;
                    if options.shards < 2 {
                        return Err("at least 2 shards are required".into());
                    }
                }
                "--rate" => {
                    options.rate = value
                        .parse()
                        .map_err(|_| format!("invalid rate {value:?}"))?;
                    if !(options.rate > 0.0 && options.rate.is_finite()) {
                        return Err("rate must be a positive number".into());
                    }
                }
                "--duration" => {
                    options.duration = value
                        .parse()
                        .map_err(|_| format!("invalid duration {value:?}"))?;
                    if !(options.duration > 0.0 && options.duration.is_finite()) {
                        return Err("duration must be a positive number".into());
                    }
                }
                "--clients" => {
                    options.clients = value
                        .parse()
                        .map_err(|_| format!("invalid client count {value:?}"))?;
                }
                "--cache" => {
                    options.cache = value
                        .parse()
                        .map_err(|_| format!("invalid cache capacity {value:?}"))?;
                }
                "--seed" => {
                    options.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed {value:?}"))?;
                }
                _ => unreachable!("flag names are checked above"),
            }
            i += 2;
        }
        Ok(options)
    }

    fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            arrival_rate: self.rate,
            duration: self.duration,
            seed: self.seed,
            ..Default::default()
        }
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            cache_capacity: self.cache,
            seed: self.seed,
            ..Default::default()
        }
    }

    fn load_graph(&self) -> BipartiteGraph {
        self.dataset
            .generate(self.scale, self.seed)
            .filter_small_queries(2)
    }

    fn shp_partition(&self, graph: &BipartiteGraph) -> Result<Partition, String> {
        let config = ShpConfig::recursive_bisection(self.shards).with_seed(self.seed);
        Ok(partition_recursive(graph, &config)?.partition)
    }
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let options = ServeOptions::parse(args)?;
    let graph = options.load_graph();
    println!(
        "workload: {} ({} queries, {} keys), {} shards, rate {}/t for {}t, {} clients",
        options.dataset.spec().name,
        graph.num_queries(),
        graph.num_data(),
        options.shards,
        options.rate,
        options.duration,
        options.clients
    );

    let events = open_loop_schedule(graph.num_queries(), &options.workload());
    println!("schedule: {} multigets\n", events.len());

    let random = RandomPartitioner::new(options.seed).partition(&graph, options.shards, 0.05);
    println!("computing SHP-2 partition...");
    let shp = options.shp_partition(&graph)?;

    let mut rows: Vec<(&str, shp_serving::ServingReport)> = Vec::new();
    for (name, partition) in [("Random", &random), ("SHP-2", &shp)] {
        let engine =
            ServingEngine::new(partition, options.engine_config()).map_err(|e| e.to_string())?;
        let report = engine
            .run_workload(&graph, &events, options.clients)
            .map_err(|e| e.to_string())?;
        println!("=== {name} ===\n{report}\n");
        rows.push((name, report));
    }

    let (random_report, shp_report) = (&rows[0].1, &rows[1].1);
    println!(
        "SHP-2 vs Random: mean fanout {:.3} -> {:.3} ({:.1}% lower), p99 latency {:.3}t -> {:.3}t ({:.1}% lower)",
        random_report.mean_fanout,
        shp_report.mean_fanout,
        100.0 * (1.0 - shp_report.mean_fanout / random_report.mean_fanout),
        random_report.p99,
        shp_report.p99,
        100.0 * (1.0 - shp_report.p99 / random_report.p99),
    );
    if shp_report.mean_fanout >= random_report.mean_fanout {
        return Err("SHP partition failed to lower mean fanout".into());
    }
    if shp_report.p99 >= random_report.p99 {
        return Err("SHP partition failed to lower p99 latency".into());
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let options = ServeOptions::parse(args)?;
    let graph = options.load_graph();
    let events = open_loop_schedule(graph.num_queries(), &options.workload());
    println!(
        "serving {} multigets over {} keys on {} shards; starting from a random partition",
        events.len(),
        graph.num_data(),
        options.shards
    );

    let random = RandomPartitioner::new(options.seed).partition(&graph, options.shards, 0.05);
    let engine = ServingEngine::new(&random, options.engine_config()).map_err(|e| e.to_string())?;

    // Plan the repartition off the serving path, then install it live once at least half of
    // the schedule has been served: the swapper thread races the concurrent clients, and every
    // in-flight multiget finishes on whichever generation it loaded.
    println!("planning SHP-2 repartition off the serving path...");
    let shp = options.shp_partition(&graph)?;
    let progress = AtomicUsize::new(0);
    let swap_at = events.len() / 2;
    let chunk = events.len().div_ceil(options.clients.max(1)).max(1);
    let outcome: Result<(), String> = std::thread::scope(|scope| {
        let engine_ref = &engine;
        let graph_ref = &graph;
        let progress_ref = &progress;
        let shp_ref = &shp;
        let swapper = scope.spawn(move || -> Result<u64, String> {
            while progress_ref.load(Ordering::Relaxed) < swap_at {
                std::thread::yield_now();
            }
            engine_ref
                .install_partition(shp_ref)
                .map_err(|e| e.to_string())
        });
        let clients: Vec<_> = events
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || -> Result<(), String> {
                    for event in slice {
                        engine_ref
                            .multiget(graph_ref.query_neighbors(event.query))
                            .map_err(|e| e.to_string())?;
                        progress_ref.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread panicked")?;
        }
        let epoch = swapper.join().expect("swapper thread panicked")?;
        println!("installed SHP-2 partition live at epoch {epoch}");
        Ok(())
    });
    outcome?;

    let report = engine.report();
    println!("\n{report}");
    if report.queries != events.len() as u64 {
        return Err(format!(
            "serving gap: only {} of {} multigets were served",
            report.queries,
            events.len()
        ));
    }
    if report.max_epoch == 0 {
        return Err(
            "the run finished before the repartition could be installed; \
             increase --duration or --rate so the swap lands mid-run"
                .into(),
        );
    }
    println!(
        "\nno serving gap: all {} multigets answered across epochs {}..={}",
        report.queries, report.min_epoch, report.max_epoch
    );
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let [input, partition_path, k] = args else {
        return Err(format!("evaluate needs 3 arguments\n{USAGE}"));
    };
    let k: u32 = k.parse().map_err(|_| format!("invalid k {k:?}"))?;
    let graph = io::read_hmetis_file(input).map_err(|e| e.to_string())?;
    let partition =
        io::read_partition_file(&graph, k, partition_path).map_err(|e| e.to_string())?;
    println!("{}", GraphStats::compute(&graph));
    println!(
        "fanout {:.4}  p-fanout(0.5) {:.4}  hyperedge-cut {}  imbalance {:.4}",
        average_fanout(&graph, &partition),
        average_p_fanout(&graph, &partition, 0.5),
        hyperedge_cut(&graph, &partition),
        partition.imbalance()
    );
    Ok(())
}
