//! `shp` — command-line interface for the Social Hash Partitioner.
//!
//! Subcommands:
//!
//! * `generate <dataset> <scale> <output.hgr>` — synthesize a Table-1 dataset stand-in and
//!   write it in hMetis format. With `--stream` (power-law datasets, `.shpb` output) the
//!   graph is streamed to the container in bounded memory without ever being materialized.
//! * `algorithms` — list every partitioning algorithm registered in the workspace registry.
//! * `convert <input> <output> [--from <fmt>] [--to <fmt>] [--workers <n>]` — convert a
//!   graph between the edge-list, hMetis, and `.shpb` compact binary formats, with format
//!   autodetection by extension and contents (`shp convert --help` spells out the rules).
//! * `partition <input> <k> <output.part> [--mode <algorithm>] [--p <p>] [--epsilon <eps>]
//!   [--seed <seed>] [--iterations <n>] [--workers <n>] [--json]` — partition a graph file
//!   (any supported format, autodetected — a `.shpb` input skips parsing entirely) with
//!   **any registered algorithm** (SHP or baseline) and write the bucket of every vertex;
//!   `--json` emits the full `PartitionOutcome`. `--workers` sets the number of real threads
//!   driving both the text parse and the refinement hot paths — the output is bit-identical
//!   for every worker count (see the determinism contract in `shp-core`), only the
//!   wall-clock time changes.
//! * `evaluate <input> <partition.part> <k> [--json]` — report fanout, p-fanout, hyperedge
//!   cut, and imbalance of an existing partition (any graph format).
//! * `replay [options]` — drive a synthetic open-loop multiget workload through the
//!   `shp-serving` engine under a random and an SHP partition and compare mean fanout,
//!   latency percentiles, and shard load skew. `--graph <file>` serves a graph loaded from
//!   disk instead of a generated dataset.
//! * `serve [options]` — start serving, compute an SHP repartition in the background through
//!   the unified registry, and warm-start it *live* mid-run. `--graph <file>` (ideally a
//!   `.shpb` snapshot) plus `--partition <file>` warm-start serving from on-disk artifacts:
//!   the engine opens on the saved placement instead of a random one.
//!   `--repartition-every <n>` switches to closed-loop *online* repartitioning: a bounded
//!   trace collector rides the multiget hot path, and a controller thread re-partitions the
//!   live engine from the observed co-access graph every n served multigets, moving at most
//!   `--migration-budget <m>` keys per epoch (delta install, no full-map clone).
//! * `controller [options]` — run the hours-compressed drift scenario from `shp-controller`:
//!   key popularity rotates phase over phase, a never-repartition baseline decays, and the
//!   budgeted controller recovers fanout. Prints per-phase fanout/latency and the migration
//!   volume; `--json` emits the report machine-readably.
//! * `drill [options]` — run the kill → degrade → recover failure drill from
//!   `shp-controller`: a replicated engine serves through a scripted shard crash and a slow
//!   replica (failover + hedging keep availability ≥ 99%), an unreplicated leg degrades to
//!   precise typed partial results, and the controller drains the dead shard within the
//!   migration budget. Exits nonzero if any drill gate fails; `--json` emits the report
//!   machine-readably.
//! * `metrics <snapshot.json> [--prometheus]` — pretty-print a telemetry snapshot written by
//!   `--metrics`, or re-emit it in Prometheus text exposition format.
//!
//! `partition`, `replay`, and `serve` accept `--metrics <file>`: the run's telemetry —
//! counters, phase spans, latency/fanout histograms, and hot keys from `shp-telemetry` — is
//! exported as a JSON snapshot (or Prometheus text when the path ends in `.prom`). `replay`
//! and `serve` rewrite the file roughly once a second while the workload runs, so a live run
//! can be scraped mid-flight; the final write supersedes every periodic one.
//!
//! Every failure path is a typed [`ShpError`]; `?` composes from file parsing through
//! partitioning to the serving engine without a single stringly-typed error.
//!
//! The hMetis format is the one exchanged by hMetis/PaToH/Mondriaan/Parkway/Zoltan, so
//! partitions can be compared against other tools directly.

use shp_baselines::{full_registry, RandomPartitioner};
use shp_controller::{
    run_drift_scenario, run_drill_scenario_with_telemetry, AccessTraceCollector, ControllerConfig,
    DriftConfig, DriftReport, DrillConfig, DrillReport, RepartitionController,
};
use shp_core::api::{AlgorithmRegistry, NoopObserver, PartitionOutcome, PartitionSpec};
use shp_core::{ObjectiveKind, ShpError, ShpResult};
use shp_datagen::Dataset;
use shp_hypergraph::io::GraphFormat;
use shp_hypergraph::{
    average_fanout, average_p_fanout, hyperedge_cut, io, BipartiteGraph, GraphStats,
};
use shp_serving::{open_loop_schedule, EngineConfig, ServingEngine, WorkloadConfig, WorkloadEvent};
use shp_telemetry::Snapshot;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("algorithms") => cmd_algorithms(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("partition") => cmd_partition(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("controller") => cmd_controller(&args[1..]),
        Some("drill") => cmd_drill(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  shp generate <dataset> <scale> <output.hgr>
  shp generate <dataset> <scale> <output.shpb> --stream
  shp algorithms
  shp convert <input> <output> [--from <format>] [--to <format>] [--workers <n>]
  shp partition <input> <k> <output.part> [--mode <algorithm>] [--p <p>] [--epsilon <eps>]
                [--seed <seed>] [--iterations <n>] [--workers <n>] [--metrics <file>]
                [--json] [--mmap]
  shp evaluate <input> <partition.part> <k> [--json]
  shp replay [--dataset <name> | --graph <file>] [--scale <s>] [--shards <k>] [--rate <r>]
             [--duration <d>] [--clients <n>] [--cache <capacity>] [--seed <seed>]
             [--workers <n>] [--metrics <file>] [--mmap]
  shp serve  [--dataset <name> | --graph <file>] [--partition <file>] [--scale <s>]
             [--shards <k>] [--rate <r>] [--duration <d>] [--clients <n>]
             [--cache <capacity>] [--seed <seed>] [--workers <n>] [--metrics <file>]
             [--repartition-every <n>] [--migration-budget <m>] [--mmap]
  shp controller [--quick] [--phases <n>] [--every <n>] [--budget <m>] [--seed <seed>]
             [--json]
  shp drill  [--quick] [--budget <m>] [--replication <r>] [--seed <seed>] [--json]
             [--metrics <file>]
  shp metrics <snapshot.json> [--prometheus]

`shp algorithms` lists the names accepted by --mode. Graph inputs may be edge-list, hMetis,
or .shpb binary files (autodetected; see `shp convert --help`).
`shp generate --stream` writes a power-law dataset straight to a .shpb container in bounded
memory (byte-identical to materializing, but the graph never exists in RAM); --mmap serves
partition/replay/serve from a memory-mapped .shpb instead of loading it onto the heap.
--metrics exports the run's telemetry snapshot: JSON by default, Prometheus text exposition
format when the path ends in .prom; `shp metrics <file>` pretty-prints a JSON snapshot.
--repartition-every closes the serve->observe->repartition loop online: one controller epoch
per n served multigets, each moving at most --migration-budget keys (default 256).
`shp controller` runs the drift scenario against a never-repartition baseline.
`shp drill` runs the kill -> degrade -> recover failure drill: a replicated engine serves
through a scripted shard crash (failover keeps availability >= 99%), an unreplicated leg
degrades to typed partial results, and the controller drains the dead shard within budget.
datasets: email-Enron soc-Epinions web-Stanford web-BerkStan soc-Pokec soc-LJ FB-10M FB-50M FB-2B FB-5B FB-10B";

const CONVERT_HELP: &str =
    "usage: shp convert <input> <output> [--from <format>] [--to <format>] [--workers <n>]

Converts a graph between the three supported formats, losslessly:
  edgelist  plain text, one `query_id<TAB>data_id` pair per line, `#` comments
  hmetis    hMetis hypergraph text format (header `|Q| |D|`, one hyperedge per line)
  shpb      compact binary container (checksummed header + raw CSR sections);
            loads an order of magnitude faster than text — ideal for warm starts

Format autodetection, in order of precedence:
  1. an explicit --from / --to flag always wins;
  2. the file extension:  .shpb -> shpb;  .hgr .hmetis .graph -> hmetis;
     .txt .tsv .edges .edgelist .el -> edgelist;
  3. (inputs only) the contents: the `SHPB` magic -> shpb; a first non-blank
     byte of `#` -> edgelist; anything else -> hmetis.
The output format must be resolvable from the extension or --to.

--workers <n> parses text inputs with n threads (the result is bit-identical
for every worker count).

Caveat: an edge list stores only the edges, so queries with no pins and
trailing isolated data vertices are not representable in it; hmetis and shpb
round-trip every graph exactly (shpb including data weights).";

fn usage_error(message: impl Into<String>) -> ShpError {
    ShpError::InvalidArgument(format!("{}\n{USAGE}", message.into()))
}

/// Writes a telemetry snapshot to `path`: Prometheus text exposition format when the path
/// ends in `.prom`, pretty-printed JSON otherwise.
fn write_metrics_file(path: &str, snapshot: &Snapshot) -> ShpResult<()> {
    let body = if path.ends_with(".prom") {
        snapshot.to_prometheus()
    } else {
        snapshot.to_json()
    };
    std::fs::write(path, body)
        .map_err(|error| ShpError::Runtime(format!("cannot write metrics file {path:?}: {error}")))
}

/// The snapshotter polls the stop flag every tick and rewrites the `--metrics` file every
/// [`TICKS_PER_SNAPSHOT`] ticks (~1 s), so a finished run never waits a full period to exit.
const METRICS_TICK: Duration = Duration::from_millis(25);
const TICKS_PER_SNAPSHOT: u32 = 40;

/// Runs `body` while a background thread rewrites `path` with a fresh snapshot roughly once a
/// second (no thread, no writes when `path` is `None`). Mid-run write failures are tolerated —
/// the caller's final write after the run is the one that reports errors.
fn with_periodic_snapshots<T>(
    path: Option<&str>,
    snapshot_now: &(dyn Fn() -> Snapshot + Sync),
    body: impl FnOnce() -> ShpResult<T>,
) -> ShpResult<T> {
    let Some(path) = path else { return body() };
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut ticks = 0u32;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(METRICS_TICK);
                ticks += 1;
                if ticks >= TICKS_PER_SNAPSHOT {
                    ticks = 0;
                    let _ = write_metrics_file(path, &snapshot_now());
                }
            }
        });
        let result = body();
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("metrics snapshot thread panicked");
        result
    })
}

fn cmd_metrics(args: &[String]) -> ShpResult<()> {
    let (path, prometheus) = match args {
        [path] => (path, false),
        [path, flag] if flag == "--prometheus" => (path, true),
        _ => return Err(usage_error("metrics needs a snapshot file")),
    };
    let text = std::fs::read_to_string(path)
        .map_err(|error| ShpError::InvalidArgument(format!("cannot read {path:?}: {error}")))?;
    let snapshot = Snapshot::from_json(&text)
        .map_err(|error| ShpError::InvalidArgument(format!("{path}: {error}")))?;
    if prometheus {
        print!("{}", snapshot.to_prometheus());
        return Ok(());
    }
    println!("telemetry snapshot {path} (schema v{})", snapshot.version);
    if !snapshot.counters.is_empty() {
        println!("\ncounters:");
        for (name, value) in &snapshot.counters {
            println!("  {name:<44} {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        println!("\ngauges:");
        for (name, value) in &snapshot.gauges {
            println!("  {name:<44} {value:>12.4}");
        }
    }
    if !snapshot.histograms.is_empty() {
        println!(
            "\nhistograms:{:36}{:>9} {:>11} {:>11} {:>11} {:>11}",
            "", "count", "mean", "p50", "p99", "max"
        );
        for (name, h) in &snapshot.histograms {
            println!(
                "  {name:<44} {:>9} {:>11.4} {:>11.4} {:>11.4} {:>11.4}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            );
        }
    }
    if !snapshot.spans.is_empty() {
        println!(
            "\nspans:{:41}{:>9} {:>13} {:>13}",
            "", "count", "total ms", "max ms"
        );
        for (name, s) in &snapshot.spans {
            println!(
                "  {name:<44} {:>9} {:>13.3} {:>13.3}",
                s.count,
                s.total_ns as f64 / 1e6,
                s.max_ns as f64 / 1e6
            );
        }
    }
    if !snapshot.top_keys.is_empty() {
        println!("\nhot keys:");
        for (name, keys) in &snapshot.top_keys {
            let rendered: Vec<String> = keys
                .entries
                .iter()
                .take(8)
                .map(|(key, count)| format!("{key}x{count}"))
                .collect();
            println!("  {name:<44} {}", rendered.join("  "));
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> ShpResult<()> {
    let (name, scale, output, stream) = match args {
        [name, scale, output] => (name, scale, output, false),
        [name, scale, output, flag] if flag == "--stream" => (name, scale, output, true),
        _ => {
            return Err(usage_error(
                "generate needs 3 arguments (plus optional --stream)",
            ))
        }
    };
    let dataset = Dataset::from_name(name)
        .ok_or_else(|| ShpError::InvalidArgument(format!("unknown dataset {name:?}")))?;
    let scale: f64 = scale
        .parse()
        .map_err(|_| ShpError::InvalidArgument(format!("invalid scale {scale:?}")))?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(ShpError::InvalidArgument("scale must lie in (0, 1]".into()));
    }
    if stream {
        // Bounded-memory path: the graph goes straight from the generator to the container,
        // byte-identical to materializing it, but it never exists in RAM.
        if GraphFormat::from_extension(output) != Some(GraphFormat::Shpb) {
            return Err(ShpError::InvalidArgument(
                "--stream writes a .shpb container: give the output a .shpb extension".into(),
            ));
        }
        let config = dataset.power_law_config(scale, 0x5047).ok_or_else(|| {
            ShpError::InvalidArgument(format!(
                "dataset {:?} uses the social generator, which needs the whole graph in \
                 memory; --stream supports only the power-law datasets \
                 (email-Enron, web-Stanford, web-BerkStan)",
                dataset.spec().name
            ))
        })?;
        let mut stream = shp_datagen::PowerLawStream::new(config);
        let stats = io::stream_shpb_file(&mut stream, std::path::Path::new(output))?;
        println!(
            "{:<16} |Q| {:>12} |D| {:>12} |E| {:>14}  (streamed, {} source passes, {} bytes)",
            dataset.spec().name,
            stats.num_queries,
            stats.num_data,
            stats.num_pins,
            stats.source_passes,
            stats.bytes_written
        );
        println!("wrote {output}");
        return Ok(());
    }
    let graph = dataset.generate(scale, 0x5047);
    io::write_hmetis_file(&graph, output)?;
    println!(
        "{}",
        GraphStats::compute(&graph).table1_row(dataset.spec().name)
    );
    println!("wrote {output}");
    Ok(())
}

fn cmd_algorithms(args: &[String]) -> ShpResult<()> {
    if !args.is_empty() {
        return Err(usage_error("algorithms takes no arguments"));
    }
    let registry = full_registry();
    println!("registered partitioning algorithms (accepted by `shp partition --mode <name>`):");
    for name in registry.names() {
        println!("  {name}");
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> ShpResult<()> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{CONVERT_HELP}");
        return Ok(());
    }
    if args.len() < 2 {
        return Err(usage_error("convert needs an input and an output path"));
    }
    let input = &args[0];
    let output = &args[1];
    let mut from: Option<GraphFormat> = None;
    let mut to: Option<GraphFormat> = None;
    let mut workers = 4usize;
    let mut i = 2;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| ShpError::InvalidArgument(format!("{flag} needs a value")))?;
        match flag {
            "--from" | "--to" => {
                let format = GraphFormat::from_name(value).ok_or_else(|| {
                    ShpError::InvalidArgument(format!(
                        "unknown format {value:?} (expected edgelist, hmetis, or shpb)"
                    ))
                })?;
                if flag == "--from" {
                    from = Some(format);
                } else {
                    to = Some(format);
                }
            }
            "--workers" => {
                workers = value
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--workers needs a number".into()))?
            }
            other => {
                return Err(ShpError::InvalidArgument(format!(
                    "unknown option {other:?}"
                )))
            }
        }
        i += 2;
    }

    // Input: explicit flag > extension > content sniffing.
    let bytes = std::fs::read(input).map_err(shp_hypergraph::GraphError::from)?;
    let input_format = from.unwrap_or_else(|| GraphFormat::detect(input, &bytes));
    let graph = match input_format {
        GraphFormat::EdgeList => io::parse_edge_list_bytes(&bytes, workers),
        GraphFormat::Hmetis => io::parse_hmetis_bytes(&bytes, workers),
        GraphFormat::Shpb => io::parse_shpb_bytes(&bytes),
    }?;

    // Output: explicit flag > extension (contents cannot be sniffed for a file that does not
    // exist yet).
    let output_format = to
        .or_else(|| GraphFormat::from_extension(output))
        .ok_or_else(|| {
            ShpError::InvalidArgument(format!(
                "cannot infer the output format of {output:?}: use a known extension or --to"
            ))
        })?;
    io::write_graph_file(&graph, output, output_format)?;
    println!(
        "converted {input} ({}) -> {output} ({}): {} queries, {} data vertices, {} pins",
        input_format.name(),
        output_format.name(),
        graph.num_queries(),
        graph.num_data(),
        graph.num_edges()
    );
    Ok(())
}

fn cmd_partition(args: &[String]) -> ShpResult<()> {
    if args.len() < 3 {
        return Err(usage_error("partition needs at least 3 arguments"));
    }
    let input = &args[0];
    let k: u32 = args[1]
        .parse()
        .map_err(|_| ShpError::InvalidArgument(format!("invalid k {:?}", args[1])))?;
    let output = &args[2];
    let mut mode = "shp2".to_string();
    let mut p = 0.5f64;
    let mut epsilon = 0.05f64;
    let mut seed = 0x5047u64;
    let mut iterations: Option<usize> = None;
    let mut workers = 4usize;
    let mut json = false;
    let mut mmap = false;
    let mut metrics: Option<String> = None;
    let mut i = 3;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            json = true;
            i += 1;
            continue;
        }
        if flag == "--mmap" {
            mmap = true;
            i += 1;
            continue;
        }
        let value = || {
            args.get(i + 1)
                .ok_or_else(|| ShpError::InvalidArgument(format!("{flag} needs a value")))
        };
        match flag {
            "--mode" => mode = value()?.clone(),
            "--p" => {
                p = value()?
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--p needs a number".into()))?
            }
            "--epsilon" => {
                epsilon = value()?
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--epsilon needs a number".into()))?
            }
            "--seed" => {
                seed = value()?
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--seed needs a number".into()))?
            }
            "--iterations" => {
                iterations =
                    Some(value()?.parse().map_err(|_| {
                        ShpError::InvalidArgument("--iterations needs a number".into())
                    })?)
            }
            "--workers" => {
                workers = value()?
                    .parse()
                    .map_err(|_| ShpError::InvalidArgument("--workers needs a number".into()))?
            }
            "--metrics" => metrics = Some(value()?.clone()),
            other => {
                return Err(ShpError::InvalidArgument(format!(
                    "unknown option {other:?}"
                )))
            }
        }
        i += 2;
    }

    let objective = if p >= 1.0 {
        ObjectiveKind::Fanout
    } else if p <= 0.0 {
        ObjectiveKind::CliqueNet
    } else {
        ObjectiveKind::ProbabilisticFanout { p }
    };
    let mut spec = PartitionSpec::new(k)
        .with_objective(objective)
        .with_epsilon(epsilon)
        .with_seed(seed)
        .with_workers(workers);
    if let Some(iters) = iterations {
        spec = spec.with_max_iterations(iters);
    }

    let graph = if mmap {
        // Zero-copy open: adjacency stays on disk behind borrowed views; the kernel pages in
        // only what the partitioner touches.
        io::map_shpb_file(input)?
    } else {
        io::read_graph_file_with(input, workers)?
    };
    let registry = full_registry();
    let outcome = registry.run(&mode, &graph, &spec, &mut NoopObserver)?;
    io::write_partition_file(&outcome.partition, output)?;
    if let Some(path) = metrics.as_deref() {
        // The partition phases record into the process-global registry; one snapshot after
        // the run captures parse, CSR build, levels, refinement, and balance repair.
        write_metrics_file(path, &shp_telemetry::global().snapshot())?;
        eprintln!("wrote telemetry snapshot to {path}");
    }
    if json {
        // Keep stdout machine-readable: exactly one JSON object, nothing else.
        println!("{}", outcome.to_json());
        eprintln!("wrote {output}");
    } else {
        print_outcome(&outcome);
        println!("wrote {output}");
    }
    Ok(())
}

fn print_outcome(outcome: &PartitionOutcome) {
    println!(
        "{}: fanout {:.4}  p-fanout(0.5) {:.4}  imbalance {:.4}  iterations {}  moves {}  time {:.2}s",
        outcome.algorithm,
        outcome.fanout,
        outcome.p_fanout,
        outcome.imbalance,
        outcome.iterations,
        outcome.moves,
        outcome.elapsed.as_secs_f64()
    );
}

fn cmd_evaluate(args: &[String]) -> ShpResult<()> {
    let (positional, json) = match args {
        [a, b, c] => ([a, b, c], false),
        [a, b, c, flag] if flag == "--json" => ([a, b, c], true),
        _ => return Err(usage_error("evaluate needs 3 arguments")),
    };
    let [input, partition_path, k] = positional;
    let k: u32 = k
        .parse()
        .map_err(|_| ShpError::InvalidArgument(format!("invalid k {k:?}")))?;
    let graph = io::read_graph_file(input)?;
    let partition = io::read_partition_file(&graph, k, partition_path)?;
    let fanout = average_fanout(&graph, &partition);
    let p_fanout = average_p_fanout(&graph, &partition, 0.5);
    let cut = hyperedge_cut(&graph, &partition);
    let imbalance = partition.imbalance();
    if json {
        println!(
            "{{\"fanout\":{fanout:.6},\"p_fanout\":{p_fanout:.6},\"hyperedge_cut\":{cut},\
             \"imbalance\":{imbalance:.6},\"num_buckets\":{k}}}"
        );
    } else {
        println!("{}", GraphStats::compute(&graph));
        println!(
            "fanout {fanout:.4}  p-fanout(0.5) {p_fanout:.4}  hyperedge-cut {cut}  imbalance {imbalance:.4}"
        );
    }
    Ok(())
}

/// Shared options of the serving subcommands.
struct ServeOptions {
    dataset: Dataset,
    /// Serve a graph loaded from this file (any supported format) instead of a generated
    /// dataset; a `.shpb` snapshot makes the warm start skip parsing entirely.
    graph: Option<String>,
    /// Warm-start serving from this partition file instead of a random placement (serve
    /// subcommand only).
    partition: Option<String>,
    scale: f64,
    shards: u32,
    rate: f64,
    duration: f64,
    clients: usize,
    cache: usize,
    seed: u64,
    workers: usize,
    /// Export the run's telemetry snapshot to this file (rewritten roughly once a second
    /// while the workload runs): JSON, or Prometheus text if the path ends in `.prom`.
    metrics: Option<String>,
    /// Online repartitioning cadence: one controller epoch every this many served multigets.
    /// 0 (the default) keeps the classic one-shot background SHP-2 warm start.
    repartition_every: usize,
    /// Per-epoch migration budget for online repartitioning (keys moved per delta install).
    migration_budget: usize,
    /// Memory-map the `--graph` file (must be a `.shpb` container) instead of loading it
    /// onto the heap: the warm start validates the header and offsets plus one checksum
    /// pass, then serves adjacency straight from the page cache.
    mmap: bool,
}

impl ServeOptions {
    fn parse(args: &[String]) -> ShpResult<Self> {
        let mut options = ServeOptions {
            dataset: Dataset::EmailEnron,
            graph: None,
            partition: None,
            scale: 0.05,
            shards: 16,
            rate: 200.0,
            duration: 60.0,
            clients: 4,
            cache: 0,
            seed: 0x5047,
            workers: 4,
            metrics: None,
            repartition_every: 0,
            migration_budget: 256,
            mmap: false,
        };
        let invalid = |message: String| ShpError::InvalidArgument(message);
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--mmap" {
                options.mmap = true;
                i += 1;
                continue;
            }
            // Recognize the flag before demanding a value, so an unknown trailing flag is
            // reported as unknown rather than as missing its (nonexistent) value.
            if !matches!(
                args[i].as_str(),
                "--dataset"
                    | "--graph"
                    | "--partition"
                    | "--scale"
                    | "--shards"
                    | "--rate"
                    | "--duration"
                    | "--clients"
                    | "--cache"
                    | "--seed"
                    | "--workers"
                    | "--metrics"
                    | "--repartition-every"
                    | "--migration-budget"
            ) {
                return Err(invalid(format!("unknown option {:?}", args[i])));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| invalid(format!("{} needs a value", args[i])))?;
            match args[i].as_str() {
                "--dataset" => {
                    options.dataset = Dataset::from_name(value)
                        .ok_or_else(|| invalid(format!("unknown dataset {value:?}")))?;
                }
                "--graph" => options.graph = Some(value.clone()),
                "--partition" => options.partition = Some(value.clone()),
                "--scale" => {
                    options.scale = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid scale {value:?}")))?;
                    if !(options.scale > 0.0 && options.scale <= 1.0) {
                        return Err(invalid("scale must lie in (0, 1]".into()));
                    }
                }
                "--shards" => {
                    options.shards = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid shard count {value:?}")))?;
                    if options.shards < 2 {
                        return Err(invalid("at least 2 shards are required".into()));
                    }
                }
                "--rate" => {
                    options.rate = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid rate {value:?}")))?;
                    if !(options.rate > 0.0 && options.rate.is_finite()) {
                        return Err(invalid("rate must be a positive number".into()));
                    }
                }
                "--duration" => {
                    options.duration = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid duration {value:?}")))?;
                    if !(options.duration > 0.0 && options.duration.is_finite()) {
                        return Err(invalid("duration must be a positive number".into()));
                    }
                }
                "--clients" => {
                    options.clients = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid client count {value:?}")))?;
                }
                "--cache" => {
                    options.cache = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid cache capacity {value:?}")))?;
                }
                "--seed" => {
                    options.seed = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid seed {value:?}")))?;
                }
                "--workers" => {
                    options.workers = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid worker count {value:?}")))?;
                    if options.workers == 0 {
                        return Err(invalid("at least 1 worker is required".into()));
                    }
                }
                "--metrics" => options.metrics = Some(value.clone()),
                "--repartition-every" => {
                    options.repartition_every = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid repartition cadence {value:?}")))?;
                }
                "--migration-budget" => {
                    options.migration_budget = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid migration budget {value:?}")))?;
                    if options.migration_budget == 0 {
                        return Err(invalid("the migration budget must be at least 1".into()));
                    }
                }
                _ => unreachable!("flag names are checked above"),
            }
            i += 2;
        }
        Ok(options)
    }

    fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            arrival_rate: self.rate,
            duration: self.duration,
            seed: self.seed,
            ..Default::default()
        }
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            cache_capacity: self.cache,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// The serving graph plus the optional on-disk placement: from `--graph` (and
    /// `--partition`) through the serving bootstrap, or a generated dataset otherwise.
    fn load_warm_start(&self) -> ShpResult<(BipartiteGraph, Option<shp_hypergraph::Partition>)> {
        match &self.graph {
            Some(path) => {
                let warm = shp_serving::load_warm_start_with(
                    path,
                    self.partition.as_ref(),
                    self.shards,
                    self.workers,
                    self.mmap,
                )?;
                Ok((warm.graph, warm.partition))
            }
            None => {
                if self.mmap {
                    return Err(ShpError::InvalidArgument(
                        "--mmap requires --graph <file.shpb> (a generated dataset has no \
                         on-disk container to map)"
                            .into(),
                    ));
                }
                if self.partition.is_some() {
                    return Err(ShpError::InvalidArgument(
                        "--partition requires --graph (a generated dataset has no saved \
                         placement)"
                            .into(),
                    ));
                }
                let graph = self
                    .dataset
                    .generate(self.scale, self.seed)
                    .filter_small_queries(2);
                Ok((graph, None))
            }
        }
    }

    fn graph_label(&self) -> String {
        match &self.graph {
            Some(path) => path.clone(),
            None => self.dataset.spec().name.to_string(),
        }
    }

    fn spec(&self) -> PartitionSpec {
        PartitionSpec::new(self.shards)
            .with_seed(self.seed)
            .with_workers(self.workers)
    }

    fn shp_outcome(
        &self,
        registry: &AlgorithmRegistry,
        graph: &BipartiteGraph,
    ) -> ShpResult<PartitionOutcome> {
        registry.run("shp2", graph, &self.spec(), &mut NoopObserver)
    }
}

fn cmd_replay(args: &[String]) -> ShpResult<()> {
    let options = ServeOptions::parse(args)?;
    if options.partition.is_some() {
        return Err(ShpError::InvalidArgument(
            "--partition is only meaningful for `shp serve`".into(),
        ));
    }
    if options.repartition_every != 0 {
        return Err(ShpError::InvalidArgument(
            "--repartition-every is only meaningful for `shp serve`".into(),
        ));
    }
    let (graph, _) = options.load_warm_start()?;
    println!(
        "workload: {} ({} queries, {} keys), {} shards, rate {}/t for {}t, {} clients",
        options.graph_label(),
        graph.num_queries(),
        graph.num_data(),
        options.shards,
        options.rate,
        options.duration,
        options.clients
    );

    let events = open_loop_schedule(graph.num_queries(), &options.workload());
    println!("schedule: {} multigets\n", events.len());

    let registry = full_registry();
    let random = registry.run("random", &graph, &options.spec(), &mut NoopObserver)?;
    println!("computing SHP-2 partition...");
    let shp = options.shp_outcome(&registry, &graph)?;

    let mut rows: Vec<(&str, shp_serving::ServingReport)> = Vec::new();
    // Telemetry from engines that already finished their workload, keyed by prefix; each
    // periodic snapshot folds the live engine and the process-global registry on top.
    let mut served = Snapshot::new();
    for (name, prefix, outcome) in [
        ("Random", "serving/random", &random),
        ("SHP-2", "serving/shp2", &shp),
    ] {
        let engine = ServingEngine::new(&outcome.partition, options.engine_config())?;
        let snapshot_now = || {
            let mut live = served.clone();
            live.merge(&engine.telemetry_snapshot(prefix));
            live.merge(&shp_telemetry::global().snapshot());
            live
        };
        let report = with_periodic_snapshots(options.metrics.as_deref(), &snapshot_now, || {
            Ok(engine.run_workload(&graph, &events, options.clients)?)
        })?;
        served.merge(&engine.telemetry_snapshot(prefix));
        println!("=== {name} ===\n{report}\n");
        rows.push((name, report));
    }
    if let Some(path) = options.metrics.as_deref() {
        served.merge(&shp_telemetry::global().snapshot());
        write_metrics_file(path, &served)?;
        println!("wrote telemetry snapshot to {path}");
    }

    let (random_report, shp_report) = (&rows[0].1, &rows[1].1);
    println!(
        "SHP-2 vs Random: mean fanout {:.3} -> {:.3} ({:.1}% lower), p99 latency {:.3}t -> {:.3}t ({:.1}% lower)",
        random_report.mean_fanout,
        shp_report.mean_fanout,
        100.0 * (1.0 - shp_report.mean_fanout / random_report.mean_fanout),
        random_report.p99,
        shp_report.p99,
        100.0 * (1.0 - shp_report.p99 / random_report.p99),
    );
    if shp_report.mean_fanout >= random_report.mean_fanout {
        return Err(ShpError::Runtime(
            "SHP partition failed to lower mean fanout".into(),
        ));
    }
    if shp_report.p99 >= random_report.p99 {
        return Err(ShpError::Runtime(
            "SHP partition failed to lower p99 latency".into(),
        ));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> ShpResult<()> {
    let options = ServeOptions::parse(args)?;
    let (graph, loaded_partition) = options.load_warm_start()?;
    let events = open_loop_schedule(graph.num_queries(), &options.workload());
    let start = match loaded_partition {
        Some(partition) => {
            println!(
                "serving {} multigets over {} keys on {} shards; warm start from the \
                 placement in {}",
                events.len(),
                graph.num_data(),
                options.shards,
                options.partition.as_deref().unwrap_or("?"),
            );
            partition
        }
        None => {
            println!(
                "serving {} multigets over {} keys on {} shards; starting from a random \
                 partition",
                events.len(),
                graph.num_data(),
                options.shards
            );
            RandomPartitioner::new(options.seed).partition_into(&graph, options.shards, 0.05)
        }
    };
    if options.repartition_every > 0 {
        return serve_online(&options, &graph, &events, &start);
    }
    let engine = ServingEngine::new(&start, options.engine_config())?;

    // Plan the repartition off the serving path, then warm-start it live once at least half of
    // the schedule has been served: the swapper thread races the concurrent clients, and every
    // in-flight multiget finishes on whichever generation it loaded.
    println!("planning SHP-2 repartition off the serving path...");
    let registry = full_registry();
    let shp = options.shp_outcome(&registry, &graph)?;
    let progress = AtomicUsize::new(0);
    let swap_at = events.len() / 2;
    let chunk = events.len().div_ceil(options.clients.max(1)).max(1);
    let snapshot_now = || {
        let mut live = engine.telemetry_snapshot("serving");
        live.merge(&shp_telemetry::global().snapshot());
        live
    };
    let outcome: ShpResult<()> =
        with_periodic_snapshots(options.metrics.as_deref(), &snapshot_now, || {
            std::thread::scope(|scope| {
                let engine_ref = &engine;
                let graph_ref = &graph;
                let progress_ref = &progress;
                let shp_ref = &shp;
                let swapper = scope.spawn(move || -> ShpResult<u64> {
                    while progress_ref.load(Ordering::Relaxed) < swap_at {
                        std::thread::yield_now();
                    }
                    Ok(engine_ref.warm_start(shp_ref)?)
                });
                let clients: Vec<_> = events
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || -> ShpResult<()> {
                            for event in slice {
                                engine_ref.multiget(graph_ref.query_neighbors(event.query))?;
                                progress_ref.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(())
                        })
                    })
                    .collect();
                for client in clients {
                    client.join().expect("client thread panicked")?;
                }
                let epoch = swapper.join().expect("swapper thread panicked")?;
                println!("installed SHP-2 partition live at epoch {epoch}");
                Ok(())
            })
        });
    outcome?;
    if let Some(path) = options.metrics.as_deref() {
        write_metrics_file(path, &snapshot_now())?;
        println!("wrote telemetry snapshot to {path}");
    }

    let report = engine.report();
    println!("\n{report}");
    if report.queries != events.len() as u64 {
        return Err(ShpError::Runtime(format!(
            "serving gap: only {} of {} multigets were served",
            report.queries,
            events.len()
        )));
    }
    if report.max_epoch == 0 {
        return Err(ShpError::Runtime(
            "the run finished before the repartition could be installed; \
             increase --duration or --rate so the swap lands mid-run"
                .into(),
        ));
    }
    println!(
        "\nno serving gap: all {} multigets answered across epochs {}..={}",
        report.queries, report.min_epoch, report.max_epoch
    );
    Ok(())
}

/// `shp serve --repartition-every <n>`: the closed observe→repartition loop, live.
///
/// A bounded [`AccessTraceCollector`] rides the multiget hot path as the engine's access
/// observer; a controller thread runs one [`RepartitionController`] epoch every `n` served
/// multigets, installing a budgeted delta placement while the client threads keep serving.
fn serve_online(
    options: &ServeOptions,
    graph: &BipartiteGraph,
    events: &[WorkloadEvent],
    start: &shp_hypergraph::Partition,
) -> ShpResult<()> {
    let collector = Arc::new(AccessTraceCollector::new(
        options.repartition_every.clamp(64, 4096),
        options.seed,
    ));
    let engine =
        ServingEngine::new(start, options.engine_config())?.with_access_observer(collector.clone());
    let controller = RepartitionController::new(
        collector,
        ControllerConfig {
            migration_budget: options.migration_budget,
            seed: options.seed,
            ..ControllerConfig::default()
        },
    );
    println!(
        "online repartitioning: one controller epoch every {} multigets, migration budget {} \
         keys/epoch",
        options.repartition_every, options.migration_budget
    );

    let progress = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let chunk = events.len().div_ceil(options.clients.max(1)).max(1);
    let snapshot_now = || {
        let mut live = engine.telemetry_snapshot("serving");
        live.merge(&shp_telemetry::global().snapshot());
        live
    };
    let (epochs_run, cumulative_moved, epochs_skipped) =
        with_periodic_snapshots(options.metrics.as_deref(), &snapshot_now, || {
            std::thread::scope(|scope| {
                let engine_ref = &engine;
                let graph_ref = &graph;
                let progress_ref = &progress;
                let done_ref = &done;
                let every = options.repartition_every;
                let mut controller = controller;
                let driver = scope.spawn(move || -> (usize, usize, usize) {
                    let mut boundary = every;
                    loop {
                        while progress_ref.load(Ordering::Relaxed) < boundary {
                            if done_ref.load(Ordering::Relaxed) {
                                return (
                                    controller.epochs_run(),
                                    controller.cumulative_moved(),
                                    controller.epochs_skipped(),
                                );
                            }
                            std::thread::yield_now();
                        }
                        // A failed epoch (infeasible budget, torn trace, ...) must not tear
                        // down serving: skip it, report why, and keep the loop alive.
                        let skipped_before = controller.epochs_skipped();
                        match controller.run_epoch_or_skip(engine_ref) {
                            Some(outcome) => println!(
                                "epoch {}: moved {} keys (observed fanout {:.3} -> {:.3} over \
                                 {} multigets)",
                                outcome.epoch,
                                outcome.moved_keys,
                                outcome.fanout_before,
                                outcome.fanout_after,
                                outcome.observed_queries
                            ),
                            None if controller.epochs_skipped() > skipped_before => eprintln!(
                                "repartition epoch skipped (serving continues): {}",
                                controller.last_skip_reason().unwrap_or("unknown failure")
                            ),
                            None => {}
                        }
                        boundary += every;
                    }
                });
                let clients: Vec<_> = events
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || -> ShpResult<()> {
                            for event in slice {
                                engine_ref.multiget(graph_ref.query_neighbors(event.query))?;
                                progress_ref.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(())
                        })
                    })
                    .collect();
                for client in clients {
                    client.join().expect("client thread panicked")?;
                }
                done.store(true, Ordering::Relaxed);
                Ok(driver.join().expect("controller thread panicked"))
            })
        })?;
    if let Some(path) = options.metrics.as_deref() {
        write_metrics_file(path, &snapshot_now())?;
        println!("wrote telemetry snapshot to {path}");
    }

    let report = engine.report();
    println!("\n{report}");
    if report.queries != events.len() as u64 {
        return Err(ShpError::Runtime(format!(
            "serving gap: only {} of {} multigets were served",
            report.queries,
            events.len()
        )));
    }
    if epochs_run == 0 {
        return Err(ShpError::Runtime(format!(
            "no controller epoch succeeded: the schedule served {} multigets at cadence {} \
             ({} epoch(s) skipped); lower --repartition-every or raise --rate/--duration",
            events.len(),
            options.repartition_every,
            epochs_skipped
        )));
    }
    println!(
        "\nonline loop closed: {} controller epoch(s) ({} skipped), {} key(s) moved in total \
         (budget {} keys/epoch), final epoch {}",
        epochs_run,
        epochs_skipped,
        cumulative_moved,
        options.migration_budget,
        engine.current_epoch()
    );
    Ok(())
}

/// Renders one scenario run as a JSON object (phase rows plus the headline totals).
fn drift_report_json(report: &DriftReport) -> String {
    let phases: Vec<String> = report
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"phase\":{},\"mean_fanout\":{:.6},\"p99\":{:.6},\"p999\":{:.6},\
                 \"epochs\":{},\"moved\":{}}}",
                p.phase,
                p.mean_fanout,
                p.p99,
                p.p999,
                p.epochs.len(),
                p.epochs.iter().map(|e| e.moved_keys).sum::<usize>()
            )
        })
        .collect();
    format!(
        "{{\"phases\":[{}],\"cumulative_moved\":{},\"migration_budget\":{},\
         \"max_epoch_moved\":{}}}",
        phases.join(","),
        report.cumulative_moved,
        report.migration_budget,
        report.max_epoch_moved
    )
}

fn cmd_controller(args: &[String]) -> ShpResult<()> {
    let mut quick = false;
    let mut json = false;
    let mut phases: Option<usize> = None;
    let mut every: Option<usize> = None;
    let mut budget: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--quick" || flag == "--json" {
            if flag == "--quick" {
                quick = true;
            } else {
                json = true;
            }
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| ShpError::InvalidArgument(format!("{flag} needs a value")))?;
        let parsed = |what: &str| {
            value
                .parse::<usize>()
                .map_err(|_| ShpError::InvalidArgument(format!("invalid {what} {value:?}")))
        };
        match flag {
            "--phases" => phases = Some(parsed("phase count")?),
            "--every" => every = Some(parsed("epoch cadence")?),
            "--budget" => budget = Some(parsed("migration budget")?),
            "--seed" => {
                seed =
                    Some(value.parse().map_err(|_| {
                        ShpError::InvalidArgument(format!("invalid seed {value:?}"))
                    })?)
            }
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
        i += 2;
    }

    let mut config = DriftConfig::default();
    if quick {
        config = config.quick();
    }
    if let Some(phases) = phases {
        config.phases = phases;
    }
    if let Some(every) = every {
        config.repartition_every = every;
    }
    if let Some(budget) = budget {
        config.migration_budget = budget;
    }
    if let Some(seed) = seed {
        config.seed = seed;
    }
    if config.phases == 0 || config.repartition_every == 0 || config.migration_budget == 0 {
        return Err(ShpError::InvalidArgument(
            "--phases, --every, and --budget must all be at least 1".into(),
        ));
    }

    if !json {
        println!(
            "drift scenario: {} communities x {} keys on {} shards, {} phases x {} multigets, \
             structure shifts {} keys/phase",
            config.communities,
            config.community_size,
            config.shards,
            config.phases,
            config.queries_per_phase,
            config.shift_per_phase
        );
        println!(
            "controller: one epoch every {} multigets, migration budget {} keys/epoch\n",
            config.repartition_every, config.migration_budget
        );
    }
    let with = run_drift_scenario(&config)?;
    let baseline = run_drift_scenario(&DriftConfig {
        repartition_every: 0,
        ..config.clone()
    })?;

    if json {
        println!(
            "{{\"controller\":{},\"baseline\":{}}}",
            drift_report_json(&with),
            drift_report_json(&baseline)
        );
    } else {
        println!(
            "{:>5}  {:>17} {:>8} {:>8}  {:>15} {:>8}  {:>6} {:>6}",
            "phase",
            "controller fanout",
            "p99",
            "p999",
            "baseline fanout",
            "p99",
            "epochs",
            "moved"
        );
        for (c, b) in with.phases.iter().zip(&baseline.phases) {
            println!(
                "{:>5}  {:>17.4} {:>8.3} {:>8.3}  {:>15.4} {:>8.3}  {:>6} {:>6}",
                c.phase,
                c.mean_fanout,
                c.p99,
                c.p999,
                b.mean_fanout,
                b.p99,
                c.epochs.len(),
                c.epochs.iter().map(|e| e.moved_keys).sum::<usize>()
            );
        }
        println!(
            "\nfinal phase: controller fanout {:.4} vs baseline {:.4} ({:.1}% lower); \
             migration {} keys total, largest epoch {} (budget {})",
            with.final_phase_fanout(),
            baseline.final_phase_fanout(),
            100.0 * (1.0 - with.final_phase_fanout() / baseline.final_phase_fanout()),
            with.cumulative_moved,
            with.max_epoch_moved,
            with.migration_budget
        );
    }

    if with.max_epoch_moved > config.migration_budget {
        return Err(ShpError::Runtime(format!(
            "migration budget violated: an epoch moved {} keys (budget {})",
            with.max_epoch_moved, config.migration_budget
        )));
    }
    if with.final_phase_fanout() >= baseline.final_phase_fanout() {
        return Err(ShpError::Runtime(format!(
            "the controller failed to beat the never-repartition baseline: {:.4} vs {:.4}",
            with.final_phase_fanout(),
            baseline.final_phase_fanout()
        )));
    }
    Ok(())
}

/// Renders one drill run as a JSON object (phase rows plus the headline totals).
fn drill_report_json(report: &DrillReport) -> String {
    let phases: Vec<String> = report
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"phase\":\"{}\",\"mean_fanout\":{:.6},\"p99\":{:.6},\
                 \"availability\":{:.6},\"degraded_queries\":{},\"retries\":{},\
                 \"hedges_won\":{}}}",
                p.name,
                p.mean_fanout,
                p.p99,
                p.availability,
                p.degraded_queries,
                p.retries,
                p.hedges_won
            )
        })
        .collect();
    format!(
        "{{\"phases\":[{}],\"wrong_values\":{},\"degraded_leg_availability\":{:.6},\
         \"degraded_leg_degraded\":{},\"missing_mismatches\":{},\"recovery_epochs\":{},\
         \"recovery_moved\":{},\"max_epoch_moved\":{},\"recovery_remaining\":{},\
         \"migration_budget\":{}}}",
        phases.join(","),
        report.wrong_values,
        report.degraded_leg_availability,
        report.degraded_leg_degraded,
        report.missing_mismatches,
        report.recovery_epochs,
        report.recovery_moved,
        report.max_epoch_moved,
        report.recovery_remaining,
        report.migration_budget
    )
}

/// Every acceptance gate of the failure drill; the CLI (and CI through it) exits nonzero
/// when any fails.
fn check_drill_gates(report: &DrillReport) -> ShpResult<()> {
    if report.wrong_values > 0 {
        return Err(ShpError::Runtime(format!(
            "correctness violated: {} value(s) served wrong under faults",
            report.wrong_values
        )));
    }
    if report.missing_mismatches > 0 {
        return Err(ShpError::Runtime(format!(
            "partial results imprecise: {} quer(ies) misreported their missing keys",
            report.missing_mismatches
        )));
    }
    if report.incident_availability() < 0.99 {
        return Err(ShpError::Runtime(format!(
            "availability {:.4} under the incident (gate: >= 0.99 with replication)",
            report.incident_availability()
        )));
    }
    if report.max_epoch_moved > report.migration_budget {
        return Err(ShpError::Runtime(format!(
            "migration budget violated: a recovery epoch moved {} keys (budget {})",
            report.max_epoch_moved, report.migration_budget
        )));
    }
    if report.recovery_remaining > 0 {
        return Err(ShpError::Runtime(format!(
            "dead shard not drained: {} key(s) still assigned after recovery",
            report.recovery_remaining
        )));
    }
    if report.post_fanout() > 1.05 * report.baseline_fanout() {
        return Err(ShpError::Runtime(format!(
            "post-recovery fanout {:.4} not within 5% of the baseline {:.4}",
            report.post_fanout(),
            report.baseline_fanout()
        )));
    }
    Ok(())
}

fn cmd_drill(args: &[String]) -> ShpResult<()> {
    let mut quick = false;
    let mut json = false;
    let mut budget: Option<usize> = None;
    let mut replication: Option<u32> = None;
    let mut seed: Option<u64> = None;
    let mut metrics: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--quick" || flag == "--json" {
            if flag == "--quick" {
                quick = true;
            } else {
                json = true;
            }
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| ShpError::InvalidArgument(format!("{flag} needs a value")))?;
        match flag {
            "--budget" => {
                budget = Some(value.parse().map_err(|_| {
                    ShpError::InvalidArgument(format!("invalid migration budget {value:?}"))
                })?)
            }
            "--replication" => {
                replication = Some(value.parse().map_err(|_| {
                    ShpError::InvalidArgument(format!("invalid replication factor {value:?}"))
                })?)
            }
            "--seed" => {
                seed =
                    Some(value.parse().map_err(|_| {
                        ShpError::InvalidArgument(format!("invalid seed {value:?}"))
                    })?)
            }
            "--metrics" => metrics = Some(value.clone()),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
        i += 2;
    }

    let mut config = DrillConfig::default();
    if quick {
        config = config.quick();
    }
    if let Some(budget) = budget {
        config.migration_budget = budget;
    }
    if let Some(replication) = replication {
        config.replication = replication;
    }
    if let Some(seed) = seed {
        config.seed = seed;
    }

    if !json {
        println!(
            "failure drill: {} communities x {} keys on {} shards (replication {}), 4 phases \
             x {} multigets",
            config.communities,
            config.community_size,
            config.shards,
            config.replication,
            config.queries_per_phase
        );
        println!(
            "incident script: shard {} crashes, shard {} serves {}x slow; recovery budget {} \
             keys/epoch\n",
            config.dead_shard, config.slow_shard, config.slow_factor, config.migration_budget
        );
    }
    let (report, mut snapshot) = run_drill_scenario_with_telemetry(&config)?;
    if let Some(path) = metrics.as_deref() {
        snapshot.merge(&shp_telemetry::global().snapshot());
        write_metrics_file(path, &snapshot)?;
    }

    if json {
        println!("{}", drill_report_json(&report));
    } else {
        println!(
            "{:>9}  {:>7} {:>8}  {:>12} {:>8} {:>7} {:>6}",
            "phase", "fanout", "p99", "availability", "degraded", "retries", "hedged"
        );
        for p in &report.phases {
            println!(
                "{:>9}  {:>7.4} {:>8.3}  {:>12.4} {:>8} {:>7} {:>6}",
                p.name,
                p.mean_fanout,
                p.p99,
                p.availability,
                p.degraded_queries,
                p.retries,
                p.hedges_won
            );
        }
        println!(
            "\ndegraded leg (no replicas): availability {:.4}, {} degraded quer(ies), every \
             partial result precise ({} mismatches)",
            report.degraded_leg_availability,
            report.degraded_leg_degraded,
            report.missing_mismatches
        );
        println!(
            "recovery: drained {} key(s) in {} epoch(s), largest epoch {} (budget {}), {} \
             remaining; {} wrong value(s) served",
            report.recovery_moved,
            report.recovery_epochs,
            report.max_epoch_moved,
            report.migration_budget,
            report.recovery_remaining,
            report.wrong_values
        );
    }
    if let Some(path) = metrics.as_deref() {
        println!("wrote telemetry snapshot to {path}");
    }

    check_drill_gates(&report)
}
