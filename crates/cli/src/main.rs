//! `shp` — command-line interface for the Social Hash Partitioner.
//!
//! Subcommands:
//!
//! * `generate <dataset> <scale> <output.hgr>` — synthesize a Table-1 dataset stand-in and
//!   write it in hMetis format.
//! * `partition <input.hgr> <k> <output.part> [--mode shp2|shpk] [--p <p>] [--epsilon <eps>] [--seed <seed>]`
//!   — partition a hypergraph file and write the bucket of every vertex.
//! * `evaluate <input.hgr> <partition.part> <k>` — report fanout, p-fanout, hyperedge cut, and
//!   imbalance of an existing partition.
//!
//! The hMetis format is the one exchanged by hMetis/PaToH/Mondriaan/Parkway/Zoltan, so
//! partitions can be compared against other tools directly.

use shp_core::{partition_direct, partition_recursive, ObjectiveKind, ShpConfig};
use shp_datagen::Dataset;
use shp_hypergraph::{
    average_fanout, average_p_fanout, hyperedge_cut, io, GraphStats,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("partition") => cmd_partition(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  shp generate <dataset> <scale> <output.hgr>
  shp partition <input.hgr> <k> <output.part> [--mode shp2|shpk] [--p <p>] [--epsilon <eps>] [--seed <seed>]
  shp evaluate <input.hgr> <partition.part> <k>

datasets: email-Enron soc-Epinions web-Stanford web-BerkStan soc-Pokec soc-LJ FB-10M FB-50M FB-2B FB-5B FB-10B";

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [name, scale, output] = args else {
        return Err(format!("generate needs 3 arguments\n{USAGE}"));
    };
    let dataset = Dataset::from_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale: f64 = scale.parse().map_err(|_| format!("invalid scale {scale:?}"))?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("scale must lie in (0, 1]".into());
    }
    let graph = dataset.generate(scale, 0x5047);
    io::write_hmetis_file(&graph, output).map_err(|e| e.to_string())?;
    println!("{}", GraphStats::compute(&graph).table1_row(dataset.spec().name));
    println!("wrote {output}");
    Ok(())
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    if args.len() < 3 {
        return Err(format!("partition needs at least 3 arguments\n{USAGE}"));
    }
    let input = &args[0];
    let k: u32 = args[1].parse().map_err(|_| format!("invalid k {:?}", args[1]))?;
    let output = &args[2];
    let mut mode = "shp2".to_string();
    let mut p = 0.5f64;
    let mut epsilon = 0.05f64;
    let mut seed = 0x5047u64;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                mode = args.get(i + 1).cloned().ok_or("--mode needs a value")?;
                i += 2;
            }
            "--p" => {
                p = args.get(i + 1).and_then(|s| s.parse().ok()).ok_or("--p needs a number")?;
                i += 2;
            }
            "--epsilon" => {
                epsilon =
                    args.get(i + 1).and_then(|s| s.parse().ok()).ok_or("--epsilon needs a number")?;
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).ok_or("--seed needs a number")?;
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }

    let graph = io::read_hmetis_file(input).map_err(|e| e.to_string())?;
    let objective = if p >= 1.0 {
        ObjectiveKind::Fanout
    } else if p <= 0.0 {
        ObjectiveKind::CliqueNet
    } else {
        ObjectiveKind::ProbabilisticFanout { p }
    };
    let result = match mode.as_str() {
        "shp2" => {
            let config = ShpConfig::recursive_bisection(k)
                .with_objective(objective)
                .with_epsilon(epsilon)
                .with_seed(seed);
            partition_recursive(&graph, &config)?
        }
        "shpk" => {
            let config = ShpConfig::direct(k)
                .with_objective(objective)
                .with_epsilon(epsilon)
                .with_seed(seed);
            partition_direct(&graph, &config)?
        }
        other => return Err(format!("unknown mode {other:?} (expected shp2 or shpk)")),
    };
    io::write_partition_file(&result.partition, output).map_err(|e| e.to_string())?;
    println!(
        "fanout {:.4}  p-fanout(0.5) {:.4}  imbalance {:.4}  iterations {}  time {:.2}s",
        result.report.final_fanout,
        result.report.final_p_fanout,
        result.report.imbalance,
        result.report.total_iterations(),
        result.report.elapsed.as_secs_f64()
    );
    println!("wrote {output}");
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let [input, partition_path, k] = args else {
        return Err(format!("evaluate needs 3 arguments\n{USAGE}"));
    };
    let k: u32 = k.parse().map_err(|_| format!("invalid k {k:?}"))?;
    let graph = io::read_hmetis_file(input).map_err(|e| e.to_string())?;
    let partition = io::read_partition_file(&graph, k, partition_path).map_err(|e| e.to_string())?;
    println!("{}", GraphStats::compute(&graph));
    println!(
        "fanout {:.4}  p-fanout(0.5) {:.4}  hyperedge-cut {}  imbalance {:.4}",
        average_fanout(&graph, &partition),
        average_p_fanout(&graph, &partition, 0.5),
        hyperedge_cut(&graph, &partition),
        partition.imbalance()
    );
    Ok(())
}
