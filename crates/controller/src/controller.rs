//! [`RepartitionController`]: the decision half of the serve→observe→repartition loop.
//!
//! Each controller **epoch** performs the paper's production cycle (Section 5) end to end:
//!
//! 1. drain the [`AccessTraceCollector`](crate::AccessTraceCollector)'s reservoir into the
//!    observed co-access graph;
//! 2. run [`partition_incremental`] seeded from the *live* placement, with the migration
//!    budget enforced deterministically by `IncrementalConfig::max_moves`;
//! 3. diff the result against the live snapshot into a [`PartitionDelta`] (moved keys only)
//!    and install it through [`ServingEngine::install_delta`] — one atomic pointer swap, no
//!    full-map clone, readers in flight undisturbed;
//! 4. reset the collector so the next epoch observes fresh traffic.
//!
//! The controller holds no reference to the engine; callers pass it per epoch, so one
//! controller can drive an engine from any thread (the CLI runs it from a background thread
//! next to the serving clients).

use crate::trace::AccessTraceCollector;
use shp_core::{partition_incremental, IncrementalConfig, ShpConfig, ShpResult};
use shp_hypergraph::Partition;
use shp_serving::{PartitionDelta, ServingEngine};
use std::sync::Arc;

/// Tuning knobs of a [`RepartitionController`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Hard cap on keys moved per epoch (the migration budget of the stability constraint).
    pub migration_budget: usize,
    /// Allowed shard imbalance `ε` for the incremental runs. Needs headroom above the
    /// serving tier's initial balance, since budgeted gain moves are capacity-checked.
    pub epsilon: f64,
    /// Iteration cap for each incremental refinement.
    pub max_iterations: usize,
    /// Gain penalty for moving a key away from its live shard (on top of the hard budget).
    pub movement_penalty: f64,
    /// Seed for the refinement's randomized decisions.
    pub seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            migration_budget: 256,
            epsilon: 0.1,
            max_iterations: 10,
            movement_penalty: 0.0,
            seed: 0xC0_11EC,
        }
    }
}

/// What one controller epoch did.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// Epoch id the delta was installed as.
    pub epoch: u64,
    /// Keys the installed delta moved (`≤ migration_budget` always).
    pub moved_keys: usize,
    /// Multigets the observed graph was built from.
    pub observed_queries: usize,
    /// Average fanout of the observed graph under the *previous* placement.
    pub fanout_before: f64,
    /// Average fanout of the observed graph under the *installed* placement.
    pub fanout_after: f64,
}

/// Periodically re-partitions a live [`ServingEngine`] from observed traffic under a hard
/// per-epoch migration budget (see the module docs).
#[derive(Debug)]
pub struct RepartitionController {
    collector: Arc<AccessTraceCollector>,
    config: ControllerConfig,
    /// Cumulative moved keys over every epoch (the migration volume the paper's stability
    /// constraint bounds).
    cumulative_moved: usize,
    epochs_run: usize,
}

impl RepartitionController {
    /// Creates a controller draining `collector`. Attach the same collector to the engine
    /// via [`ServingEngine::with_access_observer`].
    pub fn new(collector: Arc<AccessTraceCollector>, config: ControllerConfig) -> Self {
        RepartitionController {
            collector,
            config,
            cumulative_moved: 0,
            epochs_run: 0,
        }
    }

    /// The shared trace collector (e.g. to hand to an engine as its observer).
    pub fn collector(&self) -> Arc<AccessTraceCollector> {
        Arc::clone(&self.collector)
    }

    /// Total keys moved across all epochs so far.
    pub fn cumulative_moved(&self) -> usize {
        self.cumulative_moved
    }

    /// Number of epochs that installed (or decided against) a delta.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Runs one epoch against `engine`: observe → repartition → install delta → reset trace.
    ///
    /// Returns `Ok(None)` when the reservoir held no usable co-access samples (nothing to
    /// decide on — the collector keeps accumulating). An epoch whose refinement moves nothing
    /// still installs the (empty) delta so the epoch id advances and the trace window resets.
    ///
    /// # Errors
    /// Propagates [`shp_core::ShpError::InfeasibleBudget`] when the budget cannot even cover
    /// balance repair, and any graph/serving failure. On error the trace is *not* reset, so
    /// no observation is lost.
    pub fn run_epoch(&mut self, engine: &ServingEngine) -> ShpResult<Option<EpochOutcome>> {
        let Some(graph) = self.collector.observed_graph(engine.num_keys())? else {
            return Ok(None);
        };
        let snapshot = engine.current_snapshot();
        let live = Partition::from_assignment(&graph, snapshot.num_shards(), snapshot.assignment())
            .map_err(shp_core::ShpError::from)?;
        let fanout_before = shp_hypergraph::average_fanout(&graph, &live);

        let mut shp = ShpConfig::direct(snapshot.num_shards())
            .with_seed(self.config.seed ^ snapshot.epoch())
            .with_max_iterations(self.config.max_iterations);
        shp.epsilon = self.config.epsilon;
        let incremental = IncrementalConfig {
            movement_penalty: self.config.movement_penalty,
            max_moved_fraction: 1.0,
            max_moves: Some(self.config.migration_budget),
        };
        let result = partition_incremental(&graph, &shp, &incremental, &live)?;
        let fanout_after = shp_hypergraph::average_fanout(&graph, &result.partition);

        let delta = PartitionDelta::between(&snapshot, &result.partition)
            .map_err(shp_core::ShpError::from)?;
        debug_assert!(delta.len() <= self.config.migration_budget);
        let moved_keys = delta.len();
        let epoch = engine
            .install_delta(&delta)
            .map_err(shp_core::ShpError::from)?;
        self.collector.reset();
        self.cumulative_moved += moved_keys;
        self.epochs_run += 1;
        Ok(Some(EpochOutcome {
            epoch,
            moved_keys,
            observed_queries: graph.num_queries(),
            fanout_before,
            fanout_after,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;
    use shp_serving::{EngineConfig, ServingEngine};

    /// `groups` communities of `size` keys; each community's first three members sit on the
    /// *previous* community's shard, so every community query spans two shards (fanout 2)
    /// and the controller has 3·`groups` genuinely profitable moves to find. (A perfectly
    /// scattered placement would be a symmetric local optimum the refiner cannot leave.)
    fn strayed_engine(groups: u32, size: u32) -> ServingEngine {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            b.add_query(members);
        }
        let graph = b.build().unwrap();
        let partition = Partition::from_assignment(
            &graph,
            groups,
            (0..groups * size)
                .map(|v| {
                    let home = v / size;
                    if v % size < 3 {
                        (home + groups - 1) % groups
                    } else {
                        home
                    }
                })
                .collect(),
        )
        .unwrap();
        ServingEngine::new(&partition, EngineConfig::default()).unwrap()
    }

    fn drive(engine: &ServingEngine, groups: u32, size: u32, rounds: usize) {
        for _ in 0..rounds {
            for g in 0..groups {
                let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
                engine.multiget(&members).unwrap();
            }
        }
    }

    #[test]
    fn epoch_observes_traffic_and_improves_fanout_within_budget() {
        let collector = Arc::new(AccessTraceCollector::new(256, 1));
        let engine = strayed_engine(4, 8).with_access_observer(collector.clone());
        drive(&engine, 4, 8, 8);

        let mut controller = RepartitionController::new(
            collector,
            ControllerConfig {
                migration_budget: 32,
                epsilon: 0.5,
                ..Default::default()
            },
        );
        let outcome = controller
            .run_epoch(&engine)
            .unwrap()
            .expect("traffic was observed");
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.moved_keys <= 32);
        assert!(outcome.moved_keys > 0);
        assert!(
            outcome.fanout_after < outcome.fanout_before,
            "fanout {} -> {}",
            outcome.fanout_before,
            outcome.fanout_after
        );
        assert_eq!(engine.current_epoch(), 1);
        assert_eq!(controller.cumulative_moved(), outcome.moved_keys);

        // The trace was reset: an immediate second epoch has nothing to observe.
        assert!(controller.run_epoch(&engine).unwrap().is_none());

        // Serving results are unchanged by the repartition.
        let result = engine.multiget(&[0, 8, 16, 24]).unwrap();
        assert_eq!(result.values.len(), 4);
    }

    #[test]
    fn budget_is_respected_across_consecutive_epochs() {
        let collector = Arc::new(AccessTraceCollector::new(256, 2));
        let engine = strayed_engine(4, 8).with_access_observer(collector.clone());
        let mut controller = RepartitionController::new(
            collector,
            ControllerConfig {
                migration_budget: 6,
                epsilon: 0.5,
                ..Default::default()
            },
        );
        // The tiny budget forces the recovery to span several epochs; each stays in budget.
        let mut last_fanout = f64::INFINITY;
        for round in 0..4 {
            drive(&engine, 4, 8, 8);
            let outcome = controller.run_epoch(&engine).unwrap().expect("traffic");
            assert!(
                outcome.moved_keys <= 6,
                "epoch {round} moved {}",
                outcome.moved_keys
            );
            assert!(outcome.fanout_after <= outcome.fanout_before);
            last_fanout = outcome.fanout_after;
        }
        assert!(last_fanout < 1.5, "no recovery: fanout {last_fanout}");
        assert_eq!(controller.epochs_run(), 4);
        assert!(controller.cumulative_moved() <= 24);
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let collector = Arc::new(AccessTraceCollector::new(64, 3));
        let engine = strayed_engine(2, 4);
        let mut controller = RepartitionController::new(collector, ControllerConfig::default());
        assert!(controller.run_epoch(&engine).unwrap().is_none());
        assert_eq!(engine.current_epoch(), 0);
        assert_eq!(controller.epochs_run(), 0);
    }
}
