//! [`RepartitionController`]: the decision half of the serve→observe→repartition loop.
//!
//! Each controller **epoch** performs the paper's production cycle (Section 5) end to end:
//!
//! 1. drain the [`AccessTraceCollector`](crate::AccessTraceCollector)'s reservoir into the
//!    observed co-access graph;
//! 2. run [`partition_incremental`] seeded from the *live* placement, with the migration
//!    budget enforced deterministically by `IncrementalConfig::max_moves`;
//! 3. diff the result against the live snapshot into a [`PartitionDelta`] (moved keys only)
//!    and install it through [`ServingEngine::install_delta`] — one atomic pointer swap, no
//!    full-map clone, readers in flight undisturbed;
//! 4. reset the collector so the next epoch observes fresh traffic.
//!
//! The controller holds no reference to the engine; callers pass it per epoch, so one
//! controller can drive an engine from any thread (the CLI runs it from a background thread
//! next to the serving clients).

use crate::trace::AccessTraceCollector;
use shp_core::{partition_incremental, IncrementalConfig, ShpConfig, ShpResult};
use shp_hypergraph::Partition;
use shp_serving::{PartitionDelta, ServingEngine};
use std::sync::Arc;

/// Tuning knobs of a [`RepartitionController`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Hard cap on keys moved per epoch (the migration budget of the stability constraint).
    pub migration_budget: usize,
    /// Allowed shard imbalance `ε` for the incremental runs. Needs headroom above the
    /// serving tier's initial balance, since budgeted gain moves are capacity-checked.
    pub epsilon: f64,
    /// Iteration cap for each incremental refinement.
    pub max_iterations: usize,
    /// Gain penalty for moving a key away from its live shard (on top of the hard budget).
    pub movement_penalty: f64,
    /// Seed for the refinement's randomized decisions.
    pub seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            migration_budget: 256,
            epsilon: 0.1,
            max_iterations: 10,
            movement_penalty: 0.0,
            seed: 0xC0_11EC,
        }
    }
}

/// What one controller epoch did.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// Epoch id the delta was installed as.
    pub epoch: u64,
    /// Keys the installed delta moved (`≤ migration_budget` always).
    pub moved_keys: usize,
    /// Multigets the observed graph was built from.
    pub observed_queries: usize,
    /// Average fanout of the observed graph under the *previous* placement.
    pub fanout_before: f64,
    /// Average fanout of the observed graph under the *installed* placement.
    pub fanout_after: f64,
}

/// What one [`RepartitionController::recover_dead_shard`] epoch did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Epoch id the recovery delta was installed as (unchanged when nothing had to move).
    pub epoch: u64,
    /// Keys drained off the dead shard this epoch (`≤ migration_budget` always).
    pub moved_keys: usize,
    /// Keys still assigned to the dead shard after this epoch; call again until 0.
    pub remaining_keys: usize,
}

/// Periodically re-partitions a live [`ServingEngine`] from observed traffic under a hard
/// per-epoch migration budget (see the module docs).
#[derive(Debug)]
pub struct RepartitionController {
    collector: Arc<AccessTraceCollector>,
    config: ControllerConfig,
    /// Cumulative moved keys over every epoch (the migration volume the paper's stability
    /// constraint bounds).
    cumulative_moved: usize,
    epochs_run: usize,
    /// Epochs that failed (e.g. [`shp_core::ShpError::InfeasibleBudget`]) and were skipped by
    /// [`RepartitionController::run_epoch_or_skip`] instead of aborting the serve loop.
    epochs_skipped: usize,
    /// Why the most recent skipped epoch failed.
    last_skip_reason: Option<String>,
}

impl RepartitionController {
    /// Creates a controller draining `collector`. Attach the same collector to the engine
    /// via [`ServingEngine::with_access_observer`].
    pub fn new(collector: Arc<AccessTraceCollector>, config: ControllerConfig) -> Self {
        RepartitionController {
            collector,
            config,
            cumulative_moved: 0,
            epochs_run: 0,
            epochs_skipped: 0,
            last_skip_reason: None,
        }
    }

    /// The shared trace collector (e.g. to hand to an engine as its observer).
    pub fn collector(&self) -> Arc<AccessTraceCollector> {
        Arc::clone(&self.collector)
    }

    /// Total keys moved across all epochs so far.
    pub fn cumulative_moved(&self) -> usize {
        self.cumulative_moved
    }

    /// Number of epochs that installed (or decided against) a delta.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Number of epochs [`RepartitionController::run_epoch_or_skip`] skipped on error.
    pub fn epochs_skipped(&self) -> usize {
        self.epochs_skipped
    }

    /// Why the most recent skipped epoch failed (`None` until a skip happens).
    pub fn last_skip_reason(&self) -> Option<&str> {
        self.last_skip_reason.as_deref()
    }

    /// Runs one epoch against `engine`: observe → repartition → install delta → reset trace.
    ///
    /// Returns `Ok(None)` when the reservoir held no usable co-access samples (nothing to
    /// decide on — the collector keeps accumulating). An epoch whose refinement moves nothing
    /// still installs the (empty) delta so the epoch id advances and the trace window resets.
    ///
    /// # Errors
    /// Propagates [`shp_core::ShpError::InfeasibleBudget`] when the budget cannot even cover
    /// balance repair, and any graph/serving failure. On error the trace is *not* reset, so
    /// no observation is lost.
    pub fn run_epoch(&mut self, engine: &ServingEngine) -> ShpResult<Option<EpochOutcome>> {
        let Some(graph) = self.collector.observed_graph(engine.num_keys())? else {
            return Ok(None);
        };
        let snapshot = engine.current_snapshot();
        let live = Partition::from_assignment(&graph, snapshot.num_shards(), snapshot.assignment())
            .map_err(shp_core::ShpError::from)?;
        let fanout_before = shp_hypergraph::average_fanout(&graph, &live);

        let mut shp = ShpConfig::direct(snapshot.num_shards())
            .with_seed(self.config.seed ^ snapshot.epoch())
            .with_max_iterations(self.config.max_iterations);
        shp.epsilon = self.config.epsilon;
        let incremental = IncrementalConfig {
            movement_penalty: self.config.movement_penalty,
            max_moved_fraction: 1.0,
            max_moves: Some(self.config.migration_budget),
        };
        let result = partition_incremental(&graph, &shp, &incremental, &live)?;
        let fanout_after = shp_hypergraph::average_fanout(&graph, &result.partition);

        let delta = PartitionDelta::between(&snapshot, &result.partition)
            .map_err(shp_core::ShpError::from)?;
        debug_assert!(delta.len() <= self.config.migration_budget);
        let moved_keys = delta.len();
        let epoch = engine
            .install_delta(&delta)
            .map_err(shp_core::ShpError::from)?;
        self.collector.reset();
        self.cumulative_moved += moved_keys;
        self.epochs_run += 1;
        Ok(Some(EpochOutcome {
            epoch,
            moved_keys,
            observed_queries: graph.num_queries(),
            fanout_before,
            fanout_after,
        }))
    }

    /// [`RepartitionController::run_epoch`] for long-lived serve loops: an epoch that fails —
    /// typically [`shp_core::ShpError::InfeasibleBudget`] when live imbalance outgrew the
    /// migration budget — is recorded as skipped (see
    /// [`epochs_skipped`](RepartitionController::epochs_skipped) /
    /// [`last_skip_reason`](RepartitionController::last_skip_reason)) and serving continues;
    /// the process never aborts. The trace is kept on a skip, so the next attempt decides on
    /// the accumulated observations.
    pub fn run_epoch_or_skip(&mut self, engine: &ServingEngine) -> Option<EpochOutcome> {
        match self.run_epoch(engine) {
            Ok(outcome) => outcome,
            Err(err) => {
                self.epochs_skipped += 1;
                self.last_skip_reason = Some(err.to_string());
                None
            }
        }
    }

    /// Drains up to `migration_budget` keys off `dead` onto the live shards, least-loaded
    /// first, and installs the move as one delta epoch — the paper's failure-reactive
    /// assignment change, bounded by the same stability constraint as regular epochs.
    ///
    /// Keys move in maximal runs of consecutive ids (consecutive keys are overwhelmingly
    /// co-accessed in the synthetic workloads), keeping each drained community on one target
    /// shard so the post-recovery fanout lands near its pre-incident value. Call repeatedly
    /// until [`RecoveryOutcome::remaining_keys`] is 0; an already-empty dead shard is a no-op
    /// that installs nothing.
    ///
    /// # Errors
    /// Returns [`shp_core::ShpError::InvalidArgument`] when `dead` is outside the live
    /// placement or the placement has no other shard to drain onto, and propagates install
    /// failures.
    pub fn recover_dead_shard(
        &mut self,
        engine: &ServingEngine,
        dead: u32,
    ) -> ShpResult<RecoveryOutcome> {
        let snapshot = engine.current_snapshot();
        let n = snapshot.num_shards();
        if dead >= n {
            return Err(shp_core::ShpError::InvalidArgument(format!(
                "cannot recover shard {dead}: placement has {n} shards"
            )));
        }
        if n < 2 {
            return Err(shp_core::ShpError::InvalidArgument(
                "cannot recover a dead shard: no live shard to drain onto".to_string(),
            ));
        }
        let assignment = snapshot.assignment();
        let mut loads = vec![0usize; n as usize];
        for &shard in &assignment {
            loads[shard as usize] += 1;
        }
        let dead_keys: Vec<u32> = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &shard)| shard == dead)
            .map(|(key, _)| key as u32)
            .collect();
        if dead_keys.is_empty() {
            return Ok(RecoveryOutcome {
                epoch: snapshot.epoch(),
                moved_keys: 0,
                remaining_keys: 0,
            });
        }
        let budget = self.config.migration_budget;
        let mut moves: Vec<(u32, u32)> = Vec::new();
        let mut start = 0usize;
        while start < dead_keys.len() && moves.len() < budget {
            let mut end = start + 1;
            while end < dead_keys.len() && dead_keys[end] == dead_keys[end - 1] + 1 {
                end += 1;
            }
            let take = (end - start).min(budget - moves.len());
            let target = (0..n)
                .filter(|&shard| shard != dead)
                .min_by_key(|&shard| (loads[shard as usize], shard))
                .expect("placement has a live shard");
            for &key in &dead_keys[start..start + take] {
                moves.push((key, target));
            }
            loads[target as usize] += take;
            loads[dead as usize] -= take;
            start = end;
        }
        let moved_keys = moves.len();
        let remaining_keys = dead_keys.len() - moved_keys;
        let delta = PartitionDelta::new(snapshot.epoch(), moves);
        let epoch = engine
            .install_delta(&delta)
            .map_err(shp_core::ShpError::from)?;
        self.cumulative_moved += moved_keys;
        self.epochs_run += 1;
        Ok(RecoveryOutcome {
            epoch,
            moved_keys,
            remaining_keys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;
    use shp_serving::{EngineConfig, ServingEngine};

    /// `groups` communities of `size` keys; each community's first three members sit on the
    /// *previous* community's shard, so every community query spans two shards (fanout 2)
    /// and the controller has 3·`groups` genuinely profitable moves to find. (A perfectly
    /// scattered placement would be a symmetric local optimum the refiner cannot leave.)
    fn strayed_engine(groups: u32, size: u32) -> ServingEngine {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            b.add_query(members);
        }
        let graph = b.build().unwrap();
        let partition = Partition::from_assignment(
            &graph,
            groups,
            (0..groups * size)
                .map(|v| {
                    let home = v / size;
                    if v % size < 3 {
                        (home + groups - 1) % groups
                    } else {
                        home
                    }
                })
                .collect(),
        )
        .unwrap();
        ServingEngine::new(&partition, EngineConfig::default()).unwrap()
    }

    fn drive(engine: &ServingEngine, groups: u32, size: u32, rounds: usize) {
        for _ in 0..rounds {
            for g in 0..groups {
                let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
                engine.multiget(&members).unwrap();
            }
        }
    }

    #[test]
    fn epoch_observes_traffic_and_improves_fanout_within_budget() {
        let collector = Arc::new(AccessTraceCollector::new(256, 1));
        let engine = strayed_engine(4, 8).with_access_observer(collector.clone());
        drive(&engine, 4, 8, 8);

        let mut controller = RepartitionController::new(
            collector,
            ControllerConfig {
                migration_budget: 32,
                epsilon: 0.5,
                ..Default::default()
            },
        );
        let outcome = controller
            .run_epoch(&engine)
            .unwrap()
            .expect("traffic was observed");
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.moved_keys <= 32);
        assert!(outcome.moved_keys > 0);
        assert!(
            outcome.fanout_after < outcome.fanout_before,
            "fanout {} -> {}",
            outcome.fanout_before,
            outcome.fanout_after
        );
        assert_eq!(engine.current_epoch(), 1);
        assert_eq!(controller.cumulative_moved(), outcome.moved_keys);

        // The trace was reset: an immediate second epoch has nothing to observe.
        assert!(controller.run_epoch(&engine).unwrap().is_none());

        // Serving results are unchanged by the repartition.
        let result = engine.multiget(&[0, 8, 16, 24]).unwrap();
        assert_eq!(result.values.len(), 4);
    }

    #[test]
    fn budget_is_respected_across_consecutive_epochs() {
        let collector = Arc::new(AccessTraceCollector::new(256, 2));
        let engine = strayed_engine(4, 8).with_access_observer(collector.clone());
        let mut controller = RepartitionController::new(
            collector,
            ControllerConfig {
                migration_budget: 6,
                epsilon: 0.5,
                ..Default::default()
            },
        );
        // The tiny budget forces the recovery to span several epochs; each stays in budget.
        let mut last_fanout = f64::INFINITY;
        for round in 0..4 {
            drive(&engine, 4, 8, 8);
            let outcome = controller.run_epoch(&engine).unwrap().expect("traffic");
            assert!(
                outcome.moved_keys <= 6,
                "epoch {round} moved {}",
                outcome.moved_keys
            );
            assert!(outcome.fanout_after <= outcome.fanout_before);
            last_fanout = outcome.fanout_after;
        }
        assert!(last_fanout < 1.5, "no recovery: fanout {last_fanout}");
        assert_eq!(controller.epochs_run(), 4);
        assert!(controller.cumulative_moved() <= 24);
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let collector = Arc::new(AccessTraceCollector::new(64, 3));
        let engine = strayed_engine(2, 4);
        let mut controller = RepartitionController::new(collector, ControllerConfig::default());
        assert!(controller.run_epoch(&engine).unwrap().is_none());
        assert_eq!(engine.current_epoch(), 0);
        assert_eq!(controller.epochs_run(), 0);
    }

    /// A placement so lopsided that balance repair alone needs more moves than the budget
    /// allows: all 16 keys on shard 0 of a 2-shard placement with a tight epsilon.
    fn lopsided_engine() -> ServingEngine {
        let mut b = GraphBuilder::new();
        for k in 0..16u32 {
            b.add_query([k, (k + 1) % 16]);
        }
        let graph = b.build().unwrap();
        let partition = Partition::from_assignment(&graph, 2, vec![0; 16]).unwrap();
        ServingEngine::new(&partition, EngineConfig::default()).unwrap()
    }

    #[test]
    fn infeasible_budget_epoch_is_skipped_and_serving_continues() {
        let collector = Arc::new(AccessTraceCollector::new(256, 4));
        let engine = lopsided_engine().with_access_observer(collector.clone());
        for k in 0..16u32 {
            engine.multiget(&[k, (k + 1) % 16]).unwrap();
        }
        // Balance repair needs ~7 moves to bring shard 0 under 16/2 · (1 + ε); budget 1
        // cannot cover it, so the plain epoch errors with InfeasibleBudget.
        let mut controller = RepartitionController::new(
            collector,
            ControllerConfig {
                migration_budget: 1,
                epsilon: 0.01,
                ..Default::default()
            },
        );
        assert!(matches!(
            controller.run_epoch(&engine),
            Err(shp_core::ShpError::InfeasibleBudget { .. })
        ));
        // The serve-loop entry point skips instead of propagating: the epoch is recorded,
        // the reason is kept, and the engine still serves on the unchanged placement.
        let outcome = controller.run_epoch_or_skip(&engine);
        assert!(outcome.is_none());
        assert_eq!(controller.epochs_skipped(), 1);
        assert!(
            controller
                .last_skip_reason()
                .expect("skip reason recorded")
                .contains("budget"),
            "reason: {:?}",
            controller.last_skip_reason()
        );
        assert_eq!(engine.current_epoch(), 0);
        assert_eq!(engine.multiget(&[0, 1, 2]).unwrap().values.len(), 3);
        // The trace survived both failures: a controller with a feasible budget recovers
        // from the very same observations.
        let mut feasible = RepartitionController::new(
            controller.collector(),
            ControllerConfig {
                migration_budget: 16,
                epsilon: 0.1,
                ..Default::default()
            },
        );
        let outcome = feasible
            .run_epoch_or_skip(&engine)
            .expect("feasible epoch installs");
        assert!(outcome.moved_keys > 0);
        assert_eq!(engine.current_epoch(), 1);
        assert_eq!(feasible.epochs_skipped(), 0);
    }

    #[test]
    fn recover_dead_shard_drains_within_budget_and_preserves_locality() {
        // 4 aligned communities of 8 keys on 4 shards; shard 1 (keys 8..16) dies.
        let mut b = GraphBuilder::new();
        for g in 0..4u32 {
            let members: Vec<u32> = (0..8).map(|i| g * 8 + i).collect();
            b.add_query(members);
        }
        let graph = b.build().unwrap();
        let partition =
            Partition::from_assignment(&graph, 4, (0..32u32).map(|v| v / 8).collect()).unwrap();
        let engine = ServingEngine::new(&partition, EngineConfig::default()).unwrap();
        let collector = Arc::new(AccessTraceCollector::new(64, 5));
        let mut controller = RepartitionController::new(
            collector,
            ControllerConfig {
                migration_budget: 5,
                ..Default::default()
            },
        );
        // Budget 5 < 8 dead keys: the drain takes two epochs, each within budget.
        let first = controller.recover_dead_shard(&engine, 1).unwrap();
        assert_eq!(first.moved_keys, 5);
        assert_eq!(first.remaining_keys, 3);
        assert_eq!(first.epoch, 1);
        let second = controller.recover_dead_shard(&engine, 1).unwrap();
        assert_eq!(second.moved_keys, 3);
        assert_eq!(second.remaining_keys, 0);
        // Shard 1 is empty; every key still resolves and the community stays whole enough
        // that its query spans at most the two shards the split run landed on.
        let snapshot = engine.current_snapshot();
        assert!(snapshot.keys_by_shard()[1].is_empty());
        let result = engine.multiget(&[8, 9, 10, 11, 12, 13, 14, 15]).unwrap();
        assert_eq!(result.values.len(), 8);
        assert!(result.fanout <= 2);
        // A third call is a no-op that does not advance the epoch.
        let third = controller.recover_dead_shard(&engine, 1).unwrap();
        assert_eq!(third.moved_keys, 0);
        assert_eq!(third.remaining_keys, 0);
        assert_eq!(engine.current_epoch(), 2);
        assert_eq!(controller.cumulative_moved(), 8);
    }

    #[test]
    fn recover_dead_shard_rejects_invalid_targets() {
        let engine = strayed_engine(2, 4);
        let collector = Arc::new(AccessTraceCollector::new(64, 6));
        let mut controller = RepartitionController::new(collector, ControllerConfig::default());
        assert!(matches!(
            controller.recover_dead_shard(&engine, 9),
            Err(shp_core::ShpError::InvalidArgument(_))
        ));
    }
}
