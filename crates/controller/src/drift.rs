//! The hours-compressed drift scenario: key popularity drifts across phases while a live
//! engine serves, and the controller chases it under a hard migration budget.
//!
//! ## The workload
//!
//! `communities` contiguous blocks of `community_size` keys are co-accessed: every multiget
//! samples `keys_per_query` distinct members of one community. Each **phase** rotates the
//! whole community structure by `shift_per_phase` keys — the synthetic analogue of interest
//! drift in a social workload: keys that used to be fetched together stop being fetched
//! together, and a placement that was fanout-optimal yesterday straddles shard boundaries
//! today. A never-repartition baseline decays phase over phase; a controller-driven run
//! observes the new co-access structure and pulls fanout back down, moving at most
//! `migration_budget` keys per epoch.
//!
//! The scenario is deterministic for a given config (single serving thread, seeded RNG,
//! deterministic reservoir), which lets CI assert the headline numbers instead of just
//! running them.

use crate::controller::{ControllerConfig, EpochOutcome, RepartitionController};
use crate::trace::AccessTraceCollector;
use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_core::{ShpError, ShpResult};
use shp_hypergraph::{GraphBuilder, Partition};
use shp_serving::{EngineConfig, ServingEngine};
use std::sync::Arc;

/// Configuration of a [`run_drift_scenario`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Number of co-access communities. Must be a multiple of `shards`.
    pub communities: u32,
    /// Keys per community (`communities * community_size` keys total).
    pub community_size: u32,
    /// Serving shards.
    pub shards: u32,
    /// Popularity phases (phase 0 matches the initial placement; later phases drift).
    pub phases: usize,
    /// Multigets served per phase.
    pub queries_per_phase: usize,
    /// Distinct keys per multiget.
    pub keys_per_query: usize,
    /// Keys the community structure rotates by at each phase boundary.
    pub shift_per_phase: u32,
    /// Controller cadence: one epoch every this many queries (0 disables the controller —
    /// the never-repartition baseline).
    pub repartition_every: usize,
    /// Hard cap on keys moved per controller epoch.
    pub migration_budget: usize,
    /// Reservoir slots of the trace collector.
    pub sample_slots: usize,
    /// Seed for the workload RNG, engine, and controller.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            communities: 8,
            community_size: 64,
            shards: 4,
            phases: 3,
            queries_per_phase: 1_200,
            keys_per_query: 6,
            shift_per_phase: 24,
            repartition_every: 300,
            migration_budget: 96,
            sample_slots: 512,
            seed: 0xD21F7,
        }
    }
}

impl DriftConfig {
    /// Total keys the scenario serves.
    pub fn num_keys(&self) -> usize {
        (self.communities * self.community_size) as usize
    }

    /// A smaller, faster variant for CI smoke runs (same structure, ~4× less work).
    pub fn quick(mut self) -> Self {
        self.community_size = 32;
        self.queries_per_phase = 600;
        self.sample_slots = 256;
        self.migration_budget = 64;
        self.repartition_every = 150;
        self.shift_per_phase = 12;
        self
    }
}

/// Per-phase serving numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase index (0-based).
    pub phase: usize,
    /// Mean fanout over the phase's multigets.
    pub mean_fanout: f64,
    /// p99 latency (units of the latency model's `t`).
    pub p99: f64,
    /// p999 latency.
    pub p999: f64,
    /// Controller epochs that ran during this phase.
    pub epochs: Vec<EpochOutcome>,
}

/// The full scenario result.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// One entry per phase, in order.
    pub phases: Vec<PhaseStats>,
    /// Keys moved across all epochs (the cumulative migration volume).
    pub cumulative_moved: usize,
    /// The configured per-epoch budget, echoed for assertions.
    pub migration_budget: usize,
    /// Largest single-epoch move count observed (`≤ migration_budget` must hold).
    pub max_epoch_moved: usize,
}

impl DriftReport {
    /// Mean fanout of the final phase — the headline recovery metric.
    pub fn final_phase_fanout(&self) -> f64 {
        self.phases.last().map_or(0.0, |p| p.mean_fanout)
    }
}

/// Community of `key` during `phase`: the block structure rotated by `phase * shift` keys.
#[cfg(test)]
fn community_of(config: &DriftConfig, key: u32, phase: usize) -> u32 {
    let num_keys = config.num_keys() as u32;
    let rotated = (key + num_keys - (phase as u32 * config.shift_per_phase) % num_keys) % num_keys;
    rotated / config.community_size
}

/// `index`-th member of `community` during `phase` (inverse of `community_of`).
fn member_of(config: &DriftConfig, community: u32, index: u32, phase: usize) -> u32 {
    let num_keys = config.num_keys() as u32;
    (community * config.community_size + index + phase as u32 * config.shift_per_phase) % num_keys
}

/// Runs the drift scenario; with `repartition_every == 0` this is the never-repartition
/// baseline, otherwise the controller closes the loop at that cadence.
///
/// # Errors
/// Propagates configuration, serving, and partitioning failures.
pub fn run_drift_scenario(config: &DriftConfig) -> ShpResult<DriftReport> {
    if config.communities == 0 || !config.communities.is_multiple_of(config.shards) {
        return Err(ShpError::InvalidConfig(format!(
            "communities ({}) must be a positive multiple of shards ({})",
            config.communities, config.shards
        )));
    }
    if config.keys_per_query as u32 > config.community_size {
        return Err(ShpError::InvalidConfig(format!(
            "keys_per_query ({}) exceeds community_size ({})",
            config.keys_per_query, config.community_size
        )));
    }
    let num_keys = config.num_keys();

    // Initial placement: aligned with phase 0 — whole communities per shard.
    let mut builder = GraphBuilder::new();
    for c in 0..config.communities {
        builder.add_query((0..config.community_size).map(|i| c * config.community_size + i));
    }
    let bootstrap_graph = builder.build()?;
    let per_shard = config.communities / config.shards;
    let initial = Partition::from_assignment(
        &bootstrap_graph,
        config.shards,
        (0..num_keys as u32)
            .map(|key| (key / config.community_size) / per_shard)
            .collect(),
    )?;

    let collector = Arc::new(AccessTraceCollector::new(config.sample_slots, config.seed));
    let engine_config = EngineConfig {
        seed: config.seed,
        ..EngineConfig::default()
    };
    let engine = if config.repartition_every > 0 {
        ServingEngine::new(&initial, engine_config)
            .map_err(ShpError::from)?
            .with_access_observer(collector.clone())
    } else {
        ServingEngine::new(&initial, engine_config).map_err(ShpError::from)?
    };
    let mut controller = RepartitionController::new(
        collector,
        ControllerConfig {
            migration_budget: config.migration_budget,
            seed: config.seed,
            ..ControllerConfig::default()
        },
    );

    let mut rng = Pcg64::seed_from_u64(config.seed ^ 0xD21F);
    let mut keys = vec![0u32; config.keys_per_query];
    let mut phases = Vec::with_capacity(config.phases);
    let mut cumulative_moved = 0usize;
    let mut max_epoch_moved = 0usize;

    for phase in 0..config.phases {
        engine.reset_metrics();
        let mut epochs = Vec::new();
        for query in 0..config.queries_per_phase {
            // One multiget: `keys_per_query` distinct members of one community, under this
            // phase's rotated structure.
            let community = rng.gen_range(0..config.communities);
            let stride = config.community_size / config.keys_per_query as u32;
            let offset = rng.gen_range(0..config.community_size);
            for (slot, key) in keys.iter_mut().enumerate() {
                let index = (offset + slot as u32 * stride) % config.community_size;
                *key = member_of(config, community, index, phase);
            }
            engine.multiget(&keys).map_err(ShpError::from)?;

            if config.repartition_every > 0 && (query + 1) % config.repartition_every == 0 {
                if let Some(outcome) = controller.run_epoch(&engine)? {
                    cumulative_moved += outcome.moved_keys;
                    max_epoch_moved = max_epoch_moved.max(outcome.moved_keys);
                    epochs.push(outcome);
                }
            }
        }
        let report = engine.report();
        phases.push(PhaseStats {
            phase,
            mean_fanout: report.mean_fanout,
            p99: report.p99,
            p999: report.p999,
            epochs,
        });
    }

    Ok(DriftReport {
        phases,
        cumulative_moved,
        migration_budget: config.migration_budget,
        max_epoch_moved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DriftConfig {
        DriftConfig {
            communities: 4,
            community_size: 16,
            shards: 4,
            phases: 2,
            queries_per_phase: 240,
            keys_per_query: 4,
            shift_per_phase: 6,
            repartition_every: 60,
            migration_budget: 24,
            sample_slots: 128,
            seed: 42,
        }
    }

    #[test]
    fn community_rotation_round_trips() {
        let config = tiny();
        for phase in 0..3 {
            for key in 0..config.num_keys() as u32 {
                let c = community_of(&config, key, phase);
                assert!(c < config.communities);
            }
            for c in 0..config.communities {
                for i in 0..config.community_size {
                    let key = member_of(&config, c, i, phase);
                    assert_eq!(community_of(&config, key, phase), c);
                }
            }
        }
    }

    #[test]
    fn controller_beats_the_never_repartition_baseline() {
        let config = tiny();
        let with = run_drift_scenario(&config).unwrap();
        let without = run_drift_scenario(&DriftConfig {
            repartition_every: 0,
            ..config.clone()
        })
        .unwrap();

        // Phase 0 is aligned for both; after drift the baseline decays and the controller
        // recovers.
        assert!(
            with.final_phase_fanout() < without.final_phase_fanout(),
            "controller {} vs baseline {}",
            with.final_phase_fanout(),
            without.final_phase_fanout()
        );
        assert!(without.cumulative_moved == 0);
        assert!(with.cumulative_moved > 0);
        assert!(
            with.max_epoch_moved <= config.migration_budget,
            "max epoch moved {} over budget {}",
            with.max_epoch_moved,
            config.migration_budget
        );
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = run_drift_scenario(&tiny()).unwrap();
        let b = run_drift_scenario(&tiny()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(run_drift_scenario(&DriftConfig {
            communities: 3,
            shards: 4,
            ..tiny()
        })
        .is_err());
        assert!(run_drift_scenario(&DriftConfig {
            keys_per_query: 99,
            ..tiny()
        })
        .is_err());
    }
}
