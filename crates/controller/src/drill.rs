//! The kill → degrade → recover failure drill: a replicated engine serves through a scripted
//! shard crash while the controller drains the dead shard under a hard migration budget.
//!
//! ## The incident script
//!
//! Four phases of `queries_per_phase` multigets run against one replicated engine
//! (`replication ≥ 2`), all driven by a deterministic [`FaultPlan`] whose clock is the
//! engine's query tick:
//!
//! 1. **baseline** — every shard healthy; records the pre-incident fanout and p99.
//! 2. **incident** — `dead_shard` crashes at the phase boundary and `slow_shard`
//!    serves `slow_factor`× slower for the whole phase. Failover routing keeps every
//!    query complete (availability stays at 1.0 with `replication = 2`), at the cost of
//!    retries against the dead shard and hedged duplicates against the slow one.
//! 3. **recovery** — the controller drains the dead shard with
//!    [`RepartitionController::recover_dead_shard`], moving at most `migration_budget`
//!    keys per epoch, every `recover_every` queries, until the shard holds nothing.
//! 4. **post** — the dead shard is still down but empty, so no query touches it:
//!    retries stop and fanout returns to the baseline.
//!
//! A separate **degraded leg** replays the baseline and incident phases on an
//! unreplicated (`replication = 1`) engine with the same fault plan: with no replica to
//! fail over to, every query touching the dead shard comes back as a typed partial
//! result. The leg cross-checks the engine's `missing_keys` against the exact set of
//! requested keys placed on the dead shard — graceful degradation must be *precise*,
//! not just non-crashing.
//!
//! Every returned value (on both legs) is verified against
//! [`value_of`](shp_serving::value_of); `wrong_values` in the report must be zero — a
//! failover or hedge must never serve a stale or corrupt record.
//!
//! The whole drill is deterministic for a given config (single serving thread, seeded
//! RNG, tick-scripted faults), so CI asserts the headline numbers instead of just
//! running them.

use crate::controller::{ControllerConfig, RepartitionController};
use crate::trace::AccessTraceCollector;
use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_core::{ShpError, ShpResult};
use shp_faults::{FaultInjector, FaultPlan};
use shp_hypergraph::{GraphBuilder, Partition};
use shp_serving::{value_of, EngineConfig, ServingEngine};
use shp_telemetry::Snapshot;
use std::sync::Arc;

/// Configuration of a [`run_drill_scenario`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillConfig {
    /// Number of co-access communities. Must be a positive multiple of `shards`.
    pub communities: u32,
    /// Keys per community (`communities * community_size` keys total).
    pub community_size: u32,
    /// Serving shards. At least 2 (a drill needs a survivor).
    pub shards: u32,
    /// Replica chain length of the main engine (`≥ 2` for the availability story).
    pub replication: u32,
    /// Multigets served per phase (also the fault plan's phase length in query ticks).
    pub queries_per_phase: usize,
    /// Distinct keys per multiget.
    pub keys_per_query: usize,
    /// Shard that crashes at the start of the incident phase and stays down.
    pub dead_shard: u32,
    /// Shard that serves slowly during the incident phase (must differ from `dead_shard`).
    pub slow_shard: u32,
    /// Latency multiplier of `slow_shard` during the incident phase (`> 1`).
    pub slow_factor: f64,
    /// Hard cap on keys moved per recovery epoch.
    pub migration_budget: usize,
    /// Recovery cadence: one `recover_dead_shard` epoch every this many queries.
    pub recover_every: usize,
    /// Seed for the workload RNG, engine, fault injector, and controller.
    pub seed: u64,
}

impl Default for DrillConfig {
    fn default() -> Self {
        DrillConfig {
            communities: 8,
            community_size: 64,
            shards: 4,
            replication: 2,
            queries_per_phase: 1_200,
            keys_per_query: 6,
            dead_shard: 1,
            slow_shard: 2,
            slow_factor: 4.0,
            migration_budget: 64,
            recover_every: 150,
            seed: 0xD817,
        }
    }
}

impl DrillConfig {
    /// Total keys the scenario serves.
    pub fn num_keys(&self) -> usize {
        (self.communities * self.community_size) as usize
    }

    /// A smaller, faster variant for CI smoke runs (same structure, ~4× less work).
    pub fn quick(mut self) -> Self {
        self.community_size = 32;
        self.queries_per_phase = 400;
        self.migration_budget = 32;
        self.recover_every = 100;
        self
    }
}

/// Per-phase serving numbers of the replicated leg.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillPhase {
    /// Phase index (0-based).
    pub phase: usize,
    /// Phase name: `baseline`, `incident`, `recovery`, or `post`.
    pub name: String,
    /// Mean fanout over the phase's multigets.
    pub mean_fanout: f64,
    /// p99 latency (units of the latency model's `t`).
    pub p99: f64,
    /// Fraction of the phase's queries that came back complete.
    pub availability: f64,
    /// Queries that came back with at least one unreachable key.
    pub degraded_queries: u64,
    /// Failover attempts past each batch's primary.
    pub retries: u64,
    /// Hedged duplicates that beat the straggler they were racing.
    pub hedges_won: u64,
}

/// The full drill result. `PartialEq` over every field makes whole-report determinism
/// assertions possible.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillReport {
    /// One entry per phase, in order: baseline, incident, recovery, post.
    pub phases: Vec<DrillPhase>,
    /// Returned values that disagreed with [`value_of`] anywhere in the drill. Must be 0:
    /// failover and hedging may degrade availability, never correctness.
    pub wrong_values: usize,
    /// Availability of the unreplicated leg over the incident phase (expected well below
    /// 1.0 — this is what the drill's replication buys).
    pub degraded_leg_availability: f64,
    /// Degraded queries of the unreplicated leg over the incident phase.
    pub degraded_leg_degraded: u64,
    /// Leg queries whose typed `missing_keys` differed from the exact set of requested
    /// keys placed on the dead shard. Must be 0: partial results are precise.
    pub missing_mismatches: usize,
    /// Recovery epochs that moved at least one key.
    pub recovery_epochs: usize,
    /// Keys drained off the dead shard across all recovery epochs.
    pub recovery_moved: usize,
    /// Largest single-epoch move count (`≤ migration_budget` must hold).
    pub max_epoch_moved: usize,
    /// Keys still on the dead shard after the recovery phase. Must be 0.
    pub recovery_remaining: usize,
    /// The configured per-epoch budget, echoed for assertions.
    pub migration_budget: usize,
}

impl DrillReport {
    /// Mean fanout of the healthy baseline phase.
    pub fn baseline_fanout(&self) -> f64 {
        self.phases.first().map_or(0.0, |p| p.mean_fanout)
    }

    /// Mean fanout of the post-recovery phase — must return to within a few percent of
    /// [`baseline_fanout`](Self::baseline_fanout).
    pub fn post_fanout(&self) -> f64 {
        self.phases.last().map_or(0.0, |p| p.mean_fanout)
    }

    /// Worst per-phase availability of the replicated leg across the incident and
    /// recovery phases — the headline "≥ 0.99 while a primary is down" number.
    pub fn incident_availability(&self) -> f64 {
        self.phases
            .iter()
            .skip(1)
            .take(2)
            .map(|p| p.availability)
            .fold(1.0, f64::min)
    }
}

fn validate(config: &DrillConfig) -> ShpResult<()> {
    if config.shards < 2 {
        return Err(ShpError::InvalidConfig(format!(
            "a drill needs at least 2 shards (got {})",
            config.shards
        )));
    }
    if config.communities == 0 || !config.communities.is_multiple_of(config.shards) {
        return Err(ShpError::InvalidConfig(format!(
            "communities ({}) must be a positive multiple of shards ({})",
            config.communities, config.shards
        )));
    }
    if config.keys_per_query == 0 || config.keys_per_query as u32 > config.community_size {
        return Err(ShpError::InvalidConfig(format!(
            "keys_per_query ({}) must be in 1..={}",
            config.keys_per_query, config.community_size
        )));
    }
    if config.replication < 2 {
        return Err(ShpError::InvalidConfig(format!(
            "drill replication must be >= 2 to survive the crash (got {})",
            config.replication
        )));
    }
    if config.dead_shard >= config.shards || config.slow_shard >= config.shards {
        return Err(ShpError::InvalidConfig(format!(
            "dead_shard ({}) and slow_shard ({}) must be < shards ({})",
            config.dead_shard, config.slow_shard, config.shards
        )));
    }
    if config.dead_shard == config.slow_shard {
        return Err(ShpError::InvalidConfig(
            "dead_shard and slow_shard must differ (a dead shard cannot be slow)".to_string(),
        ));
    }
    if config.slow_factor <= 1.0 {
        return Err(ShpError::InvalidConfig(format!(
            "slow_factor must exceed 1.0 (got {})",
            config.slow_factor
        )));
    }
    if config.queries_per_phase == 0 || config.recover_every == 0 {
        return Err(ShpError::InvalidConfig(
            "queries_per_phase and recover_every must be positive".to_string(),
        ));
    }
    Ok(())
}

/// Fills `keys` with `keys_per_query` distinct members of one community.
fn sample_query(config: &DrillConfig, rng: &mut Pcg64, keys: &mut [u32]) {
    let community = rng.gen_range(0..config.communities);
    let stride = config.community_size / config.keys_per_query as u32;
    let offset = rng.gen_range(0..config.community_size);
    for (slot, key) in keys.iter_mut().enumerate() {
        let index = (offset + slot as u32 * stride) % config.community_size;
        *key = community * config.community_size + index;
    }
}

/// The initial placement: whole communities per shard, aligned with the workload.
fn initial_partition(config: &DrillConfig) -> ShpResult<Partition> {
    let mut builder = GraphBuilder::new();
    for c in 0..config.communities {
        builder.add_query((0..config.community_size).map(|i| c * config.community_size + i));
    }
    let bootstrap_graph = builder.build()?;
    let per_shard = config.communities / config.shards;
    Ok(Partition::from_assignment(
        &bootstrap_graph,
        config.shards,
        (0..config.num_keys() as u32)
            .map(|key| (key / config.community_size) / per_shard)
            .collect(),
    )?)
}

fn run_drill(config: &DrillConfig) -> ShpResult<(DrillReport, Snapshot)> {
    validate(config)?;
    let initial = initial_partition(config)?;
    let qpp = config.queries_per_phase as u64;
    // The fault clock is the engine's query tick: with the cache disabled (the default)
    // every multiget advances it by exactly one, so phase boundaries land on multiples
    // of `queries_per_phase`.
    let plan = FaultPlan::new().crash(config.dead_shard, qpp).slow(
        config.slow_shard,
        qpp,
        2 * qpp,
        config.slow_factor,
    );

    let injector = Arc::new(FaultInjector::new(plan.clone(), config.seed));
    let engine = ServingEngine::new(
        &initial,
        EngineConfig {
            seed: config.seed,
            replication: config.replication,
            ..EngineConfig::default()
        },
    )
    .map_err(ShpError::from)?
    .with_fault_injector(injector);
    // `recover_dead_shard` works off the live placement, not traces, so a token
    // collector satisfies the controller's constructor.
    let collector = Arc::new(AccessTraceCollector::new(64, config.seed));
    let mut controller = RepartitionController::new(
        collector,
        ControllerConfig {
            migration_budget: config.migration_budget,
            seed: config.seed,
            ..ControllerConfig::default()
        },
    );

    let mut rng = Pcg64::seed_from_u64(config.seed ^ 0xD811);
    let mut keys = vec![0u32; config.keys_per_query];
    let mut wrong_values = 0usize;
    let mut phases = Vec::with_capacity(4);
    let mut telemetry = Snapshot::new();
    let mut recovery_epochs = 0usize;
    let mut recovery_moved = 0usize;
    let mut max_epoch_moved = 0usize;
    let mut recovery_remaining = usize::MAX;

    for (phase, name) in ["baseline", "incident", "recovery", "post"]
        .into_iter()
        .enumerate()
    {
        engine.reset_metrics();
        for query in 0..config.queries_per_phase {
            sample_query(config, &mut rng, &mut keys);
            let result = engine.multiget(&keys).map_err(ShpError::from)?;
            for &(key, value) in &result.values {
                if value != value_of(key) {
                    wrong_values += 1;
                }
            }
            if name == "recovery"
                && recovery_remaining != 0
                && (query + 1) % config.recover_every == 0
            {
                let outcome = controller.recover_dead_shard(&engine, config.dead_shard)?;
                if outcome.moved_keys > 0 {
                    recovery_epochs += 1;
                    recovery_moved += outcome.moved_keys;
                    max_epoch_moved = max_epoch_moved.max(outcome.moved_keys);
                }
                recovery_remaining = outcome.remaining_keys;
            }
        }
        if name == "recovery" {
            // Drain whatever the cadence left behind so the post phase starts clean.
            while recovery_remaining != 0 {
                let outcome = controller.recover_dead_shard(&engine, config.dead_shard)?;
                if outcome.moved_keys > 0 {
                    recovery_epochs += 1;
                    recovery_moved += outcome.moved_keys;
                    max_epoch_moved = max_epoch_moved.max(outcome.moved_keys);
                }
                if outcome.remaining_keys == recovery_remaining {
                    break; // No progress possible; report the stall instead of spinning.
                }
                recovery_remaining = outcome.remaining_keys;
            }
        }
        let report = engine.report();
        phases.push(DrillPhase {
            phase,
            name: name.to_string(),
            mean_fanout: report.mean_fanout,
            p99: report.p99,
            availability: report.availability,
            degraded_queries: report.degraded_queries,
            retries: report.retries,
            hedges_won: report.hedges_won,
        });
        merge_snapshot(
            &mut telemetry,
            engine.telemetry_snapshot(&format!("serving/drill/{name}")),
        );
    }

    // The degraded leg: same plan and seed, no replicas — typed partial results instead
    // of failover. Replays the baseline phase first so the fault clock lines up.
    let leg_injector = Arc::new(FaultInjector::new(plan, config.seed));
    let leg = ServingEngine::new(
        &initial,
        EngineConfig {
            seed: config.seed,
            replication: 1,
            ..EngineConfig::default()
        },
    )
    .map_err(ShpError::from)?
    .with_fault_injector(leg_injector);
    let leg_snapshot = leg.current_snapshot();
    let mut leg_rng = Pcg64::seed_from_u64(config.seed ^ 0xDE6);
    let mut missing_mismatches = 0usize;
    for _ in 0..config.queries_per_phase {
        sample_query(config, &mut leg_rng, &mut keys);
        let result = leg.multiget(&keys).map_err(ShpError::from)?;
        if !result.missing_keys.is_empty() {
            missing_mismatches += 1; // Nothing is down yet; any miss is a mismatch.
        }
    }
    leg.reset_metrics();
    for _ in 0..config.queries_per_phase {
        sample_query(config, &mut leg_rng, &mut keys);
        let mut expected: Vec<u32> = keys
            .iter()
            .copied()
            .filter(|&key| leg_snapshot.shard_of(key) == Ok(config.dead_shard))
            .collect();
        expected.sort_unstable();
        expected.dedup();
        let result = leg.multiget(&keys).map_err(ShpError::from)?;
        for &(key, value) in &result.values {
            if value != value_of(key) {
                wrong_values += 1;
            }
        }
        if result.missing_keys != expected {
            missing_mismatches += 1;
        }
    }
    let leg_report = leg.report();
    merge_snapshot(
        &mut telemetry,
        leg.telemetry_snapshot("serving/drill/degraded_leg"),
    );

    Ok((
        DrillReport {
            phases,
            wrong_values,
            degraded_leg_availability: leg_report.availability,
            degraded_leg_degraded: leg_report.degraded_queries,
            missing_mismatches,
            recovery_epochs,
            recovery_moved,
            max_epoch_moved,
            recovery_remaining,
            migration_budget: config.migration_budget,
        },
        telemetry,
    ))
}

fn merge_snapshot(into: &mut Snapshot, from: Snapshot) {
    into.counters.extend(from.counters);
    into.gauges.extend(from.gauges);
    into.histograms.extend(from.histograms);
    into.top_keys.extend(from.top_keys);
}

/// Runs the kill → degrade → recover drill and returns its report.
///
/// # Errors
/// Propagates configuration, serving, and partitioning failures. A degraded query is
/// *not* an error — it lands in the report as availability loss.
pub fn run_drill_scenario(config: &DrillConfig) -> ShpResult<DrillReport> {
    run_drill(config).map(|(report, _)| report)
}

/// Like [`run_drill_scenario`], but also returns a merged telemetry snapshot with
/// per-phase `serving/drill/<phase>/...` series (plus `serving/drill/degraded_leg/...`),
/// for metrics export from the CLI.
///
/// # Errors
/// Same failure modes as [`run_drill_scenario`].
pub fn run_drill_scenario_with_telemetry(
    config: &DrillConfig,
) -> ShpResult<(DrillReport, Snapshot)> {
    run_drill(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DrillConfig {
        DrillConfig {
            communities: 4,
            community_size: 16,
            shards: 4,
            queries_per_phase: 200,
            keys_per_query: 4,
            migration_budget: 16,
            recover_every: 50,
            seed: 42,
            ..DrillConfig::default()
        }
    }

    #[test]
    fn drill_meets_the_acceptance_gates() {
        let report = run_drill_scenario(&tiny()).unwrap();

        assert_eq!(report.wrong_values, 0, "failover served a wrong value");
        assert_eq!(
            report.missing_mismatches, 0,
            "partial results were imprecise"
        );
        assert!(
            report.incident_availability() >= 0.99,
            "replicated availability {} under the incident",
            report.incident_availability()
        );
        assert!(
            report.degraded_leg_availability < 0.99,
            "the unreplicated leg should visibly degrade (got {})",
            report.degraded_leg_availability
        );
        assert!(report.degraded_leg_degraded > 0);
        assert!(
            report.max_epoch_moved <= report.migration_budget,
            "epoch moved {} over budget {}",
            report.max_epoch_moved,
            report.migration_budget
        );
        assert_eq!(report.recovery_remaining, 0, "dead shard was not drained");
        assert!(report.recovery_moved > 0);
        assert!(
            report.post_fanout() <= 1.05 * report.baseline_fanout(),
            "post-recovery fanout {} vs baseline {}",
            report.post_fanout(),
            report.baseline_fanout()
        );
    }

    #[test]
    fn incident_phase_retries_and_post_phase_is_quiet() {
        let report = run_drill_scenario(&tiny()).unwrap();
        let incident = &report.phases[1];
        let post = &report.phases[3];

        // Queries hitting the dead shard's communities must fail over...
        assert!(incident.retries > 0, "no failover retries during the crash");
        // ...and the slow shard must provoke at least one winning hedge.
        assert!(
            incident.hedges_won > 0,
            "no hedge ever won against the slow shard"
        );
        // After the drain the dead shard holds nothing: no retries, no degradation.
        assert_eq!(post.retries, 0, "post-recovery queries still retried");
        assert_eq!(post.degraded_queries, 0);
        assert_eq!(post.availability, 1.0);
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = run_drill_scenario(&tiny()).unwrap();
        let b = run_drill_scenario(&tiny()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn telemetry_snapshot_covers_every_phase_and_the_degraded_leg() {
        let (_, snap) = run_drill_scenario_with_telemetry(&tiny()).unwrap();
        for phase in ["baseline", "incident", "recovery", "post", "degraded_leg"] {
            assert!(
                snap.counters
                    .contains_key(&format!("serving/drill/{phase}/queries")),
                "missing {phase} series"
            );
        }
        assert!(snap.counters["serving/drill/incident/fault_retries"] > 0);
        assert!(snap.counters["serving/drill/degraded_leg/degraded_queries"] > 0);
        // Snapshots are taken at each phase boundary; by the end of the incident the dead
        // shard's gauge reads down while the survivors read up.
        assert_eq!(snap.gauges["serving/drill/incident/shard_up/0001"], 0.0);
        assert_eq!(snap.gauges["serving/drill/incident/shard_up/0000"], 1.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cases = [
            DrillConfig {
                shards: 1,
                ..tiny()
            },
            DrillConfig {
                communities: 3,
                ..tiny()
            },
            DrillConfig {
                keys_per_query: 99,
                ..tiny()
            },
            DrillConfig {
                replication: 1,
                ..tiny()
            },
            DrillConfig {
                dead_shard: 9,
                ..tiny()
            },
            DrillConfig {
                slow_shard: 1,
                dead_shard: 1,
                ..tiny()
            },
            DrillConfig {
                slow_factor: 1.0,
                ..tiny()
            },
            DrillConfig {
                recover_every: 0,
                ..tiny()
            },
        ];
        for config in cases {
            assert!(run_drill_scenario(&config).is_err(), "{config:?} accepted");
        }
    }
}
