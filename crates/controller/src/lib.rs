//! # shp-controller
//!
//! The closed serve→observe→repartition loop of the Social Hash Partitioner deployment story
//! (Kabiljo et al., VLDB 2017, Section 5). The paper's production system is not a one-shot
//! partitioner: it periodically re-partitions a live multiget serving tier against the
//! **observed** co-access graph, under an explicit stability constraint — move only a bounded
//! number of keys per epoch, because every move costs migration traffic.
//!
//! This crate connects the pieces the rest of the workspace already provides:
//!
//! * [`AccessTraceCollector`] — a bounded, atomics-only, zero-allocation reservoir of
//!   multiget key-sets, plugged into the serving hot path as a
//!   [`shp_serving::AccessObserver`]; drained into the observed co-access graph through the
//!   flat-arena `GraphBuilder`.
//! * [`RepartitionController`] — per epoch: drain the trace, run
//!   [`shp_core::partition_incremental`] seeded from the *live* placement with a hard
//!   `max_moves` migration budget, diff into a [`shp_serving::PartitionDelta`] (moved keys
//!   only), and install it with one atomic swap via `ServingEngine::install_delta`.
//! * [`drift`] — the hours-compressed drift scenario: popularity shifts phase over phase, a
//!   never-repartition baseline decays, the controller recovers fanout while every epoch
//!   stays within budget. This is the workload behind `BENCH_controller.json` and the
//!   `shp controller` CLI subcommand.
//! * [`drill`] — the kill → degrade → recover failure drill: a replicated engine serves
//!   through a scripted shard crash (availability holds via failover routing), an
//!   unreplicated leg degrades to precise typed partial results, and
//!   [`RepartitionController::recover_dead_shard`] drains the dead shard within the
//!   migration budget. This is the workload behind `BENCH_drill.json` and the
//!   `shp drill` CLI subcommand.
//!
//! ## Quickstart
//!
//! ```
//! use shp_controller::{AccessTraceCollector, ControllerConfig, RepartitionController};
//! use shp_serving::{EngineConfig, ServingEngine};
//! use shp_hypergraph::{GraphBuilder, Partition};
//! use std::sync::Arc;
//!
//! // Two co-access pairs, initially split across shards (fanout 2).
//! let mut b = GraphBuilder::new();
//! b.add_query([0u32, 1]);
//! b.add_query([2u32, 3]);
//! let graph = b.build().unwrap();
//! let partition = Partition::from_assignment(&graph, 2, vec![0, 1, 0, 1]).unwrap();
//!
//! let collector = Arc::new(AccessTraceCollector::new(128, 7));
//! let engine = ServingEngine::new(&partition, EngineConfig::default())
//!     .unwrap()
//!     .with_access_observer(collector.clone());
//! let mut controller = RepartitionController::new(collector, ControllerConfig {
//!     migration_budget: 2,
//!     epsilon: 1.0,
//!     ..ControllerConfig::default()
//! });
//!
//! // Serve: the collector observes which keys travel together...
//! for _ in 0..8 {
//!     engine.multiget(&[0, 1]).unwrap();
//!     engine.multiget(&[2, 3]).unwrap();
//! }
//! // ...and one controller epoch repartitions the live engine within budget.
//! let outcome = controller.run_epoch(&engine).unwrap().unwrap();
//! assert!(outcome.moved_keys <= 2);
//! assert!(outcome.fanout_after <= outcome.fanout_before);
//! assert_eq!(engine.current_epoch(), outcome.epoch);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod drift;
pub mod drill;
pub mod trace;

pub use controller::{ControllerConfig, EpochOutcome, RecoveryOutcome, RepartitionController};
pub use drift::{run_drift_scenario, DriftConfig, DriftReport, PhaseStats};
pub use drill::{
    run_drill_scenario, run_drill_scenario_with_telemetry, DrillConfig, DrillPhase, DrillReport,
};
pub use trace::{AccessTraceCollector, TraceStats, MAX_SAMPLE_KEYS};
