//! [`AccessTraceCollector`]: bounded, atomics-only co-access trace collection on the serving
//! hot path.
//!
//! The paper's repartitioner does not see the *true* friend graph — it sees the **observed
//! co-access graph**: which keys were fetched together by real multigets. This collector is
//! the tap that builds it. It sits behind [`shp_serving::AccessObserver`] and is called with
//! every multiget's distinct key-set, so its record path must satisfy the same contract as
//! the rest of the serving instrumentation:
//!
//! * **zero allocation** — every byte is pre-allocated at construction;
//! * **lock-free** — only relaxed/acquire/release atomics, no mutex, no unbounded retry
//!   (a lost race drops one observation instead of spinning);
//! * **hard memory cap** — a fixed reservoir of key-set slots plus a bounded
//!   [`TopKSketch`]; memory never grows with traffic ([`AccessTraceCollector::memory_bytes`]
//!   is constant for the collector's lifetime).
//!
//! ## How sampling works
//!
//! Key-sets are reservoir-sampled (Algorithm R): observation number `i` (0-based) claims
//! reservoir slot `i` while the reservoir is filling, and afterwards replaces a uniformly
//! chosen slot with probability `slots/(i+1)` — the slot index comes from a splitmix64 hash
//! of the observation number, so a single-writer trace samples deterministically. Each slot
//! is a tiny seqlock: a writer CASes the slot's version from even to odd, writes up to
//! [`MAX_SAMPLE_KEYS`] keys and the length, and publishes with a release store back to even.
//! Readers ([`AccessTraceCollector::observed_graph`]) copy a slot and re-check the version,
//! discarding torn reads. Individual keys are separate `AtomicU32`s, so a torn *set* is
//! detectable while a torn *word* is impossible — no `unsafe` anywhere.
//!
//! Alongside the reservoir, every key feeds a space-saving [`TopKSketch`] (hot keys) and
//! sharded [`Counter`]s account for every observation: `recorded = sampled + singleton +
//! reservoir_skipped + contended` always holds, so the drift bench can assert nothing is
//! silently lost.

use shp_core::{ShpError, ShpResult};
use shp_hypergraph::{BipartiteGraph, DataId, GraphBuilder};
use shp_serving::AccessObserver;
use shp_telemetry::{Counter, TopKSketch};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Maximum keys kept per sampled multiget; larger key-sets are truncated (the first
/// `MAX_SAMPLE_KEYS` of the engine's sorted distinct keys). 16 keys × 4 bytes keeps a slot
/// within one cache line of payload.
pub const MAX_SAMPLE_KEYS: usize = 16;

/// Slots in the hot-key sketch the collector maintains alongside the reservoir.
const HOT_KEY_SLOTS: usize = 1024;

/// One seqlock-protected reservoir slot holding a sampled key-set.
///
/// `version` is even when the slot is stable and odd while a writer owns it; every publish
/// advances it by 2, so a reader that sees the same even version before and after its copy
/// has a consistent key-set.
#[derive(Debug)]
struct SampleSlot {
    version: AtomicU64,
    len: AtomicU32,
    keys: [AtomicU32; MAX_SAMPLE_KEYS],
}

impl SampleSlot {
    fn new() -> Self {
        SampleSlot {
            version: AtomicU64::new(0),
            len: AtomicU32::new(0),
            keys: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }
}

/// Scrape-time view of the collector's accounting counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Multigets observed (every call to `observe`/`record`).
    pub recorded: u64,
    /// Key-sets written into the reservoir.
    pub sampled: u64,
    /// Observations with fewer than two keys (no co-access signal; counted, not sampled).
    pub singleton: u64,
    /// Observations the reservoir declined once full (the expected Algorithm R behavior).
    pub reservoir_skipped: u64,
    /// Observations dropped because another writer owned the chosen slot (bounded-work rule:
    /// drop one sample instead of spinning).
    pub contended: u64,
}

/// A bounded, atomics-only reservoir of multiget key-sets — the observation tap of the
/// serve→observe→repartition loop (see the module docs).
#[derive(Debug)]
pub struct AccessTraceCollector {
    slots: Box<[SampleSlot]>,
    /// Observation sequence number since the last [`reset`](AccessTraceCollector::reset);
    /// drives Algorithm R.
    seq: AtomicU64,
    seed: u64,
    hot: TopKSketch,
    recorded: Counter,
    sampled: Counter,
    singleton: Counter,
    reservoir_skipped: Counter,
    contended: Counter,
}

/// A fixed 64-bit mix (splitmix64 finalizer) — deterministic across runs and platforms.
#[inline]
fn mix(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl AccessTraceCollector {
    /// Creates a collector with `slots` reservoir slots (rounded up to at least 16), seeded
    /// for the reservoir's replacement hash.
    pub fn new(slots: usize, seed: u64) -> Self {
        let slots = slots.max(16);
        AccessTraceCollector {
            slots: (0..slots).map(|_| SampleSlot::new()).collect(),
            seq: AtomicU64::new(0),
            seed,
            hot: TopKSketch::new(HOT_KEY_SLOTS),
            recorded: Counter::new(),
            sampled: Counter::new(),
            singleton: Counter::new(),
            reservoir_skipped: Counter::new(),
            contended: Counter::new(),
        }
    }

    /// Number of reservoir slots (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of pre-allocated storage — constant for the collector's lifetime.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<SampleSlot>() + self.hot.memory_bytes()
    }

    /// Records one multiget's distinct key-set. Zero allocation, lock-free, bounded work
    /// (at most one CAS on a slot version plus [`MAX_SAMPLE_KEYS`] relaxed stores).
    #[inline]
    pub fn record(&self, keys: &[DataId]) {
        self.recorded.inc();
        for &key in keys {
            self.hot.record(key);
        }
        if keys.len() < 2 {
            self.singleton.inc();
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slots = self.slots.len() as u64;
        let index = if seq < slots {
            seq
        } else {
            // Algorithm R: replace a uniform slot with probability slots/(seq+1).
            let j = mix(seq ^ self.seed) % (seq + 1);
            if j >= slots {
                self.reservoir_skipped.inc();
                return;
            }
            j
        } as usize;

        let slot = &self.slots[index];
        let version = slot.version.load(Ordering::Relaxed);
        if version & 1 == 1 {
            self.contended.inc();
            return;
        }
        if slot
            .version
            .compare_exchange(version, version + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.contended.inc();
            return;
        }
        let len = keys.len().min(MAX_SAMPLE_KEYS);
        for (i, &key) in keys.iter().take(len).enumerate() {
            slot.keys[i].store(key, Ordering::Relaxed);
        }
        slot.len.store(len as u32, Ordering::Relaxed);
        slot.version.store(version + 2, Ordering::Release);
        self.sampled.inc();
    }

    /// Copies every stable, non-empty sampled key-set out of the reservoir (scrape-time;
    /// allocates freely — never called from the serving path).
    pub fn samples(&self) -> Vec<Vec<DataId>> {
        let mut out = Vec::new();
        let mut scratch = [0u32; MAX_SAMPLE_KEYS];
        for slot in self.slots.iter() {
            // Seqlock read with one retry: torn or writer-owned slots are skipped.
            let mut sample = None;
            for _ in 0..2 {
                let before = slot.version.load(Ordering::Acquire);
                if before & 1 == 1 {
                    continue;
                }
                let len = (slot.len.load(Ordering::Relaxed) as usize).min(MAX_SAMPLE_KEYS);
                for (i, word) in scratch.iter_mut().enumerate().take(len) {
                    *word = slot.keys[i].load(Ordering::Relaxed);
                }
                if slot.version.load(Ordering::Acquire) == before {
                    sample = Some(len);
                    break;
                }
            }
            if let Some(len) = sample {
                if len >= 2 {
                    out.push(scratch[..len].to_vec());
                }
            }
        }
        out
    }

    /// Builds the observed co-access graph over `num_keys` data vertices from the current
    /// reservoir: one hyperedge per sampled multiget. Samples referencing keys at or beyond
    /// `num_keys` are discarded (they were observed before validation rejected the query).
    /// Returns `None` when nothing usable was sampled.
    ///
    /// # Errors
    /// Propagates graph-construction failures.
    pub fn observed_graph(&self, num_keys: usize) -> ShpResult<Option<BipartiteGraph>> {
        let samples = self.samples();
        let valid: Vec<&Vec<DataId>> = samples
            .iter()
            .filter(|keys| keys.iter().all(|&k| (k as usize) < num_keys))
            .collect();
        if valid.is_empty() {
            return Ok(None);
        }
        let mut builder = GraphBuilder::with_capacity(valid.len(), num_keys);
        builder.reserve_pins(valid.iter().map(|keys| keys.len()).sum());
        for keys in valid {
            builder.add_query_slice(keys);
        }
        builder.ensure_data_count(num_keys);
        Ok(Some(builder.build().map_err(ShpError::from)?))
    }

    /// The `k` hottest keys with approximate counts (count descending, ties by key).
    pub fn hot_keys(&self, k: usize) -> Vec<(DataId, u64)> {
        self.hot.top(k)
    }

    /// Scrape-time accounting. `recorded = sampled + singleton + reservoir_skipped +
    /// contended` holds whenever no `record` is concurrently in flight.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            recorded: self.recorded.value(),
            sampled: self.sampled.value(),
            singleton: self.singleton.value(),
            reservoir_skipped: self.reservoir_skipped.value(),
            contended: self.contended.value(),
        }
    }

    /// Empties the reservoir and restarts the sampling window (counters and the hot-key
    /// sketch keep their lifetime totals). Called by the controller after each drain so the
    /// next epoch observes fresh traffic.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            let version = slot.version.load(Ordering::Relaxed);
            if version & 1 == 1 {
                // A writer owns the slot; its sample lands in the next window, which is fine.
                continue;
            }
            if slot
                .version
                .compare_exchange(version, version + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            slot.len.store(0, Ordering::Relaxed);
            slot.version.store(version + 2, Ordering::Release);
        }
        self.seq.store(0, Ordering::Relaxed);
    }
}

impl AccessObserver for AccessTraceCollector {
    #[inline]
    fn observe(&self, keys: &[DataId]) {
        self.record(keys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_key_sets_and_builds_the_observed_graph() {
        let c = AccessTraceCollector::new(64, 7);
        c.record(&[0, 1, 2]);
        c.record(&[3, 4]);
        c.record(&[5]); // singleton: counted, not sampled
        let stats = c.stats();
        assert_eq!(stats.recorded, 3);
        assert_eq!(stats.sampled, 2);
        assert_eq!(stats.singleton, 1);

        let graph = c.observed_graph(6).unwrap().expect("two samples");
        assert_eq!(graph.num_queries(), 2);
        assert_eq!(graph.num_data(), 6);
        let mut edges: Vec<Vec<u32>> = graph
            .queries()
            .map(|q| graph.query_neighbors(q).to_vec())
            .collect();
        edges.sort();
        assert_eq!(edges, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn empty_reservoir_yields_no_graph() {
        let c = AccessTraceCollector::new(16, 0);
        assert!(c.observed_graph(10).unwrap().is_none());
        c.record(&[9]);
        assert!(c.observed_graph(10).unwrap().is_none());
    }

    #[test]
    fn out_of_range_samples_are_discarded_at_drain() {
        let c = AccessTraceCollector::new(16, 0);
        c.record(&[0, 1]);
        c.record(&[2, 99]);
        let graph = c.observed_graph(3).unwrap().expect("one valid sample");
        assert_eq!(graph.num_queries(), 1);
        assert_eq!(graph.num_data(), 3);
    }

    #[test]
    fn memory_is_bounded_and_accounting_is_complete() {
        let c = AccessTraceCollector::new(32, 3);
        let before = c.memory_bytes();
        for i in 0..10_000u32 {
            c.record(&[i % 100, (i + 1) % 100, (i + 2) % 100]);
        }
        assert_eq!(c.memory_bytes(), before);
        assert!(c.samples().len() <= 32);
        let stats = c.stats();
        assert_eq!(
            stats.recorded,
            stats.sampled + stats.singleton + stats.reservoir_skipped + stats.contended
        );
        // With 10k observations into 32 slots, the vast majority must be declined.
        assert!(stats.reservoir_skipped > 9_000);
    }

    #[test]
    fn reservoir_keeps_a_spread_of_the_trace_not_just_the_head() {
        let c = AccessTraceCollector::new(32, 11);
        // 1000 observations, each key-set identifying its observation number.
        for i in 0..1000u32 {
            c.record(&[2 * i, 2 * i + 1]);
        }
        let ids: Vec<u32> = c.samples().iter().map(|keys| keys[0] / 2).collect();
        assert!(!ids.is_empty());
        // Replacement happened: not every surviving sample is from the first 32.
        assert!(ids.iter().any(|&id| id >= 32), "no replacement: {ids:?}");
    }

    #[test]
    fn truncates_oversized_key_sets() {
        let c = AccessTraceCollector::new(16, 0);
        let big: Vec<u32> = (0..40).collect();
        c.record(&big);
        let samples = c.samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].len(), MAX_SAMPLE_KEYS);
        assert_eq!(samples[0], (0..MAX_SAMPLE_KEYS as u32).collect::<Vec<_>>());
    }

    #[test]
    fn reset_clears_samples_and_restarts_the_window() {
        let c = AccessTraceCollector::new(16, 5);
        c.record(&[1, 2]);
        c.record(&[3, 4]);
        assert_eq!(c.samples().len(), 2);
        c.reset();
        assert!(c.samples().is_empty());
        assert!(c.observed_graph(10).unwrap().is_none());
        // The window restarts: new samples fill from slot 0 again.
        c.record(&[5, 6]);
        assert_eq!(c.samples(), vec![vec![5, 6]]);
        // Lifetime counters are preserved across resets.
        assert_eq!(c.stats().recorded, 3);
    }

    #[test]
    fn hot_keys_reflect_frequency() {
        let c = AccessTraceCollector::new(16, 0);
        for _ in 0..10 {
            c.record(&[7, 8]);
        }
        c.record(&[1, 2]);
        let hot = c.hot_keys(2);
        assert_eq!(hot[0], (7, 10));
        assert_eq!(hot[1], (8, 10));
    }

    #[test]
    fn concurrent_recording_is_safe_and_loses_nothing_from_the_accounting() {
        let c = AccessTraceCollector::new(64, 9);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..5_000u32 {
                        c.record(&[t * 10_000 + i, t * 10_000 + i + 1]);
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.recorded, 20_000);
        assert_eq!(
            stats.recorded,
            stats.sampled + stats.singleton + stats.reservoir_skipped + stats.contended
        );
        // Every surviving sample is a coherent pair (no torn key-sets).
        for sample in c.samples() {
            assert_eq!(sample.len(), 2);
            assert_eq!(sample[1], sample[0] + 1, "torn sample: {sample:?}");
        }
    }
}
