//! The unified partitioning API: one trait, one spec, one outcome, one registry.
//!
//! The paper's central claim is *comparative* — SHP's probabilistic-fanout local search beats
//! random/hash/greedy/multilevel baselines at scale — and this module is the interface that
//! claim is expressed through. Every algorithm in the workspace (the four SHP execution paths
//! of this crate and the five baselines of `shp-baselines`) implements [`Partitioner`]:
//!
//! ```
//! use shp_core::api::{AlgorithmRegistry, NoopObserver, PartitionSpec};
//! use shp_hypergraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_query([0u32, 1, 2]);
//! b.add_query([3u32, 4, 5]);
//! let graph = b.build().unwrap();
//!
//! let registry = AlgorithmRegistry::core();
//! let spec = PartitionSpec::new(2).with_seed(42);
//! let shp2 = registry.get("shp2").unwrap();
//! let outcome = shp2.partition(&graph, &spec, &mut NoopObserver).unwrap();
//! assert_eq!(outcome.partition.num_buckets(), 2);
//! assert!(outcome.fanout <= 2.0);
//! ```
//!
//! Design notes:
//!
//! * [`PartitionSpec`] carries only the knobs every algorithm shares (buckets, `ε`, seed,
//!   iteration cap, objective, simulated workers). Algorithm-specific options live on the
//!   adapter structs ([`IncrementalShp::with_previous`], [`DistributedShp::num_workers`] for
//!   overriding the simulated machine count, …)
//!   and are reachable through the registry's spec-aware [`AlgorithmRegistry::create`].
//! * Every [`PartitionOutcome`] respects the spec's balance bound: adapters run
//!   [`enforce_balance`] before computing metrics, so no bucket ever exceeds
//!   [`Partition::max_allowed_weight`]`(ε)`. Algorithms that already balance (greedy,
//!   multilevel, SHP in the common case) are returned untouched.
//! * [`ProgressObserver`] receives the per-iteration trace; pass [`NoopObserver`] when you only
//!   want the final outcome, or [`TraceObserver`] to collect the history (Figure 7's series).

use crate::config::{PartitionMode, ShpConfig};
use crate::distributed::partition_distributed;
use crate::error::{ShpError, ShpResult};
use crate::incremental::{partition_incremental, IncrementalConfig};
use crate::report::{PartitionResult, RunReport};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use shp_hypergraph::{average_fanout, average_p_fanout, BipartiteGraph, BucketId, Partition};
use std::collections::BTreeMap;
use std::time::Duration;

pub use crate::config::ObjectiveKind;

/// One refinement-iteration event reported to a [`ProgressObserver`].
///
/// This is the least common denominator of the in-process
/// [`IterationStats`](crate::refinement::IterationStats) and the distributed per-iteration
/// statistics, so a single observer type can trace every algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationEvent {
    /// Iteration index (0-based) in execution order across recursion levels.
    pub iteration: usize,
    /// Number of data vertices moved in the iteration.
    pub moved: usize,
    /// Average query fanout associated with the iteration.
    pub fanout: f64,
}

/// Receives progress callbacks while a [`Partitioner`] runs.
///
/// All methods have empty default bodies, so implementors override only what they need.
pub trait ProgressObserver {
    /// Called when a recursion/split level completes (recursive algorithms only).
    fn on_level(&mut self, _level: usize, _buckets_after: u32) {}
    /// Called once per refinement iteration.
    fn on_iteration(&mut self, _event: &IterationEvent) {}
    /// Whether this observer consumes [`IterationEvent`]s. Adapters whose per-iteration
    /// metrics cost extra work (e.g. a full fanout scan per sweep) may skip computing them
    /// when this returns `false`. Defaults to `true`.
    fn wants_iterations(&self) -> bool {
        true
    }
}

/// An observer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl ProgressObserver for NoopObserver {
    fn wants_iterations(&self) -> bool {
        false
    }
}

/// An observer that records every event, for tests and post-run analysis.
#[derive(Debug, Clone, Default)]
pub struct TraceObserver {
    /// Every iteration event in execution order.
    pub iterations: Vec<IterationEvent>,
    /// `(level, buckets_after)` for every completed split level.
    pub levels: Vec<(usize, u32)>,
}

impl ProgressObserver for TraceObserver {
    fn on_level(&mut self, level: usize, buckets_after: u32) {
        self.levels.push((level, buckets_after));
    }

    fn on_iteration(&mut self, event: &IterationEvent) {
        self.iterations.push(*event);
    }
}

/// An observer bridge that mirrors every progress event into the process-wide telemetry
/// registry ([`shp_telemetry::global`]) while forwarding it, unchanged, to the wrapped
/// observer — so a [`TraceObserver`] (or any other observer) keeps working exactly as before
/// while counters/gauges accumulate alongside.
///
/// Records, when telemetry is enabled: `partition/observer/iterations` and
/// `partition/observer/moves` counters, a `partition/observer/fanout` gauge (the latest
/// iteration's fanout), and a `partition/observer/levels` counter. Never alters events and
/// never feeds anything back into the algorithm, so wrapping cannot change an outcome.
/// [`ProgressObserver::wants_iterations`] forwards the inner observer's answer unchanged —
/// telemetry alone never forces adapters into computing per-iteration metrics.
pub struct TelemetryObserver<'a> {
    inner: &'a mut dyn ProgressObserver,
}

impl std::fmt::Debug for TelemetryObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryObserver").finish_non_exhaustive()
    }
}

impl<'a> TelemetryObserver<'a> {
    /// Wraps `inner`, mirroring its events into the global telemetry registry.
    pub fn new(inner: &'a mut dyn ProgressObserver) -> Self {
        TelemetryObserver { inner }
    }
}

impl ProgressObserver for TelemetryObserver<'_> {
    fn on_level(&mut self, level: usize, buckets_after: u32) {
        if shp_telemetry::enabled() {
            shp_telemetry::global()
                .counter("partition/observer/levels")
                .inc();
        }
        self.inner.on_level(level, buckets_after);
    }

    fn on_iteration(&mut self, event: &IterationEvent) {
        if shp_telemetry::enabled() {
            let registry = shp_telemetry::global();
            registry.counter("partition/observer/iterations").inc();
            registry
                .counter("partition/observer/moves")
                .add(event.moved as u64);
            registry
                .gauge("partition/observer/fanout")
                .set(event.fanout);
        }
        self.inner.on_iteration(event);
    }

    fn wants_iterations(&self) -> bool {
        self.inner.wants_iterations()
    }
}

/// The algorithm-independent request: what to partition into, under which constraints.
///
/// Built with [`PartitionSpec::new`] plus `with_*` setters; [`PartitionSpec::validate`] is run
/// by every adapter before it starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Number of buckets `k`.
    pub num_buckets: u32,
    /// Allowed imbalance ratio `ε ≥ 0`; every outcome satisfies the corresponding
    /// [`Partition::max_allowed_weight`] capacity.
    pub epsilon: f64,
    /// Seed for every random decision, making runs reproducible.
    pub seed: u64,
    /// Iteration cap for iterative algorithms; `None` keeps each algorithm's paper default
    /// (60 for direct SHP-k, 20 per split for SHP-2, 15 sweeps for label propagation, …).
    pub max_iterations: Option<usize>,
    /// Optimization objective for algorithms that have one (the SHP family).
    pub objective: ObjectiveKind,
    /// Worker count: the number of real threads driving every parallel hot path (gain
    /// computation, neighbor-data/histogram construction, clique-net build), and doubling as
    /// the simulated machine count for the distributed BSP algorithms. Outcomes are
    /// **bit-identical for every worker count** — the rayon shim reduces per-chunk results in
    /// chunk order — so `workers` trades wall-clock time only.
    pub workers: usize,
}

impl Default for PartitionSpec {
    fn default() -> Self {
        PartitionSpec {
            num_buckets: 2,
            epsilon: 0.05,
            seed: 0x5047,
            max_iterations: None,
            objective: ObjectiveKind::default_p_fanout(),
            workers: 4,
        }
    }
}

impl PartitionSpec {
    /// A spec for `k` buckets with the paper-default `ε = 0.05`, `p = 0.5`, seed `0x5047`.
    pub fn new(k: u32) -> Self {
        PartitionSpec {
            num_buckets: k,
            ..Default::default()
        }
    }

    /// Sets the allowed imbalance ratio.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the refinement iterations (per split level for recursive algorithms).
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = Some(iters);
        self
    }

    /// Sets the optimization objective.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the worker count (real threads for the hot paths; also the simulated machine
    /// count of the distributed algorithms). The outcome does not depend on it.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    /// Returns [`ShpError::InvalidConfig`] for zero buckets, a non-finite or negative `ε`,
    /// `p` outside `(0, 1)`, a zero iteration cap, or zero workers.
    pub fn validate(&self) -> ShpResult<()> {
        if self.workers == 0 {
            return Err(ShpError::InvalidConfig("workers must be at least 1".into()));
        }
        if self.max_iterations == Some(0) {
            return Err(ShpError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        // Bucket count, epsilon, and objective share the ShpConfig validation rules.
        self.shp_config(PartitionMode::Direct).validate()
    }

    /// Lowers the spec into the legacy [`ShpConfig`] for the given execution mode, applying the
    /// paper-default iteration caps when none is set.
    pub fn shp_config(&self, mode: PartitionMode) -> ShpConfig {
        let default_iterations = match mode {
            PartitionMode::Direct => 60,
            PartitionMode::Recursive { .. } => 20,
        };
        ShpConfig {
            num_buckets: self.num_buckets,
            epsilon: self.epsilon,
            objective: self.objective,
            mode,
            max_iterations: self.max_iterations.unwrap_or(default_iterations),
            seed: self.seed,
            workers: self.workers.max(1),
            ..ShpConfig::default()
        }
    }
}

/// The unified result of any partitioning run.
///
/// One type replaces the previous zoo ([`PartitionResult`], `DistributedRunResult`, and the
/// baselines' bare [`Partition`] returns) so tables, sweeps, and the serving warm-start path
/// consume every algorithm identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionOutcome {
    /// Registry name of the algorithm that produced the partition.
    pub algorithm: String,
    /// The bucket assignment.
    pub partition: Partition,
    /// Average query fanout of the partition.
    pub fanout: f64,
    /// Average p-fanout (p = 0.5), comparable across objectives.
    pub p_fanout: f64,
    /// Realized imbalance `max_i |V_i| / (n/k) − 1`.
    pub imbalance: f64,
    /// Refinement iterations executed (0 for one-shot algorithms like random/hash).
    pub iterations: usize,
    /// Total vertex moves applied during refinement (0 for one-shot algorithms).
    pub moves: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl PartitionOutcome {
    /// Assembles an outcome from a finished partition, computing the quality metrics.
    pub fn from_partition(
        algorithm: impl Into<String>,
        graph: &BipartiteGraph,
        partition: Partition,
        iterations: usize,
        moves: u64,
        elapsed: Duration,
    ) -> Self {
        PartitionOutcome {
            algorithm: algorithm.into(),
            fanout: average_fanout(graph, &partition),
            p_fanout: average_p_fanout(graph, &partition, 0.5),
            imbalance: partition.imbalance(),
            partition,
            iterations,
            moves,
            elapsed,
        }
    }

    /// Renders the outcome as a JSON object (the vendored serde backend has no data format, so
    /// the canonical machine-readable form is emitted by hand).
    ///
    /// The `assignment` array holds the bucket of every data vertex in id order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + 2 * self.partition.num_data());
        out.push_str("{\"algorithm\":\"");
        for c in self.algorithm.chars() {
            match c {
                '"' | '\\' => {
                    out.push('\\');
                    out.push(c);
                }
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str(&format!(
            "\",\"num_buckets\":{},\"fanout\":{:.6},\"p_fanout\":{:.6},\"imbalance\":{:.6},\
             \"iterations\":{},\"moves\":{},\"elapsed_micros\":{},\"assignment\":[",
            self.partition.num_buckets(),
            self.fanout,
            self.p_fanout,
            self.imbalance,
            self.iterations,
            self.moves,
            self.elapsed.as_micros()
        ));
        for (i, &b) in self.partition.assignment().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("]}");
        out
    }
}

/// A k-way hypergraph partitioner behind the unified interface.
///
/// Implementations read **everything** run-specific from the [`PartitionSpec`] (including the
/// seed), so one instance can serve many specs and two runs with equal specs produce equal
/// partitions.
pub trait Partitioner {
    /// Registry name of the algorithm (stable, lowercase, e.g. `"shp2"`).
    fn name(&self) -> &str;

    /// Partitions the data vertices of `graph` according to `spec`, reporting progress to
    /// `obs`.
    ///
    /// # Errors
    /// Returns [`ShpError::InvalidConfig`] for invalid specs and algorithm-specific errors
    /// otherwise (e.g. [`ShpError::PartitionMismatch`] for a bad warm start).
    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome>;
}

/// Deterministically repairs `partition` so no bucket exceeds
/// [`Partition::max_allowed_weight`]`(epsilon)`.
///
/// Vertices are taken from overfull buckets in descending id order and moved to the currently
/// lightest bucket. For the unit-weight partitions this workspace produces, the capacity
/// `⌊(1 + ε)⌈n/k⌉⌋ ≥ ⌈n/k⌉` always admits a full repair; with heterogeneous vertex weights the
/// repair is best-effort. Returns the number of vertices moved (0 when already balanced).
pub fn enforce_balance(partition: &mut Partition, epsilon: f64) -> usize {
    let cap = partition.max_allowed_weight(epsilon);
    if partition.is_balanced(epsilon) {
        return 0;
    }
    let k = partition.num_buckets();
    let overfull: Vec<BucketId> = (0..k)
        .filter(|&b| partition.bucket_weight(b) > cap)
        .collect();
    let mut moved = 0usize;
    for b in overfull {
        let mut members = partition.bucket_members(b);
        // Highest ids first: deterministic, and leaves the low-id (often hub) vertices alone.
        while partition.bucket_weight(b) > cap {
            let Some(v) = members.pop() else { break };
            let target = (0..k)
                .filter(|&t| t != b)
                .min_by_key(|&t| (partition.bucket_weight(t), t))
                .expect("k >= 2 when a bucket is overfull");
            if partition.bucket_weight(target) + partition.vertex_weight(v) > cap {
                break; // best-effort: every other bucket is at capacity
            }
            partition.assign(v, target);
            moved += 1;
        }
    }
    moved
}

/// Shared adapter epilogue: repair the spec's balance bound with [`enforce_balance`], then
/// assemble the [`PartitionOutcome`] with its quality metrics.
///
/// Every adapter in the workspace (the core SHP paths here and the baselines of
/// `shp-baselines`) funnels through this one function, so the repair-then-measure contract
/// cannot diverge between crates.
pub fn assemble_outcome(
    algorithm: &str,
    graph: &BipartiteGraph,
    mut partition: Partition,
    spec: &PartitionSpec,
    iterations: usize,
    moves: u64,
    elapsed: Duration,
) -> PartitionOutcome {
    let repaired = {
        let _span = shp_telemetry::Span::enter("partition/balance_repair");
        enforce_balance(&mut partition, spec.epsilon)
    };
    if shp_telemetry::enabled() {
        let registry = shp_telemetry::global();
        registry.counter("partition/runs").inc();
        registry
            .counter("partition/iterations_total")
            .add(iterations as u64);
        registry.counter("partition/moves_total").add(moves);
        registry
            .counter("partition/balance_repair_moves")
            .add(repaired as u64);
    }
    PartitionOutcome::from_partition(algorithm, graph, partition, iterations, moves, elapsed)
}

/// Replays a finished [`RunReport`] into an observer (iterations, then levels).
fn replay_report(report: &RunReport, obs: &mut dyn ProgressObserver) {
    for stats in &report.history {
        obs.on_iteration(&IterationEvent {
            iteration: stats.iteration,
            moved: stats.moved,
            fanout: stats.fanout_after,
        });
    }
    for level in &report.levels {
        obs.on_level(level.level, level.buckets_after);
    }
}

/// Converts a [`PartitionResult`] into an outcome, feeding the observer.
fn outcome_of_result(
    algorithm: &str,
    graph: &BipartiteGraph,
    result: PartitionResult,
    spec: &PartitionSpec,
    obs: &mut dyn ProgressObserver,
) -> PartitionOutcome {
    replay_report(&result.report, obs);
    assemble_outcome(
        algorithm,
        graph,
        result.partition,
        spec,
        result.report.total_iterations(),
        result.report.total_moves() as u64,
        result.report.elapsed,
    )
}

/// SHP-2: recursive bisection (the open-sourced variant). Registry name `"shp2"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Shp2;

impl Partitioner for Shp2 {
    fn name(&self) -> &str {
        "shp2"
    }

    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let config = spec.shp_config(PartitionMode::recursive_bisection());
        let result = crate::recursive::partition_recursive(graph, &config)?;
        Ok(outcome_of_result(self.name(), graph, result, spec, obs))
    }
}

/// SHP-k: direct k-way optimization. Registry name `"shpk"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShpK;

impl Partitioner for ShpK {
    fn name(&self) -> &str {
        "shpk"
    }

    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let config = spec.shp_config(PartitionMode::Direct);
        let result = crate::direct::partition_direct(graph, &config)?;
        Ok(outcome_of_result(self.name(), graph, result, spec, obs))
    }
}

/// SHP on the vertex-centric BSP engine (Figure 3's four supersteps), with
/// `spec.workers` simulated workers. Registry name `"distributed"` (recursive-bisection
/// mode, the production default); construct with [`DistributedShp::direct`] for the direct
/// k-way distributed variant.
#[derive(Debug, Clone, Copy)]
pub struct DistributedShp {
    /// Overrides `spec.workers` when set.
    pub num_workers: Option<usize>,
    /// Execution mode of the engine jobs (one job per split level in recursive mode).
    pub mode: PartitionMode,
}

impl Default for DistributedShp {
    fn default() -> Self {
        DistributedShp {
            num_workers: None,
            mode: PartitionMode::recursive_bisection(),
        }
    }
}

impl DistributedShp {
    /// The direct k-way distributed variant (SHP-k on the BSP engine).
    pub fn direct() -> Self {
        DistributedShp {
            num_workers: None,
            mode: PartitionMode::Direct,
        }
    }
}

impl Partitioner for DistributedShp {
    fn name(&self) -> &str {
        "distributed"
    }

    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let workers = self.num_workers.unwrap_or(spec.workers).max(1);
        let config = spec.shp_config(self.mode);
        let result = partition_distributed(graph, &config, workers)?;
        let mut moves = 0u64;
        for stats in &result.history {
            obs.on_iteration(&IterationEvent {
                iteration: stats.iteration,
                moved: stats.moved as usize,
                fanout: stats.fanout,
            });
            moves += stats.moved;
        }
        let iterations = result.history.len();
        Ok(assemble_outcome(
            self.name(),
            graph,
            result.partition,
            spec,
            iterations,
            moves,
            result.elapsed,
        ))
    }
}

/// Incremental SHP (Section 5, requirement (i)): refine a previous partition, penalizing
/// movement away from it. Registry name `"incremental"`.
///
/// Without a warm start ([`IncrementalShp::with_previous`]), the run starts from a seeded
/// random partition — useful for sweeps, though then nothing distinguishes the "previous"
/// placement from noise.
#[derive(Debug, Clone, Default)]
pub struct IncrementalShp {
    /// Penalty/churn options of the incremental run.
    pub config: IncrementalConfig,
    /// Previous partition to warm-start from; must match the graph and `spec.num_buckets`.
    pub previous: Option<Partition>,
}

impl IncrementalShp {
    /// Warm-starts the refinement from `previous`.
    pub fn with_previous(mut self, previous: Partition) -> Self {
        self.previous = Some(previous);
        self
    }

    /// Sets the incremental penalty/churn options.
    pub fn with_config(mut self, config: IncrementalConfig) -> Self {
        self.config = config;
        self
    }
}

impl Partitioner for IncrementalShp {
    fn name(&self) -> &str {
        "incremental"
    }

    fn partition(
        &self,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        spec.validate()?;
        let config = spec.shp_config(PartitionMode::Direct);
        let previous = match &self.previous {
            Some(previous) => previous.clone(),
            None => {
                let mut rng = Pcg64::seed_from_u64(spec.seed);
                Partition::new_random(graph, spec.num_buckets, &mut rng)?
            }
        };
        let result = partition_incremental(graph, &config, &self.config, &previous)?;
        Ok(outcome_of_result(self.name(), graph, result, spec, obs))
    }
}

/// A boxed partitioner, as handed out by the registry.
pub type BoxedPartitioner = Box<dyn Partitioner + Send + Sync>;

/// A factory building a partitioner for a given spec.
pub type PartitionerFactory = Box<dyn Fn(&PartitionSpec) -> BoxedPartitioner + Send + Sync>;

/// A runtime name → algorithm table, so callers enumerate and construct partitioners by
/// string (`shp partition --mode <name>`, sweep drivers, baseline tables).
///
/// [`AlgorithmRegistry::core`] registers this crate's four execution paths; `shp-baselines`
/// adds its five with `register_baselines`, and downstream crates may register their own.
#[derive(Default)]
pub struct AlgorithmRegistry {
    factories: BTreeMap<String, PartitionerFactory>,
}

impl AlgorithmRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with this crate's algorithms: `shp2`, `shpk`, `distributed`, `incremental`.
    pub fn core() -> Self {
        let mut registry = Self::new();
        registry.register("shp2", |_| Box::new(Shp2));
        registry.register("shpk", |_| Box::new(ShpK));
        registry.register("distributed", |_| Box::new(DistributedShp::default()));
        registry.register("incremental", |_| Box::new(IncrementalShp::default()));
        registry
    }

    /// Registers (or replaces) an algorithm under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn(&PartitionSpec) -> BoxedPartitioner + Send + Sync + 'static,
    {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Constructs the named algorithm for `spec`.
    ///
    /// # Errors
    /// Returns [`ShpError::UnknownAlgorithm`] (listing every registered name) when `name` is
    /// not registered.
    pub fn create(&self, name: &str, spec: &PartitionSpec) -> ShpResult<BoxedPartitioner> {
        match self.factories.get(name) {
            Some(factory) => Ok(factory(spec)),
            None => Err(ShpError::UnknownAlgorithm {
                name: name.to_string(),
                available: self.names(),
            }),
        }
    }

    /// Constructs the named algorithm with default construction-time options (the common case:
    /// all run-time behaviour comes from the spec passed to [`Partitioner::partition`]).
    ///
    /// # Errors
    /// Same contract as [`AlgorithmRegistry::create`].
    pub fn get(&self, name: &str) -> ShpResult<BoxedPartitioner> {
        self.create(name, &PartitionSpec::default())
    }

    /// Every registered name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Convenience: construct the named algorithm and run it in one call.
    ///
    /// # Errors
    /// Propagates [`AlgorithmRegistry::create`] and [`Partitioner::partition`] errors.
    pub fn run(
        &self,
        name: &str,
        graph: &BipartiteGraph,
        spec: &PartitionSpec,
        obs: &mut dyn ProgressObserver,
    ) -> ShpResult<PartitionOutcome> {
        self.create(name, spec)?.partition(graph, spec, obs)
    }
}

impl std::fmt::Debug for AlgorithmRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn telemetry_observer_forwards_events_unchanged() {
        let graph = community_graph(4, 8);
        let spec = PartitionSpec::new(4).with_seed(7).with_max_iterations(8);
        let registry = AlgorithmRegistry::core();

        let mut bare = TraceObserver::default();
        let plain = registry.run("shp2", &graph, &spec, &mut bare).unwrap();

        let mut wrapped_inner = TraceObserver::default();
        let mut wrapped = TelemetryObserver::new(&mut wrapped_inner);
        assert!(wrapped.wants_iterations());
        let bridged = registry.run("shp2", &graph, &spec, &mut wrapped).unwrap();

        // The bridge is invisible to both the observer and the algorithm.
        assert_eq!(wrapped_inner.iterations, bare.iterations);
        assert_eq!(wrapped_inner.levels, bare.levels);
        assert_eq!(bridged.partition.assignment(), plain.partition.assignment());
        assert_eq!(bridged.fanout.to_bits(), plain.fanout.to_bits());
    }

    #[test]
    fn core_registry_runs_all_four_algorithms() {
        let graph = community_graph(4, 8);
        let registry = AlgorithmRegistry::core();
        assert_eq!(
            registry.names(),
            vec!["distributed", "incremental", "shp2", "shpk"]
        );
        let spec = PartitionSpec::new(4).with_seed(3).with_max_iterations(10);
        for name in registry.names() {
            let outcome = registry
                .run(&name, &graph, &spec, &mut NoopObserver)
                .unwrap();
            assert_eq!(outcome.algorithm, name);
            assert_eq!(outcome.partition.num_buckets(), 4);
            assert_eq!(outcome.partition.num_data(), graph.num_data());
            assert!(outcome.fanout >= 1.0, "{name} fanout {}", outcome.fanout);
        }
    }

    #[test]
    fn unknown_algorithm_lists_available_names() {
        let registry = AlgorithmRegistry::core();
        let Err(err) = registry.get("shp3") else {
            panic!("lookup of an unregistered name must fail")
        };
        match err {
            ShpError::UnknownAlgorithm { name, available } => {
                assert_eq!(name, "shp3");
                assert!(available.contains(&"shp2".to_string()));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn observer_receives_the_iteration_trace() {
        let graph = community_graph(4, 8);
        let spec = PartitionSpec::new(4).with_seed(3).with_max_iterations(10);
        let mut trace = TraceObserver::default();
        let outcome = Shp2.partition(&graph, &spec, &mut trace).unwrap();
        assert_eq!(trace.iterations.len(), outcome.iterations);
        assert!(!trace.levels.is_empty());
        assert_eq!(
            trace.iterations.iter().map(|e| e.moved).sum::<usize>() as u64,
            outcome.moves
        );
    }

    #[test]
    fn equal_specs_produce_equal_partitions() {
        let graph = community_graph(4, 6);
        let registry = AlgorithmRegistry::core();
        let spec = PartitionSpec::new(4).with_seed(11).with_max_iterations(8);
        for name in registry.names() {
            let a = registry
                .run(&name, &graph, &spec, &mut NoopObserver)
                .unwrap();
            let b = registry
                .run(&name, &graph, &spec, &mut NoopObserver)
                .unwrap();
            assert_eq!(
                a.partition.assignment(),
                b.partition.assignment(),
                "{name} must be deterministic for a fixed seed"
            );
        }
    }

    #[test]
    fn incremental_warm_start_limits_churn() {
        let graph = community_graph(4, 8);
        let spec = PartitionSpec::new(4).with_seed(3).with_max_iterations(20);
        let good = ShpK.partition(&graph, &spec, &mut NoopObserver).unwrap();
        let warm = IncrementalShp::default().with_previous(good.partition.clone());
        let refined = warm.partition(&graph, &spec, &mut NoopObserver).unwrap();
        assert!(refined.fanout <= good.fanout + 1e-9);
        assert!(refined.partition.hamming_distance(&good.partition) <= graph.num_data() / 2);
    }

    #[test]
    fn incremental_rejects_mismatched_warm_start() {
        let graph = community_graph(4, 8);
        let other = community_graph(4, 9);
        let spec = PartitionSpec::new(4).with_seed(3);
        let mut rng = Pcg64::seed_from_u64(1);
        let previous = Partition::new_random(&other, 4, &mut rng).unwrap();
        let err = IncrementalShp::default()
            .with_previous(previous)
            .partition(&graph, &spec, &mut NoopObserver)
            .unwrap_err();
        assert!(matches!(err, ShpError::PartitionMismatch { .. }));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(PartitionSpec::new(0).validate().is_err());
        assert!(PartitionSpec::new(4).with_epsilon(-1.0).validate().is_err());
        assert!(PartitionSpec::new(4)
            .with_objective(ObjectiveKind::ProbabilisticFanout { p: 1.5 })
            .validate()
            .is_err());
        assert!(matches!(
            PartitionSpec {
                workers: 0,
                ..PartitionSpec::new(4)
            }
            .validate(),
            Err(ShpError::InvalidConfig(_))
        ));
        assert!(PartitionSpec::new(4)
            .with_max_iterations(1)
            .validate()
            .is_ok());
        let graph = community_graph(2, 4);
        let err = Shp2
            .partition(&graph, &PartitionSpec::new(0), &mut NoopObserver)
            .unwrap_err();
        assert!(matches!(err, ShpError::InvalidConfig(_)));
    }

    #[test]
    fn enforce_balance_repairs_an_overfull_bucket() {
        let graph = community_graph(2, 8);
        // Everything in bucket 0 of 4: maximally imbalanced.
        let mut partition =
            Partition::from_assignment(&graph, 4, vec![0; graph.num_data()]).unwrap();
        let moved = enforce_balance(&mut partition, 0.0);
        assert!(moved > 0);
        assert!(
            partition.is_balanced(0.0),
            "weights {:?}",
            partition.bucket_weights()
        );
        // Repairing an already balanced partition is a no-op.
        assert_eq!(enforce_balance(&mut partition, 0.0), 0);
    }

    #[test]
    fn outcomes_respect_the_spec_epsilon() {
        let graph = community_graph(4, 8);
        let registry = AlgorithmRegistry::core();
        let spec = PartitionSpec::new(4)
            .with_seed(1)
            .with_epsilon(0.0)
            .with_max_iterations(5);
        for name in registry.names() {
            let outcome = registry
                .run(&name, &graph, &spec, &mut NoopObserver)
                .unwrap();
            assert!(
                outcome.partition.is_balanced(spec.epsilon),
                "{name} weights {:?}",
                outcome.partition.bucket_weights()
            );
        }
    }

    #[test]
    fn json_rendering_contains_every_field() {
        let graph = community_graph(2, 4);
        let spec = PartitionSpec::new(2).with_seed(1).with_max_iterations(5);
        let outcome = Shp2.partition(&graph, &spec, &mut NoopObserver).unwrap();
        let json = outcome.to_json();
        for needle in [
            "\"algorithm\":\"shp2\"",
            "\"num_buckets\":2",
            "\"fanout\":",
            "\"p_fanout\":",
            "\"imbalance\":",
            "\"iterations\":",
            "\"moves\":",
            "\"elapsed_micros\":",
            "\"assignment\":[",
        ] {
            assert!(json.contains(needle), "{json} should contain {needle}");
        }
        assert!(
            json.matches(',').count() >= graph.num_data() - 1,
            "assignment array should list every vertex"
        );
    }
}
