//! Configuration of the Social Hash Partitioner.

use crate::error::{ShpError, ShpResult};
use serde::{Deserialize, Serialize};

/// Which surrogate objective the local search optimizes (Section 3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObjectiveKind {
    /// Probabilistic fanout with the given probability `p ∈ (0, 1)`; the paper's default is
    /// `p = 0.5`.
    ProbabilisticFanout {
        /// Fanout probability.
        p: f64,
    },
    /// Direct (non-probabilistic) fanout — the `p → 1` limit (Lemma 1).
    Fanout,
    /// The clique-net objective — the `p → 0` limit, equivalent to weighted edge-cut on the
    /// clique-net graph (Lemma 2).
    CliqueNet,
}

impl ObjectiveKind {
    /// The paper's recommended default, `p = 0.5`.
    pub fn default_p_fanout() -> Self {
        ObjectiveKind::ProbabilisticFanout { p: 0.5 }
    }
}

/// How vertex swaps are coordinated between buckets each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapStrategy {
    /// The basic scheme of Algorithm 1: count proposals in the swap matrix `S` and move each
    /// candidate with probability `min(S_ij, S_ji) / S_ij`.
    Matrix,
    /// The advanced scheme of Section 3.4: bucket candidates into exponentially sized gain
    /// histograms, match bins from the highest gain downwards, and allow pairing positive with
    /// non-positive bins while the summed gain stays positive.
    Histogram,
}

/// How strictly balance is enforced when applying the selected moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceMode {
    /// Apply every selected move; the move probabilities make the exchange balanced in
    /// expectation (the paper's distributed behaviour).
    Expectation,
    /// Additionally cap each direction of a bucket pair at the number selected in the opposite
    /// direction, so bucket sizes are exactly preserved (the idealized serial behaviour).
    Strict,
}

/// Partitioning mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionMode {
    /// SHP-k: optimize all `k` buckets directly.
    Direct,
    /// SHP-r: recursive splitting with the given arity per level (`arity = 2` is the
    /// open-sourced SHP-2 recursive bisection).
    Recursive {
        /// Number of child buckets each group is split into per recursion level.
        arity: u32,
    },
}

impl PartitionMode {
    /// Recursive bisection (SHP-2).
    pub fn recursive_bisection() -> Self {
        PartitionMode::Recursive { arity: 2 }
    }
}

/// Full configuration of a partitioning run.
///
/// The defaults follow Section 4.2.4 of the paper: `p = 0.5`, `ε = 0.05`, 60 refinement
/// iterations for direct SHP-k and 20 iterations per bisection for SHP-2, histogram-based
/// swaps, and the final-p-fanout approximation during recursive splits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShpConfig {
    /// Number of buckets `k`.
    pub num_buckets: u32,
    /// Allowed imbalance ratio `ε ≥ 0`.
    pub epsilon: f64,
    /// Optimization objective.
    pub objective: ObjectiveKind,
    /// Direct (SHP-k) or recursive (SHP-2 / SHP-r) mode.
    pub mode: PartitionMode,
    /// Maximum refinement iterations (per bisection level in recursive mode).
    pub max_iterations: usize,
    /// Convergence threshold: stop when the fraction of moved data vertices in an iteration
    /// drops below this value.
    pub convergence_threshold: f64,
    /// Swap coordination strategy.
    pub swap_strategy: SwapStrategy,
    /// Balance enforcement when applying moves.
    pub balance_mode: BalanceMode,
    /// Allow moves that are not paired with an opposite move as long as the target bucket stays
    /// within the `ε` capacity (the "imbalanced swaps" refinement of Section 3.4).
    pub allow_imbalanced_moves: bool,
    /// In recursive mode, scale the allowed imbalance with the recursion depth
    /// (`ε · completed_splits / total_splits`, Section 3.4) instead of applying the full `ε`
    /// from the first split.
    pub scale_epsilon_by_level: bool,
    /// In recursive mode, optimize the approximation of the *final* p-fanout
    /// (`t · (1 − (1 − p/t)^r)`, Section 3.4) instead of the current-level p-fanout.
    pub optimize_final_p_fanout: bool,
    /// Seed for every random decision (initial partition and probabilistic moves).
    pub seed: u64,
    /// Worker threads for the parallel hot paths (gain computation, neighbor-data and
    /// histogram construction). Results are **bit-identical for every worker count** thanks to
    /// the rayon shim's ordered chunk reduction; `1` runs fully sequentially.
    pub workers: usize,
}

impl Default for ShpConfig {
    fn default() -> Self {
        ShpConfig {
            num_buckets: 2,
            epsilon: 0.05,
            objective: ObjectiveKind::default_p_fanout(),
            mode: PartitionMode::recursive_bisection(),
            max_iterations: 20,
            convergence_threshold: 0.001,
            swap_strategy: SwapStrategy::Histogram,
            balance_mode: BalanceMode::Expectation,
            allow_imbalanced_moves: false,
            scale_epsilon_by_level: true,
            optimize_final_p_fanout: true,
            seed: 0x5049_2017,
            workers: 1,
        }
    }
}

impl ShpConfig {
    /// Configuration for SHP-2 recursive bisection into `k` buckets (the open-sourced variant).
    pub fn recursive_bisection(k: u32) -> Self {
        ShpConfig {
            num_buckets: k,
            mode: PartitionMode::recursive_bisection(),
            max_iterations: 20,
            ..Default::default()
        }
    }

    /// Configuration for SHP-k direct partitioning into `k` buckets.
    pub fn direct(k: u32) -> Self {
        ShpConfig {
            num_buckets: k,
            mode: PartitionMode::Direct,
            max_iterations: 60,
            ..Default::default()
        }
    }

    /// Sets the fanout probability `p` (switching the objective to probabilistic fanout).
    pub fn with_p(mut self, p: f64) -> Self {
        self.objective = ObjectiveKind::ProbabilisticFanout { p };
        self
    }

    /// Sets the objective.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the allowed imbalance ratio.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the iteration limit.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the swap strategy.
    pub fn with_swap_strategy(mut self, strategy: SwapStrategy) -> Self {
        self.swap_strategy = strategy;
        self
    }

    /// Sets the balance mode.
    pub fn with_balance_mode(mut self, mode: BalanceMode) -> Self {
        self.balance_mode = mode;
        self
    }

    /// Sets the worker-thread count for the parallel hot paths (the produced partition does
    /// not depend on it).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`ShpError::InvalidConfig`] with a human-readable description on failure.
    pub fn validate(&self) -> ShpResult<()> {
        if self.num_buckets == 0 {
            return Err(ShpError::InvalidConfig(
                "num_buckets must be at least 1".into(),
            ));
        }
        if !(self.epsilon.is_finite() && self.epsilon >= 0.0) {
            return Err(ShpError::InvalidConfig(format!(
                "epsilon must be finite and non-negative, got {}",
                self.epsilon
            )));
        }
        if let ObjectiveKind::ProbabilisticFanout { p } = self.objective {
            if !(p > 0.0 && p < 1.0) {
                return Err(ShpError::InvalidConfig(format!(
                    "fanout probability must lie strictly between 0 and 1, got {p}"
                )));
            }
        }
        if let PartitionMode::Recursive { arity } = self.mode {
            if arity < 2 {
                return Err(ShpError::InvalidConfig(format!(
                    "recursive arity must be at least 2, got {arity}"
                )));
            }
        }
        if self.max_iterations == 0 {
            return Err(ShpError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(ShpError::InvalidConfig("workers must be at least 1".into()));
        }
        if !(0.0..=1.0).contains(&self.convergence_threshold) {
            return Err(ShpError::InvalidConfig(format!(
                "convergence_threshold must lie in [0, 1], got {}",
                self.convergence_threshold
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendations() {
        let c = ShpConfig::default();
        assert_eq!(c.objective, ObjectiveKind::ProbabilisticFanout { p: 0.5 });
        assert!((c.epsilon - 0.05).abs() < 1e-12);
        assert_eq!(c.mode, PartitionMode::Recursive { arity: 2 });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn preset_constructors() {
        let shp2 = ShpConfig::recursive_bisection(128);
        assert_eq!(shp2.num_buckets, 128);
        assert_eq!(shp2.mode, PartitionMode::Recursive { arity: 2 });
        assert_eq!(shp2.max_iterations, 20);

        let shpk = ShpConfig::direct(32);
        assert_eq!(shpk.mode, PartitionMode::Direct);
        assert_eq!(shpk.max_iterations, 60);
    }

    #[test]
    fn builder_style_setters() {
        let c = ShpConfig::direct(8)
            .with_p(0.25)
            .with_seed(7)
            .with_epsilon(0.1)
            .with_max_iterations(5)
            .with_swap_strategy(SwapStrategy::Matrix)
            .with_balance_mode(BalanceMode::Strict);
        assert_eq!(c.objective, ObjectiveKind::ProbabilisticFanout { p: 0.25 });
        assert_eq!(c.seed, 7);
        assert_eq!(c.max_iterations, 5);
        assert_eq!(c.swap_strategy, SwapStrategy::Matrix);
        assert_eq!(c.balance_mode, BalanceMode::Strict);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(ShpConfig {
            num_buckets: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ShpConfig::default().with_epsilon(-0.1).validate().is_err());
        assert!(ShpConfig::default()
            .with_epsilon(f64::NAN)
            .validate()
            .is_err());
        assert!(ShpConfig::default().with_p(0.0).validate().is_err());
        assert!(ShpConfig::default().with_p(1.0).validate().is_err());
        assert!(ShpConfig {
            max_iterations: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ShpConfig {
            mode: PartitionMode::Recursive { arity: 1 },
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ShpConfig {
            convergence_threshold: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ShpConfig {
            workers: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ShpConfig::default().with_workers(8).validate().is_ok());
    }

    #[test]
    fn fanout_and_clique_net_objectives_validate() {
        assert!(ShpConfig::default()
            .with_objective(ObjectiveKind::Fanout)
            .validate()
            .is_ok());
        assert!(ShpConfig::default()
            .with_objective(ObjectiveKind::CliqueNet)
            .validate()
            .is_ok());
    }
}
