//! SHP-k: direct k-way optimization (Algorithm 1 applied to all `k` buckets at once).

use crate::config::ShpConfig;
use crate::error::ShpResult;
use crate::gains::TargetConstraint;
use crate::neighbor_data::NeighborData;
use crate::objective::Objective;
use crate::refinement::Refiner;
use crate::report::{PartitionResult, RunReport};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_hypergraph::{average_fanout, average_p_fanout, BipartiteGraph, Partition};
use std::time::Instant;

/// Partitions `graph` into `config.num_buckets` buckets with direct k-way local search.
///
/// The initial partition assigns every data vertex to an independently uniform random bucket
/// (which for large graphs is nearly perfectly balanced); refinement iterations then swap
/// vertices between buckets until convergence or the iteration limit.
///
/// # Errors
/// Returns [`ShpError::InvalidConfig`](crate::ShpError::InvalidConfig) when the configuration
/// is invalid.
pub fn partition_direct(graph: &BipartiteGraph, config: &ShpConfig) -> ShpResult<PartitionResult> {
    config.validate()?;
    let _span = shp_telemetry::Span::enter("partition/direct");
    let start = Instant::now();
    let mut rng = Pcg64::seed_from_u64(config.seed);
    let mut partition = Partition::new_random(graph, config.num_buckets, &mut rng)?;
    let history = refine_in_place(graph, config, &mut partition, None);
    let elapsed = start.elapsed();

    let report = RunReport {
        final_fanout: average_fanout(graph, &partition),
        final_p_fanout: average_p_fanout(graph, &partition, 0.5),
        imbalance: partition.imbalance(),
        history,
        levels: Vec::new(),
        elapsed,
    };
    Ok(PartitionResult { partition, report })
}

/// Runs direct k-way refinement starting from an existing partition (used by the incremental
/// update path and by tests). `max_iterations_override` replaces the configured limit when
/// given.
pub fn refine_in_place(
    graph: &BipartiteGraph,
    config: &ShpConfig,
    partition: &mut Partition,
    max_iterations_override: Option<usize>,
) -> Vec<crate::refinement::IterationStats> {
    let objective = Objective::from_kind(config.objective);
    let constraint = TargetConstraint::all(config.num_buckets);
    let refiner = Refiner::new(
        graph,
        objective,
        constraint,
        config.swap_strategy,
        config.balance_mode,
        config.allow_imbalanced_moves,
        config.epsilon,
        config.seed,
    )
    .with_workers(config.workers);
    let mut nd = NeighborData::build_with_workers(graph, partition, config.workers);
    let max_iterations = max_iterations_override.unwrap_or(config.max_iterations);
    refiner.run(
        partition,
        &mut nd,
        max_iterations,
        config.convergence_threshold,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BalanceMode, ObjectiveKind, ShpConfig};
    use shp_hypergraph::{weighted_edge_cut, GraphBuilder};

    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        for g in 0..groups.saturating_sub(1) {
            b.add_query([g * size, (g + 1) * size]);
        }
        b.build().unwrap()
    }

    #[test]
    fn direct_partitioning_improves_over_random() {
        let graph = community_graph(8, 8);
        let config = ShpConfig::direct(8).with_seed(1).with_max_iterations(40);
        let result = partition_direct(&graph, &config).unwrap();

        let mut rng = Pcg64::seed_from_u64(123);
        let random = Partition::new_random(&graph, 8, &mut rng).unwrap();
        let random_fanout = average_fanout(&graph, &random);
        assert!(
            result.report.final_fanout < random_fanout * 0.6,
            "SHP-k fanout {} should be well below random {}",
            result.report.final_fanout,
            random_fanout
        );
        assert_eq!(result.partition.num_buckets(), 8);
        assert!(result.report.total_iterations() >= 1);
        assert!(result.report.imbalance < 0.5);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let graph = community_graph(2, 4);
        let config = ShpConfig::direct(0);
        assert!(partition_direct(&graph, &config).is_err());
    }

    #[test]
    fn direct_partitioning_is_deterministic() {
        let graph = community_graph(4, 6);
        let config = ShpConfig::direct(4).with_seed(77).with_max_iterations(15);
        let a = partition_direct(&graph, &config).unwrap();
        let b = partition_direct(&graph, &config).unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.report.history, b.report.history);
    }

    #[test]
    fn clique_net_objective_reduces_edge_cut() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4)
            .with_objective(ObjectiveKind::CliqueNet)
            .with_seed(3)
            .with_max_iterations(30);
        let result = partition_direct(&graph, &config).unwrap();
        let mut rng = Pcg64::seed_from_u64(3);
        let random = Partition::new_random(&graph, 4, &mut rng).unwrap();
        assert!(
            weighted_edge_cut(&graph, &result.partition) < weighted_edge_cut(&graph, &random),
            "clique-net optimization should reduce the weighted edge cut"
        );
    }

    #[test]
    fn strict_balance_keeps_initial_weights() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4)
            .with_seed(5)
            .with_balance_mode(BalanceMode::Strict)
            .with_max_iterations(20);
        let result = partition_direct(&graph, &config).unwrap();
        let mut rng = Pcg64::seed_from_u64(5);
        let initial = Partition::new_random(&graph, 4, &mut rng).unwrap();
        assert_eq!(result.partition.bucket_weights(), initial.bucket_weights());
    }

    #[test]
    fn single_bucket_partitioning_is_trivial() {
        let graph = community_graph(2, 4);
        let config = ShpConfig::direct(1).with_max_iterations(3);
        let result = partition_direct(&graph, &config).unwrap();
        assert_eq!(result.partition.num_buckets(), 1);
        assert!((result.report.final_fanout - 1.0).abs() < 1e-12);
        assert_eq!(result.report.total_moves(), 0);
    }
}
