//! The distributed execution path: SHP as a vertex-centric program (Figure 3 of the paper).
//!
//! Every iteration of Algorithm 1 is expressed as four supersteps on the BSP engine of
//! `shp-vertex-centric`:
//!
//! 1. **Collect buckets** — every data vertex sends its current bucket to its adjacent query
//!    vertices.
//! 2. **Neighbor data** — every query vertex aggregates the received buckets into its neighbor
//!    data `n_i(q)` and sends the non-zero entries back to its adjacent data vertices.
//! 3. **Move gains** — every data vertex computes its move gains from the received neighbor
//!    data, picks a target bucket, and contributes its proposal to the master's gain
//!    histograms (the aggregate).
//! 4. **Apply moves** — the master has turned the aggregated histograms into move
//!    probabilities (the global value); every data vertex flips its deterministic coin and
//!    moves accordingly.
//!
//! The result is numerically equivalent to the in-process path for the same seed and swap
//! strategy; what the distributed path adds is per-superstep communication accounting and the
//! ability to scale the number of simulated workers (Figures 5a/5b, Table 3).

use crate::config::{PartitionMode, ShpConfig, SwapStrategy};
use crate::error::ShpResult;
use crate::gains::{MoveProposal, TargetConstraint};
use crate::histogram::{GainHistogramSet, NUM_BINS};
use crate::objective::Objective;
use crate::pair_table::PairTable;
use crate::refinement::unit_hash;
use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use shp_hypergraph::{average_fanout, average_p_fanout, BipartiteGraph, BucketId, Partition};
use shp_vertex_centric::{
    Context, Engine, EngineConfig, ExecutionMetrics, MasterOutcome, TopologyBuilder, VertexProgram,
};
use std::time::Instant;

/// Per-iteration statistics reported by the distributed master.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedIterationStats {
    /// Iteration index within the current engine run.
    pub iteration: usize,
    /// Number of data vertices moved.
    pub moved: u64,
    /// Average query fanout observed at the start of the iteration.
    pub fanout: f64,
}

/// Result of a distributed partitioning run.
#[derive(Debug, Clone)]
pub struct DistributedRunResult {
    /// The final bucket assignment.
    pub partition: Partition,
    /// Per-iteration statistics (concatenated over recursion levels in recursive mode).
    pub history: Vec<DistributedIterationStats>,
    /// Engine communication metrics (concatenated over recursion levels).
    pub metrics: ExecutionMetrics,
    /// Average fanout of the final partition.
    pub final_fanout: f64,
    /// Average p-fanout (p = 0.5) of the final partition.
    pub final_p_fanout: f64,
    /// Total wall-clock time.
    pub elapsed: std::time::Duration,
}

/// Vertex value: data vertices carry their bucket and pending proposal, query vertices are
/// stateless (their neighbor data is recomputed every iteration from fresh messages).
#[derive(Debug, Clone)]
enum ShpValue {
    Data {
        bucket: BucketId,
        proposal: Option<(BucketId, f64)>,
    },
    Query,
}

/// Messages exchanged along bipartite edges.
#[derive(Debug, Clone)]
enum ShpMessage {
    /// Data → query: the sender's current bucket.
    Bucket(BucketId),
    /// Query → data: the query's non-zero neighbor data.
    NeighborData(Vec<(BucketId, u32)>),
}

/// Per-superstep aggregate collected by the master.
///
/// A vertex contributes at most one `proposal`; proposals are folded into the dense
/// `histograms` table by [`VertexProgram::merge_aggregates`] as the per-worker accumulator
/// absorbs them, so the per-vertex contribution stays O(1) (no per-vertex table allocation)
/// while each worker builds exactly one histogram set per superstep.
#[derive(Debug, Clone, Default)]
struct ShpAggregate {
    histograms: GainHistogramSet,
    proposal: Option<MoveProposal>,
    moved: u64,
    fanout_sum: u64,
}

/// Global value broadcast by the master.
#[derive(Debug, Clone, Default)]
struct ShpGlobal {
    iteration: usize,
    probabilities: Option<PairTable<[f64; NUM_BINS]>>,
    matrix_probabilities: Option<PairTable<f64>>,
    pending_fanout: f64,
    history: Vec<DistributedIterationStats>,
}

/// The SHP vertex program.
struct ShpProgram {
    num_data: usize,
    num_queries: usize,
    objective: Objective,
    constraint: TargetConstraint,
    swap_strategy: SwapStrategy,
    max_iterations: usize,
    convergence_threshold: f64,
    seed: u64,
}

impl ShpProgram {
    fn allowed_targets(&self, from: BucketId) -> Option<&[BucketId]> {
        match &self.constraint {
            TargetConstraint::All { .. } => None,
            TargetConstraint::Siblings { allowed } => {
                allowed.get(from as usize).map(|v| v.as_slice())
            }
        }
    }
}

impl VertexProgram for ShpProgram {
    type Value = ShpValue;
    type Message = ShpMessage;
    type Aggregate = ShpAggregate;
    type Global = ShpGlobal;

    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        vertex: u32,
        value: &mut ShpValue,
        messages: &[ShpMessage],
    ) {
        let phase = ctx.superstep() % 4;
        match value {
            ShpValue::Data { bucket, proposal } => match phase {
                0 => {
                    // Superstep 1: send the current bucket to all adjacent queries.
                    ctx.send_to_neighbors(ShpMessage::Bucket(*bucket));
                }
                2 => {
                    // Superstep 3: compute move gains from the received neighbor data. The
                    // contribution carries the bare proposal; the per-worker accumulator folds
                    // it into its dense histogram table (see `merge_aggregates`).
                    *proposal = compute_distributed_proposal(self, *bucket, messages);
                    if let Some((to, gain)) = *proposal {
                        ctx.aggregate(ShpAggregate {
                            proposal: Some(MoveProposal {
                                vertex,
                                from: *bucket,
                                to,
                                gain,
                            }),
                            ..Default::default()
                        });
                    }
                }
                3 => {
                    // Superstep 4: apply the move with the master-provided probability.
                    if let Some((to, gain)) = proposal.take() {
                        let prob = lookup_probability(ctx.global(), *bucket, to, gain);
                        let iteration = ctx.global().iteration as u64;
                        if prob > 0.0 && unit_hash(self.seed, iteration, vertex as u64) < prob {
                            *bucket = to;
                            ctx.aggregate(ShpAggregate {
                                moved: 1,
                                ..Default::default()
                            });
                        }
                    }
                }
                _ => {}
            },
            ShpValue::Query => {
                if phase == 1 {
                    // Superstep 2: aggregate buckets into neighbor data, report fanout, and send
                    // the non-zero entries back to the adjacent data vertices.
                    let mut counts: Vec<(BucketId, u32)> = Vec::new();
                    for m in messages {
                        if let ShpMessage::Bucket(b) = m {
                            match counts.binary_search_by_key(b, |&(bb, _)| bb) {
                                Ok(idx) => counts[idx].1 += 1,
                                Err(idx) => counts.insert(idx, (*b, 1)),
                            }
                        }
                    }
                    if !counts.is_empty() {
                        ctx.aggregate(ShpAggregate {
                            fanout_sum: counts.len() as u64,
                            ..Default::default()
                        });
                        ctx.send_to_neighbors(ShpMessage::NeighborData(counts));
                    }
                }
            }
        }
    }

    fn merge_aggregates(&self, mut a: ShpAggregate, b: ShpAggregate) -> ShpAggregate {
        a.histograms.merge(&b.histograms);
        // Fold pending single-proposal contributions into the accumulator's table; histogram
        // bins are commutative counters, so any merge association yields the same set.
        if let Some(p) = b.proposal {
            a.histograms.record(&p);
        }
        if let Some(p) = a.proposal.take() {
            a.histograms.record(&p);
        }
        a.moved += b.moved;
        a.fanout_sum += b.fanout_sum;
        a
    }

    fn master_compute(
        &self,
        superstep: usize,
        aggregate: ShpAggregate,
        previous: &ShpGlobal,
    ) -> MasterOutcome<ShpGlobal> {
        let mut global = previous.clone();
        match superstep % 4 {
            1 => {
                // End of the neighbor-data superstep: remember the fanout observed this
                // iteration.
                global.pending_fanout = if self.num_queries == 0 {
                    0.0
                } else {
                    aggregate.fanout_sum as f64 / self.num_queries as f64
                };
                MasterOutcome::Continue(global)
            }
            2 => {
                // End of the gain superstep: turn the aggregated histograms into move
                // probabilities.
                match self.swap_strategy {
                    SwapStrategy::Histogram => {
                        global.probabilities = Some(aggregate.histograms.match_bins());
                        global.matrix_probabilities = None;
                    }
                    SwapStrategy::Matrix => {
                        global.matrix_probabilities =
                            Some(matrix_probabilities(&aggregate.histograms));
                        global.probabilities = None;
                    }
                }
                MasterOutcome::Continue(global)
            }
            3 => {
                // End of the move superstep: record history and decide whether to continue.
                let moved = aggregate.moved;
                global.history.push(DistributedIterationStats {
                    iteration: global.iteration,
                    moved,
                    fanout: global.pending_fanout,
                });
                global.iteration += 1;
                global.probabilities = None;
                global.matrix_probabilities = None;
                let moved_fraction = moved as f64 / self.num_data.max(1) as f64;
                if global.iteration >= self.max_iterations
                    || moved_fraction < self.convergence_threshold
                {
                    // Halting here would discard the global carrying the final history entry
                    // (MasterOutcome::Halt keeps the *previous* global), so broadcast it with
                    // the iteration counter saturated and halt at the start of the next
                    // superstep instead.
                    global.iteration = self.max_iterations;
                }
                MasterOutcome::Continue(global)
            }
            _ => {
                // End of the bucket-collection superstep: halt cleanly if the previous
                // iteration decided to stop.
                if global.iteration >= self.max_iterations {
                    MasterOutcome::Halt
                } else {
                    MasterOutcome::Continue(global)
                }
            }
        }
    }

    fn message_size(&self, message: &ShpMessage) -> usize {
        match message {
            ShpMessage::Bucket(_) => 4,
            ShpMessage::NeighborData(counts) => 8 * counts.len(),
        }
    }
}

/// Computes the best proposal of a data vertex from the neighbor data it received.
///
/// Candidate deltas live in a bucket-sorted `Vec` (binary-search insertion) instead of a hash
/// map: the candidate set is bounded by the received fanout, accumulation per bucket happens in
/// the same message-visit order, and the final scan needs no sort — the result is bit-identical
/// to the previous hash-map implementation without any hashing.
fn compute_distributed_proposal(
    program: &ShpProgram,
    from: BucketId,
    messages: &[ShpMessage],
) -> Option<(BucketId, f64)> {
    // Gain of moving to a bucket none of the adjacent queries touch, plus per-candidate deltas.
    let mut base_gain = 0.0;
    let mut deltas: Vec<(BucketId, f64)> = Vec::new();
    let add_delta = |deltas: &mut Vec<(BucketId, f64)>, b: BucketId, adjustment: f64| match deltas
        .binary_search_by_key(&b, |&(bb, _)| bb)
    {
        Ok(idx) => deltas[idx].1 += adjustment,
        Err(idx) => deltas.insert(idx, (b, adjustment)),
    };
    let allowed = program.allowed_targets(from);
    for message in messages {
        let counts = match message {
            ShpMessage::NeighborData(counts) => counts,
            ShpMessage::Bucket(_) => continue,
        };
        let n_src = counts
            .iter()
            .find(|&&(b, _)| b == from)
            .map(|&(_, c)| c)
            .unwrap_or(1);
        base_gain += program.objective.per_query_gain(n_src, 0);
        match allowed {
            None => {
                for &(b, c) in counts {
                    if b == from {
                        continue;
                    }
                    let adjustment = program.objective.per_query_gain(n_src, c)
                        - program.objective.per_query_gain(n_src, 0);
                    add_delta(&mut deltas, b, adjustment);
                }
            }
            Some(targets) => {
                for &b in targets {
                    if b == from {
                        continue;
                    }
                    let n_dst = counts
                        .iter()
                        .find(|&&(bb, _)| bb == b)
                        .map(|&(_, c)| c)
                        .unwrap_or(0);
                    let adjustment = program.objective.per_query_gain(n_src, n_dst)
                        - program.objective.per_query_gain(n_src, 0);
                    add_delta(&mut deltas, b, adjustment);
                }
            }
        }
    }
    if let Some(targets) = allowed {
        // Ensure every allowed sibling is a candidate even when untouched by any query.
        for &b in targets {
            if b != from {
                if let Err(idx) = deltas.binary_search_by_key(&b, |&(bb, _)| bb) {
                    deltas.insert(idx, (b, 0.0));
                }
            }
        }
    }
    let mut best: Option<(BucketId, f64)> = None;
    for (b, delta) in deltas {
        let gain = base_gain + delta;
        best = match best {
            Some((bb, bg)) if bg > gain || (bg == gain && bb <= b) => Some((bb, bg)),
            _ => Some((b, gain)),
        };
    }
    best
}

/// Looks up the move probability for a proposal in the broadcast global value.
fn lookup_probability(global: &ShpGlobal, from: BucketId, to: BucketId, gain: f64) -> f64 {
    if let Some(table) = &global.probabilities {
        return table
            .get(from, to)
            .map(|bins| bins[crate::histogram::bin_index(gain)])
            .unwrap_or(0.0);
    }
    if let Some(table) = &global.matrix_probabilities {
        if gain > 0.0 {
            return table.get(from, to).copied().unwrap_or(0.0);
        }
    }
    0.0
}

/// Derives the basic swap-matrix probabilities `min(S_ij, S_ji)/S_ij` from gain histograms by
/// counting the positive-gain candidates of every ordered pair.
fn matrix_probabilities(set: &GainHistogramSet) -> PairTable<f64> {
    let positive_count = |from: BucketId, to: BucketId| -> u64 {
        set.get(from, to)
            .map(|h| {
                (0..NUM_BINS)
                    .filter(|&b| crate::histogram::bin_representative(b) > 0.0)
                    .map(|b| h.count(b))
                    .sum()
            })
            .unwrap_or(0)
    };
    // The match_bins result contains exactly the ordered pairs recorded (both directions).
    let matched = set.match_bins();
    let mut seen: Vec<(BucketId, BucketId)> = matched.keys().collect();
    seen.sort_unstable();
    seen.dedup();
    let mut probs = PairTable::new(matched.num_buckets(), 0.0f64);
    for (i, j) in seen {
        let s_ij = positive_count(i, j);
        if s_ij == 0 {
            continue;
        }
        let s_ji = positive_count(j, i);
        probs.insert(i, j, s_ij.min(s_ji) as f64 / s_ij as f64);
    }
    probs
}

/// Runs the distributed SHP on `num_workers` simulated workers.
///
/// Direct mode runs one engine job; recursive mode runs one engine job per recursion level with
/// the appropriate sibling constraints, exactly as the Giraph implementation schedules one job
/// per split level.
///
/// # Errors
/// Returns [`ShpError::InvalidConfig`](crate::ShpError::InvalidConfig) when the configuration
/// is invalid.
pub fn partition_distributed(
    graph: &BipartiteGraph,
    config: &ShpConfig,
    num_workers: usize,
) -> ShpResult<DistributedRunResult> {
    config.validate()?;
    let start = Instant::now();
    let mut rng = Pcg64::seed_from_u64(config.seed);
    let mut metrics = ExecutionMetrics::new(num_workers);
    let mut history = Vec::new();

    let partition = match config.mode {
        PartitionMode::Direct => {
            let initial: Vec<BucketId> = (0..graph.num_data())
                .map(|_| rng.gen_range(0..config.num_buckets))
                .collect();
            let objective = Objective::from_kind(config.objective);
            let constraint = TargetConstraint::all(config.num_buckets);
            let final_assignment = run_level(
                graph,
                config,
                &initial,
                objective,
                constraint,
                config.max_iterations,
                num_workers,
                config.seed,
                &mut metrics,
                &mut history,
            );
            Partition::from_assignment(graph, config.num_buckets, final_assignment)?
        }
        PartitionMode::Recursive { arity } => {
            let mut assignment: Vec<BucketId> = vec![0; graph.num_data()];
            let mut targets: Vec<u32> = vec![config.num_buckets];
            let mut level = 0usize;
            while targets.iter().any(|&t| t > 1) {
                // Split every group into up to `arity` children.
                let mut children_of: Vec<Vec<BucketId>> = Vec::with_capacity(targets.len());
                let mut child_targets: Vec<u32> = Vec::new();
                for &t in &targets {
                    let num_children = t.min(arity).max(1);
                    let mut ids = Vec::new();
                    for c in 0..num_children {
                        ids.push(child_targets.len() as BucketId);
                        let base = t / num_children;
                        let extra = t % num_children;
                        child_targets.push(if c < extra { base + 1 } else { base });
                    }
                    children_of.push(ids);
                }
                let seed = config
                    .seed
                    .wrapping_add((level as u64).wrapping_mul(0x9E37_79B9));
                // Random initial assignment among the children, weighted by child targets.
                for (v, slot) in assignment.iter_mut().enumerate() {
                    let children = &children_of[*slot as usize];
                    *slot = if children.len() == 1 {
                        children[0]
                    } else {
                        let total: u32 = children.iter().map(|&c| child_targets[c as usize]).sum();
                        let r = unit_hash(seed, 0x5EED, v as u64) * total as f64;
                        let mut acc = 0.0;
                        let mut chosen = children[children.len() - 1];
                        for &c in children {
                            acc += child_targets[c as usize] as f64;
                            if r < acc {
                                chosen = c;
                                break;
                            }
                        }
                        chosen
                    };
                }
                let sibling_groups: Vec<Vec<BucketId>> = children_of
                    .iter()
                    .filter(|c| c.len() > 1)
                    .cloned()
                    .collect();
                let constraint = TargetConstraint::sibling_groups(&sibling_groups);
                let mut objective = Objective::from_kind(config.objective);
                if config.optimize_final_p_fanout {
                    objective = objective
                        .for_final_splits(child_targets.iter().copied().max().unwrap_or(1));
                }
                assignment = run_level(
                    graph,
                    config,
                    &assignment,
                    objective,
                    constraint,
                    config.max_iterations,
                    num_workers,
                    seed,
                    &mut metrics,
                    &mut history,
                );
                targets = child_targets;
                level += 1;
            }
            Partition::from_assignment(graph, config.num_buckets, assignment)?
        }
    };

    Ok(DistributedRunResult {
        final_fanout: average_fanout(graph, &partition),
        final_p_fanout: average_p_fanout(graph, &partition, 0.5),
        partition,
        history,
        metrics,
        elapsed: start.elapsed(),
    })
}

/// Runs one engine job (one recursion level or the whole direct optimization), returning the
/// final bucket assignment.
#[allow(clippy::too_many_arguments)]
fn run_level(
    graph: &BipartiteGraph,
    config: &ShpConfig,
    initial_assignment: &[BucketId],
    objective: Objective,
    constraint: TargetConstraint,
    max_iterations: usize,
    num_workers: usize,
    seed: u64,
    metrics: &mut ExecutionMetrics,
    history: &mut Vec<DistributedIterationStats>,
) -> Vec<BucketId> {
    let num_data = graph.num_data();
    let num_queries = graph.num_queries();
    // Vertex universe: data vertices first, then query vertices.
    let mut topo = TopologyBuilder::new(num_data + num_queries);
    for (q, v) in graph.edges() {
        topo.add_undirected_edge(num_data as u32 + q, v);
    }
    let mut values: Vec<ShpValue> = Vec::with_capacity(num_data + num_queries);
    for &b in initial_assignment {
        values.push(ShpValue::Data {
            bucket: b,
            proposal: None,
        });
    }
    for _ in 0..num_queries {
        values.push(ShpValue::Query);
    }
    let program = ShpProgram {
        num_data,
        num_queries,
        objective,
        constraint,
        swap_strategy: config.swap_strategy,
        max_iterations,
        convergence_threshold: config.convergence_threshold,
        seed,
    };
    let engine_config = EngineConfig::new(num_workers, max_iterations * 4 + 4);
    let mut engine = Engine::new(program, topo.build(), values, engine_config);
    engine.run();

    let base = history.len();
    for stat in &engine.global().history {
        history.push(DistributedIterationStats {
            iteration: base + stat.iteration,
            moved: stat.moved,
            fanout: stat.fanout,
        });
    }
    metrics.absorb(engine.metrics());

    engine
        .values()
        .into_iter()
        .take(num_data)
        .map(|v| match v {
            ShpValue::Data { bucket, .. } => bucket,
            ShpValue::Query => unreachable!("data vertices occupy the first num_data slots"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        for g in 0..groups.saturating_sub(1) {
            b.add_query([g * size, (g + 1) * size]);
        }
        b.build().unwrap()
    }

    #[test]
    fn distributed_direct_reduces_fanout() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4).with_seed(3).with_max_iterations(20);
        let result = partition_distributed(&graph, &config, 4).unwrap();
        assert_eq!(result.partition.num_buckets(), 4);
        let first = result.history.first().unwrap().fanout;
        assert!(
            result.final_fanout < first,
            "fanout should improve: initial {first}, final {}",
            result.final_fanout
        );
        assert!(result.metrics.total_messages() > 0);
        assert!(!result.history.is_empty());
    }

    #[test]
    fn distributed_recursive_reaches_k_buckets() {
        let graph = community_graph(8, 6);
        let config = ShpConfig::recursive_bisection(8)
            .with_seed(5)
            .with_max_iterations(10);
        let result = partition_distributed(&graph, &config, 4).unwrap();
        assert_eq!(result.partition.num_buckets(), 8);
        assert!(result.partition.bucket_weights().iter().all(|&w| w > 0));
        assert!(result.final_fanout < 4.0);
    }

    #[test]
    fn distributed_results_do_not_depend_on_worker_count() {
        let graph = community_graph(4, 6);
        let config = ShpConfig::direct(4).with_seed(9).with_max_iterations(8);
        let one = partition_distributed(&graph, &config, 1).unwrap();
        let four = partition_distributed(&graph, &config, 4).unwrap();
        let eight = partition_distributed(&graph, &config, 8).unwrap();
        assert_eq!(one.partition.assignment(), four.partition.assignment());
        assert_eq!(four.partition.assignment(), eight.partition.assignment());
    }

    #[test]
    fn communication_volume_is_bounded_by_fanout_times_edges() {
        // Section 3.3: the heavy superstep sends at most fanout·|E| neighbor-data entries; in
        // bytes this is 8·fanout·|E| with our 8-byte entries, plus |E| bucket messages of
        // 4 bytes. Check the recorded totals stay within this bound per iteration.
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4).with_seed(1).with_max_iterations(5);
        let result = partition_distributed(&graph, &config, 4).unwrap();
        let iterations = result.history.len() as u64;
        let k = 4u64;
        let bound_per_iter = 4 * graph.num_edges() as u64 + 8 * k * graph.num_edges() as u64;
        assert!(
            result.metrics.total_bytes() <= bound_per_iter * iterations,
            "bytes {} exceed bound {}",
            result.metrics.total_bytes(),
            bound_per_iter * iterations
        );
    }

    #[test]
    fn matrix_swap_strategy_also_works_distributed() {
        let graph = community_graph(4, 6);
        let config = ShpConfig::direct(4)
            .with_seed(2)
            .with_max_iterations(15)
            .with_swap_strategy(SwapStrategy::Matrix);
        let result = partition_distributed(&graph, &config, 2).unwrap();
        let first = result.history.first().unwrap().fanout;
        assert!(result.final_fanout <= first);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let graph = community_graph(2, 4);
        assert!(partition_distributed(&graph, &ShpConfig::direct(0), 2).is_err());
    }
}
