//! The typed error of every partitioning entry point.
//!
//! Before the unified API, `shp-core` reported failures as `Result<_, String>`; callers could
//! neither match on the failure kind nor compose errors across crates with `?`. [`ShpError`]
//! replaces that: graph-layer failures ([`shp_hypergraph::GraphError`]) convert via `From`, so
//! one `?` chain runs from file parsing through partitioning to the CLI exit code.

use shp_hypergraph::GraphError;
use std::fmt;

/// Convenience result alias used by the unified partitioning API.
pub type ShpResult<T> = std::result::Result<T, ShpError>;

/// Errors produced by partitioner construction, configuration validation, registry lookup, and
/// partitioning runs.
#[derive(Debug)]
pub enum ShpError {
    /// A configuration or [`PartitionSpec`](crate::api::PartitionSpec) parameter is invalid
    /// (zero buckets, `p` outside `(0, 1)`, negative `ε`, …).
    InvalidConfig(String),
    /// A graph-layer failure: construction, IO, or partition validation.
    Graph(GraphError),
    /// A registry lookup named an algorithm that is not registered.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
        /// Every name the registry does know, sorted.
        available: Vec<String>,
    },
    /// A warm-start / previous partition does not match the graph or spec it is paired with.
    PartitionMismatch {
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// An incremental run's migration budget is smaller than the number of moves balance
    /// repair alone requires, so no budget-respecting partition exists.
    InfeasibleBudget {
        /// Moves the balance repair of the previous partition needs at minimum.
        required: usize,
        /// The configured `max_moves` budget.
        budget: usize,
    },
    /// A command-line or driver argument could not be parsed.
    InvalidArgument(String),
    /// A failure in a subsystem driven through the unified API (serving, workload replay, …).
    Runtime(String),
}

impl ShpError {
    /// Wraps any displayable subsystem failure as a [`ShpError::Runtime`].
    pub fn runtime<E: fmt::Display>(err: E) -> Self {
        ShpError::Runtime(err.to_string())
    }
}

impl fmt::Display for ShpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShpError::InvalidConfig(message) => write!(f, "invalid configuration: {message}"),
            ShpError::Graph(err) => write!(f, "{err}"),
            ShpError::UnknownAlgorithm { name, available } => write!(
                f,
                "unknown algorithm {name:?} (available: {})",
                available.join(", ")
            ),
            ShpError::PartitionMismatch { message } => {
                write!(f, "partition mismatch: {message}")
            }
            ShpError::InfeasibleBudget { required, budget } => write!(
                f,
                "migration budget {budget} is infeasible: balance repair alone requires \
                 {required} moves"
            ),
            ShpError::InvalidArgument(message) => write!(f, "{message}"),
            ShpError::Runtime(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ShpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShpError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GraphError> for ShpError {
    fn from(err: GraphError) -> Self {
        ShpError::Graph(err)
    }
}

impl From<std::io::Error> for ShpError {
    fn from(err: std::io::Error) -> Self {
        ShpError::Graph(GraphError::Io(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ShpError, &str)> = vec![
            (
                ShpError::InvalidConfig("num_buckets must be at least 1".into()),
                "invalid configuration",
            ),
            (
                ShpError::UnknownAlgorithm {
                    name: "shp3".into(),
                    available: vec!["shp2".into(), "shpk".into()],
                },
                "shp2, shpk",
            ),
            (
                ShpError::PartitionMismatch {
                    message: "previous covers 5 vertices".into(),
                },
                "partition mismatch",
            ),
            (
                ShpError::InfeasibleBudget {
                    required: 12,
                    budget: 5,
                },
                "requires 12 moves",
            ),
            (
                ShpError::InvalidArgument("--p needs a number".into()),
                "--p",
            ),
            (ShpError::Runtime("shard 3 unreachable".into()), "shard 3"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn graph_errors_convert_and_source() {
        let err: ShpError = GraphError::EmptyGraph.into();
        assert!(err.to_string().contains("non-empty"));
        assert!(std::error::Error::source(&err).is_some());

        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: ShpError = io.into();
        assert!(matches!(err, ShpError::Graph(GraphError::Io(_))));
    }

    #[test]
    fn runtime_wraps_any_display() {
        let err = ShpError::runtime(std::fmt::Error);
        assert!(matches!(err, ShpError::Runtime(_)));
    }
}
