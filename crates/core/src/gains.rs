//! Move-gain computation: for every data vertex, the best target bucket and its gain.
//!
//! This is the "compute move gains / find best bucket" phase of Algorithm 1. Gains are computed
//! from the per-query [`NeighborData`] in `O(Σ_{q ∈ N(v)} fanout(q))` per vertex — the zero
//! entries of the neighbor data never need to be touched, mirroring the communication
//! optimization of Section 3.3.
//!
//! # The scratch kernel and its determinism contract
//!
//! The hot kernel accumulates per-candidate-bucket gain deltas in a [`GainScratch`]: a dense
//! `Vec<f64>` of size `k` plus a touched-bucket stack, allocated **once per worker** (via
//! `rayon::pool::filter_map_index_with`) and reset in `O(touched)` after each vertex. Compared
//! to the original per-vertex `HashMap<BucketId, f64>` kernel this removes all hashing, heap
//! allocation, and large sorts from the inner loop — only the tiny touched list is sorted.
//!
//! The scratch kernel is **bit-identical** to the hash-map kernel by construction:
//!
//! * per-bucket delta accumulation follows the exact same visit order (outer loop over the
//!   vertex's queries, inner loop over each query's non-zero entries), so every slot sees the
//!   identical sequence of f64 additions;
//! * candidates are considered in ascending bucket order (the touched stack is sorted, matching
//!   the sorted key collection of the hash-map kernel), with the same tie-breaking;
//! * the `least_loaded` fallback candidate is handled identically (considered last, only when
//!   untouched).
//!
//! The original kernel is retained as [`GainKernel::LegacyHashMap`], selectable through
//! [`compute_proposals_with_kernel`], solely so the conformance suite and the benchmark
//! harness can assert bit-identical `MoveProposal` lists (including float bit patterns)
//! between the two implementations. Production call sites always use [`GainKernel::Scratch`].

use crate::neighbor_data::NeighborData;
use crate::objective::Objective;
use shp_hypergraph::{BipartiteGraph, BucketId, DataId, Partition};
use std::collections::HashMap;

/// A proposed move of one data vertex to its best target bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveProposal {
    /// The moving data vertex.
    pub vertex: DataId,
    /// Its current bucket.
    pub from: BucketId,
    /// The proposed target bucket.
    pub to: BucketId,
    /// Gain (objective reduction) of the move; may be non-positive when non-positive proposals
    /// are requested (histogram strategy).
    pub gain: f64,
}

/// Restricts which buckets a vertex may move to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetConstraint {
    /// Any of the `k` buckets (direct SHP-k optimization).
    All {
        /// Total number of buckets.
        k: u32,
    },
    /// Recursive splitting: a vertex currently in bucket `b` may only move to `allowed[b]`
    /// (its sibling buckets at the current recursion level).
    Siblings {
        /// Allowed target buckets per current bucket.
        allowed: Vec<Vec<BucketId>>,
    },
}

impl TargetConstraint {
    /// Constraint allowing movement between every pair of the `k` buckets.
    pub fn all(k: u32) -> Self {
        TargetConstraint::All { k }
    }

    /// Constraint allowing movement only inside sibling groups. `groups[g]` lists the buckets
    /// of group `g`; each bucket may move to any other bucket of its group.
    pub fn sibling_groups(groups: &[Vec<BucketId>]) -> Self {
        let max_bucket = groups
            .iter()
            .flat_map(|g| g.iter().copied())
            .max()
            .map_or(0, |b| b as usize + 1);
        let mut allowed: Vec<Vec<BucketId>> = vec![Vec::new(); max_bucket];
        for group in groups {
            for &b in group {
                allowed[b as usize] = group.iter().copied().filter(|&o| o != b).collect();
            }
        }
        TargetConstraint::Siblings { allowed }
    }
}

/// Computes the exact gain of moving vertex `v` from its current bucket to `to`.
pub fn move_gain(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    v: DataId,
    to: BucketId,
) -> f64 {
    let from = partition.bucket_of(v);
    if from == to {
        return 0.0;
    }
    graph
        .data_neighbors(v)
        .iter()
        .map(|&q| objective.per_query_gain(nd.count(q, from), nd.count(q, to)))
        .sum()
}

/// Selects which gain-kernel implementation [`compute_proposals_with_kernel`] runs.
///
/// [`GainKernel::LegacyHashMap`] exists **only** as a conformance oracle: the parallel
/// conformance suite and the bench smoke job run both kernels and assert bit-identical
/// proposal lists. Every production call site uses [`GainKernel::Scratch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GainKernel {
    /// Allocation-free dense-scratch kernel (the default).
    #[default]
    Scratch,
    /// The original per-vertex `HashMap` kernel, kept as the bit-identity oracle.
    LegacyHashMap,
}

/// Worker-local scratch state for the dense gain kernel: a delta accumulator of size `k`, a
/// presence mark per bucket, and the stack of touched buckets used for `O(touched)` reset.
///
/// One scratch is created per worker chunk and reused for every vertex of the chunk; after
/// each vertex the kernel resets exactly the slots it touched, so reuse cannot leak state
/// between vertices (the determinism contract in the module docs).
#[derive(Debug, Clone)]
pub struct GainScratch {
    /// Per-bucket gain adjustment relative to an untouched bucket; 0.0 when not touched.
    delta: Vec<f64>,
    /// Whether the bucket currently has an entry (mirrors hash-map key presence).
    marked: Vec<bool>,
    /// Buckets touched for the current vertex, in first-touch order (sorted before use).
    touched: Vec<BucketId>,
}

impl GainScratch {
    /// Creates a scratch for `k` buckets.
    pub fn new(k: u32) -> Self {
        GainScratch {
            delta: vec![0.0; k as usize],
            marked: vec![false; k as usize],
            touched: Vec::new(),
        }
    }

    /// Number of buckets the scratch covers.
    pub fn num_buckets(&self) -> u32 {
        self.delta.len() as u32
    }

    #[inline]
    fn add(&mut self, b: BucketId, adjustment: f64) {
        let i = b as usize;
        if !self.marked[i] {
            self.marked[i] = true;
            self.touched.push(b);
        }
        self.delta[i] += adjustment;
    }

    #[inline]
    fn reset(&mut self) {
        for &b in &self.touched {
            self.delta[b as usize] = 0.0;
            self.marked[b as usize] = false;
        }
        self.touched.clear();
    }
}

/// Computes the best move proposal for a single vertex under the given constraint, or `None`
/// when the vertex has no admissible target (e.g. an isolated vertex under `All` with every
/// candidate equal to its own bucket).
///
/// `least_loaded` supplies a representative empty-ish bucket so that moving to a bucket none of
/// the vertex's queries touch is also considered under the `All` constraint.
///
/// This convenience wrapper allocates a fresh [`GainScratch`] per call; hot paths reuse a
/// worker-local scratch through [`best_move_for_vertex_with`].
pub fn best_move_for_vertex(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    constraint: &TargetConstraint,
    least_loaded: BucketId,
    v: DataId,
) -> Option<MoveProposal> {
    let mut scratch = GainScratch::new(partition.num_buckets());
    best_move_for_vertex_with(
        objective,
        graph,
        partition,
        nd,
        constraint,
        least_loaded,
        &mut scratch,
        v,
    )
}

/// The allocation-free gain kernel: like [`best_move_for_vertex`] but reusing a caller-provided
/// [`GainScratch`] (which must cover at least `partition.num_buckets()` buckets). Zero heap
/// allocation, zero hashing; only the touched-bucket list (at most the vertex's neighborhood
/// fanout) is sorted. Bit-identical to the legacy hash-map kernel — see the module docs.
#[allow(clippy::too_many_arguments)]
pub fn best_move_for_vertex_with(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    constraint: &TargetConstraint,
    least_loaded: BucketId,
    scratch: &mut GainScratch,
    v: DataId,
) -> Option<MoveProposal> {
    let from = partition.bucket_of(v);
    match constraint {
        TargetConstraint::Siblings { allowed } => {
            // The sibling candidate set is tiny (the recursion arity); per-target exact gains
            // need no scratch and match the historical summation order exactly.
            let targets = allowed.get(from as usize)?;
            let mut best: Option<(BucketId, f64)> = None;
            for &to in targets {
                if to == from {
                    continue;
                }
                let gain = move_gain(objective, graph, partition, nd, v, to);
                best = match best {
                    Some((bb, bg)) if bg > gain || (bg == gain && bb < to) => Some((bb, bg)),
                    _ => Some((to, gain)),
                };
            }
            best.map(|(to, gain)| MoveProposal {
                vertex: v,
                from,
                to,
                gain,
            })
        }
        TargetConstraint::All { k } => {
            if *k <= 1 {
                return None;
            }
            debug_assert!(scratch.num_buckets() >= partition.num_buckets());
            // One fused pass per query: find `n_from` with a linear scan of the (tiny) entry
            // list, evaluate the escape gain `g0 = per_query_gain(n_from, 0)` once, and reuse
            // it for the base gain and for every entry's adjustment. Bit-identical to the
            // legacy kernel's separate loops: base-gain accumulation visits queries in the
            // same order and starts from -0.0 exactly like `Iterator::sum` for f64 (so an
            // isolated vertex's empty sum keeps its sign bit), `g0` is a pure function of
            // `n_from` (reusing it cannot change a single bit), and per-bucket delta
            // accumulation keeps the same (query, entry) visit order.
            let mut base_gain = -0.0f64;
            for &q in graph.data_neighbors(v) {
                let entries = nd.nonzero(q);
                let mut n_from = 0u32;
                for &(b, c) in entries {
                    if b == from {
                        n_from = c;
                        break;
                    }
                }
                let g0 = objective.per_query_gain(n_from, 0);
                base_gain += g0;
                for &(b, c) in entries {
                    if b == from {
                        continue;
                    }
                    let adjustment = objective.per_query_gain(n_from, c) - g0;
                    scratch.add(b, adjustment);
                }
            }
            let mut best: Option<(BucketId, f64)> = None;
            let mut consider = |to: BucketId, gain: f64| {
                best = match best {
                    Some((bb, bg)) if bg > gain || (bg == gain && bb <= to) => Some((bb, bg)),
                    _ => Some((to, gain)),
                };
            };
            // Candidates in ascending bucket order (sorting only the touched stack), exactly
            // like the legacy kernel's sorted key collection.
            scratch.touched.sort_unstable();
            for &b in &scratch.touched {
                consider(b, base_gain + scratch.delta[b as usize]);
            }
            // Also consider an untouched bucket (the globally least-loaded one) if admissible.
            // Bounds-check before touching the scratch so an out-of-range caller-supplied
            // `least_loaded` degrades exactly like the legacy kernel (treated as untouched,
            // then filtered by `< k`) instead of panicking on the mark index.
            let least_loaded_untouched = scratch
                .marked
                .get(least_loaded as usize)
                .is_none_or(|&m| !m);
            if least_loaded != from && least_loaded_untouched && least_loaded < *k {
                consider(least_loaded, base_gain);
            }
            scratch.reset();
            best.map(|(to, gain)| MoveProposal {
                vertex: v,
                from,
                to,
                gain,
            })
        }
    }
}

/// The original hash-map gain kernel, retained verbatim as the bit-identity oracle for
/// [`GainKernel::LegacyHashMap`]. Not used by any production path.
fn best_move_for_vertex_legacy(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    constraint: &TargetConstraint,
    least_loaded: BucketId,
    v: DataId,
) -> Option<MoveProposal> {
    let from = partition.bucket_of(v);
    match constraint {
        TargetConstraint::Siblings { allowed } => {
            let targets = allowed.get(from as usize)?;
            let mut best: Option<(BucketId, f64)> = None;
            for &to in targets {
                if to == from {
                    continue;
                }
                let gain = move_gain(objective, graph, partition, nd, v, to);
                best = match best {
                    Some((bb, bg)) if bg > gain || (bg == gain && bb < to) => Some((bb, bg)),
                    _ => Some((to, gain)),
                };
            }
            best.map(|(to, gain)| MoveProposal {
                vertex: v,
                from,
                to,
                gain,
            })
        }
        TargetConstraint::All { k } => {
            if *k <= 1 {
                return None;
            }
            // Gain of moving to a bucket none of v's queries touch.
            let base_gain: f64 = graph
                .data_neighbors(v)
                .iter()
                .map(|&q| objective.per_query_gain(nd.count(q, from), 0))
                .sum();
            // Adjustment for every bucket that at least one adjacent query already touches.
            let mut deltas: HashMap<BucketId, f64> = HashMap::new();
            for &q in graph.data_neighbors(v) {
                let n_from = nd.count(q, from);
                for &(b, c) in nd.nonzero(q) {
                    if b == from {
                        continue;
                    }
                    let adjustment =
                        objective.per_query_gain(n_from, c) - objective.per_query_gain(n_from, 0);
                    *deltas.entry(b).or_insert(0.0) += adjustment;
                }
            }
            let mut best: Option<(BucketId, f64)> = None;
            let mut consider = |to: BucketId, gain: f64| {
                best = match best {
                    Some((bb, bg)) if bg > gain || (bg == gain && bb <= to) => Some((bb, bg)),
                    _ => Some((to, gain)),
                };
            };
            // Iterate candidates in bucket order so results are deterministic across runs
            // (HashMap iteration order is not).
            let mut candidates: Vec<(BucketId, f64)> =
                deltas.iter().map(|(&b, &d)| (b, d)).collect();
            candidates.sort_unstable_by_key(|&(b, _)| b);
            for (b, delta) in candidates {
                consider(b, base_gain + delta);
            }
            // Also consider an untouched bucket (the globally least-loaded one) if admissible.
            if least_loaded != from && !deltas.contains_key(&least_loaded) && least_loaded < *k {
                consider(least_loaded, base_gain);
            }
            best.map(|(to, gain)| MoveProposal {
                vertex: v,
                from,
                to,
                gain,
            })
        }
    }
}

/// Computes move proposals for every data vertex in parallel over `workers` threads.
///
/// When `include_nonpositive` is false only strictly improving proposals are returned (the
/// basic Algorithm 1 behaviour); when true every vertex's best proposal is returned so the
/// histogram strategy can pair positive with non-positive gains (Section 3.4).
///
/// Vertices are partitioned into contiguous index chunks and the per-chunk candidate lists are
/// concatenated in chunk order (the rayon shim's ordered reduction), so the returned list is
/// **bit-identical for every worker count** — sorted by vertex id, exactly as the sequential
/// scan would produce it.
pub fn compute_proposals(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    constraint: &TargetConstraint,
    include_nonpositive: bool,
    workers: usize,
) -> Vec<MoveProposal> {
    compute_proposals_with_kernel(
        objective,
        graph,
        partition,
        nd,
        constraint,
        include_nonpositive,
        workers,
        GainKernel::Scratch,
    )
}

/// [`compute_proposals`] with an explicit kernel choice — the conformance-oracle entry point.
#[allow(clippy::too_many_arguments)]
pub fn compute_proposals_with_kernel(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    constraint: &TargetConstraint,
    include_nonpositive: bool,
    workers: usize,
    kernel: GainKernel,
) -> Vec<MoveProposal> {
    let least_loaded = partition.least_loaded_bucket();
    match kernel {
        GainKernel::Scratch => rayon::pool::filter_map_index_with(
            graph.num_data(),
            workers,
            || GainScratch::new(partition.num_buckets()),
            |scratch, v| {
                best_move_for_vertex_with(
                    objective,
                    graph,
                    partition,
                    nd,
                    constraint,
                    least_loaded,
                    scratch,
                    v as DataId,
                )
                .filter(|p| include_nonpositive || p.gain > 0.0)
            },
        ),
        GainKernel::LegacyHashMap => {
            rayon::pool::filter_map_index(graph.num_data(), workers, |v| {
                best_move_for_vertex_legacy(
                    objective,
                    graph,
                    partition,
                    nd,
                    constraint,
                    least_loaded,
                    v as DataId,
                )
                .filter(|p| include_nonpositive || p.gain > 0.0)
            })
        }
    }
}

/// Recomputes the best proposal of each vertex in `vertices` (ascending ids expected), in
/// parallel with worker-local scratches, returning one `Option<MoveProposal>` per input vertex
/// in input order. This is the dirty-set entry point used by
/// [`crate::refinement::Refiner`]: unlike [`compute_proposals`] it never filters by gain (the
/// caller caches the raw best proposal per vertex and applies filtering when assembling the
/// iteration's proposal list).
#[allow(clippy::too_many_arguments)]
pub fn compute_proposals_for(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    constraint: &TargetConstraint,
    least_loaded: BucketId,
    vertices: &[DataId],
    workers: usize,
    kernel: GainKernel,
) -> Vec<Option<MoveProposal>> {
    match kernel {
        GainKernel::Scratch => rayon::pool::map_index_with(
            vertices.len(),
            workers,
            || GainScratch::new(partition.num_buckets()),
            |scratch, i| {
                best_move_for_vertex_with(
                    objective,
                    graph,
                    partition,
                    nd,
                    constraint,
                    least_loaded,
                    scratch,
                    vertices[i],
                )
            },
        ),
        GainKernel::LegacyHashMap => rayon::pool::map_index(vertices.len(), workers, |i| {
            best_move_for_vertex_legacy(
                objective,
                graph,
                partition,
                nd,
                constraint,
                least_loaded,
                vertices[i],
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn figure1() -> (BipartiteGraph, Partition) {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        (g, p)
    }

    #[test]
    fn move_gain_matches_objective_difference() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        for v in 0..6u32 {
            for to in 0..2u32 {
                let gain = move_gain(&obj, &g, &p, &nd, v, to);
                let before = obj.evaluate(&g, &p) * g.num_queries() as f64;
                let mut moved = p.clone();
                moved.assign(v, to);
                let after = obj.evaluate(&g, &moved) * g.num_queries() as f64;
                assert!((gain - (before - after)).abs() < 1e-9, "v={v} to={to}");
            }
        }
    }

    #[test]
    fn best_move_prefers_highest_gain_bucket() {
        // Vertex 5 belongs to queries {0,1,5} (two pins in bucket 0) and {3,4,5} (all three in
        // bucket 1). Moving it to bucket 0 helps query 0 but hurts query 2, and vice versa.
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let proposal = best_move_for_vertex(&obj, &g, &p, &nd, &TargetConstraint::all(2), 0, 5)
            .expect("vertex 5 has an admissible target");
        assert_eq!(proposal.from, 1);
        assert_eq!(proposal.to, 0);
        let expected = move_gain(&obj, &g, &p, &nd, 5, 0);
        assert!((proposal.gain - expected).abs() < 1e-12);
    }

    #[test]
    fn all_constraint_explores_untouched_bucket() {
        // With k = 3 and the third bucket empty, the least-loaded bucket (2) must be considered
        // even though no query touches it.
        let (g, _) = figure1();
        let p = Partition::from_assignment(&g, 3, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::Fanout;
        let proposal =
            best_move_for_vertex(&obj, &g, &p, &nd, &TargetConstraint::all(3), 2, 4).unwrap();
        // Vertex 4 only belongs to query {3,4,5}; moving anywhere splits it, so the best gain is
        // non-positive, but a proposal must still exist and consider bucket 2 or 0.
        assert!(proposal.gain <= 0.0);
        assert!(proposal.to == 0 || proposal.to == 2);
    }

    #[test]
    fn sibling_constraint_restricts_targets() {
        let (g, _) = figure1();
        let p = Partition::from_assignment(&g, 4, vec![0, 0, 1, 1, 2, 3]).unwrap();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        // Groups {0,1} and {2,3}: a vertex in bucket 0 may only move to 1, etc.
        let constraint = TargetConstraint::sibling_groups(&[vec![0, 1], vec![2, 3]]);
        for v in 0..6u32 {
            let proposal = best_move_for_vertex(&obj, &g, &p, &nd, &constraint, 0, v).unwrap();
            let expected_to = match p.bucket_of(v) {
                0 => 1,
                1 => 0,
                2 => 3,
                _ => 2,
            };
            assert_eq!(proposal.to, expected_to, "vertex {v}");
        }
    }

    #[test]
    fn compute_proposals_filters_nonpositive_by_default() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let strict = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), false, 1);
        assert!(strict.iter().all(|m| m.gain > 0.0));
        let all = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), true, 1);
        assert_eq!(
            all.len(),
            6,
            "every vertex proposes when non-positive gains are allowed"
        );
        assert!(all.len() >= strict.len());
    }

    #[test]
    fn proposals_are_deterministic() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let a = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), true, 1);
        let b = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), true, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn single_bucket_has_no_proposals() {
        let (g, _) = figure1();
        let p = Partition::from_assignment(&g, 1, vec![0; 6]).unwrap();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::Fanout;
        let proposals = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(1), true, 2);
        assert!(proposals.is_empty());
    }

    #[test]
    fn scratch_kernel_is_bit_identical_to_legacy_kernel() {
        // Random-ish graph with enough structure to hit every kernel branch: touched and
        // untouched least-loaded buckets, ties, isolated vertices.
        let mut b = GraphBuilder::new();
        for q in 0..40u32 {
            let base = (q * 7) % 50;
            b.add_query([base, (base + 3) % 50, (base + 11) % 50, (base + 19) % 50]);
        }
        b.ensure_data_count(55); // vertices 50..55 are isolated
        let g = b.build().unwrap();
        let assignment: Vec<u32> = (0..55).map(|v| (v * 13) % 6).collect();
        let p = Partition::from_assignment(&g, 6, assignment).unwrap();
        let nd = NeighborData::build(&g, &p);
        for obj in [
            Objective::Fanout,
            Objective::PFanout { p: 0.5 },
            Objective::CliqueNet,
        ] {
            for constraint in [
                TargetConstraint::all(6),
                TargetConstraint::sibling_groups(&[vec![0, 1, 2], vec![3, 4, 5]]),
            ] {
                for include in [false, true] {
                    for workers in [1usize, 2, 4] {
                        let scratch = compute_proposals_with_kernel(
                            &obj,
                            &g,
                            &p,
                            &nd,
                            &constraint,
                            include,
                            workers,
                            GainKernel::Scratch,
                        );
                        let legacy = compute_proposals_with_kernel(
                            &obj,
                            &g,
                            &p,
                            &nd,
                            &constraint,
                            include,
                            workers,
                            GainKernel::LegacyHashMap,
                        );
                        assert_eq!(scratch.len(), legacy.len());
                        for (s, l) in scratch.iter().zip(legacy.iter()) {
                            assert_eq!(s.vertex, l.vertex);
                            assert_eq!(s.from, l.from);
                            assert_eq!(s.to, l.to);
                            assert_eq!(
                                s.gain.to_bits(),
                                l.gain.to_bits(),
                                "gain bits diverged for vertex {} ({obj:?})",
                                s.vertex
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_vertices_does_not_leak_state() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let constraint = TargetConstraint::all(2);
        let mut scratch = GainScratch::new(2);
        // Reusing one scratch sequentially must match fresh-scratch computation per vertex.
        for v in 0..6u32 {
            let reused =
                best_move_for_vertex_with(&obj, &g, &p, &nd, &constraint, 0, &mut scratch, v);
            let fresh = best_move_for_vertex(&obj, &g, &p, &nd, &constraint, 0, v);
            assert_eq!(reused, fresh, "vertex {v}");
        }
    }

    #[test]
    fn out_of_range_least_loaded_degrades_like_legacy_instead_of_panicking() {
        // The constraint's k may legitimately exceed the partition's bucket count (and thus
        // the scratch size); a caller-supplied least_loaded in that gap must be filtered by
        // the `< k` guard on both kernels, never panic on the scratch mark index.
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let constraint = TargetConstraint::all(5); // partition only has 2 buckets
        for least_loaded in [2u32, 4, 7, u32::MAX] {
            for v in 0..6u32 {
                let scratch = best_move_for_vertex(&obj, &g, &p, &nd, &constraint, least_loaded, v);
                let legacy =
                    best_move_for_vertex_legacy(&obj, &g, &p, &nd, &constraint, least_loaded, v);
                assert_eq!(scratch, legacy, "v={v} least_loaded={least_loaded}");
            }
        }
    }

    #[test]
    fn compute_proposals_for_matches_full_scan() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let constraint = TargetConstraint::all(2);
        let full = compute_proposals(&obj, &g, &p, &nd, &constraint, true, 1);
        let vertices: Vec<u32> = (0..6).collect();
        for kernel in [GainKernel::Scratch, GainKernel::LegacyHashMap] {
            let per_vertex = compute_proposals_for(
                &obj,
                &g,
                &p,
                &nd,
                &constraint,
                p.least_loaded_bucket(),
                &vertices,
                2,
                kernel,
            );
            let flattened: Vec<MoveProposal> = per_vertex.into_iter().flatten().collect();
            assert_eq!(flattened, full);
        }
    }

    #[test]
    fn all_and_sibling_agree_for_two_buckets() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let all = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), true, 1);
        let sib = compute_proposals(
            &obj,
            &g,
            &p,
            &nd,
            &TargetConstraint::sibling_groups(&[vec![0, 1]]),
            true,
            1,
        );
        assert_eq!(all.len(), sib.len());
        for (a, s) in all.iter().zip(sib.iter()) {
            assert_eq!(a.vertex, s.vertex);
            assert_eq!(a.to, s.to);
            assert!((a.gain - s.gain).abs() < 1e-12);
        }
    }
}
