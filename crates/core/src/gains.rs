//! Move-gain computation: for every data vertex, the best target bucket and its gain.
//!
//! This is the "compute move gains / find best bucket" phase of Algorithm 1. Gains are computed
//! from the per-query [`NeighborData`] in `O(Σ_{q ∈ N(v)} fanout(q))` per vertex — the zero
//! entries of the neighbor data never need to be touched, mirroring the communication
//! optimization of Section 3.3.

use crate::neighbor_data::NeighborData;
use crate::objective::Objective;
use shp_hypergraph::{BipartiteGraph, BucketId, DataId, Partition};
use std::collections::HashMap;

/// A proposed move of one data vertex to its best target bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveProposal {
    /// The moving data vertex.
    pub vertex: DataId,
    /// Its current bucket.
    pub from: BucketId,
    /// The proposed target bucket.
    pub to: BucketId,
    /// Gain (objective reduction) of the move; may be non-positive when non-positive proposals
    /// are requested (histogram strategy).
    pub gain: f64,
}

/// Restricts which buckets a vertex may move to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetConstraint {
    /// Any of the `k` buckets (direct SHP-k optimization).
    All {
        /// Total number of buckets.
        k: u32,
    },
    /// Recursive splitting: a vertex currently in bucket `b` may only move to `allowed[b]`
    /// (its sibling buckets at the current recursion level).
    Siblings {
        /// Allowed target buckets per current bucket.
        allowed: Vec<Vec<BucketId>>,
    },
}

impl TargetConstraint {
    /// Constraint allowing movement between every pair of the `k` buckets.
    pub fn all(k: u32) -> Self {
        TargetConstraint::All { k }
    }

    /// Constraint allowing movement only inside sibling groups. `groups[g]` lists the buckets
    /// of group `g`; each bucket may move to any other bucket of its group.
    pub fn sibling_groups(groups: &[Vec<BucketId>]) -> Self {
        let max_bucket = groups
            .iter()
            .flat_map(|g| g.iter().copied())
            .max()
            .map_or(0, |b| b as usize + 1);
        let mut allowed: Vec<Vec<BucketId>> = vec![Vec::new(); max_bucket];
        for group in groups {
            for &b in group {
                allowed[b as usize] = group.iter().copied().filter(|&o| o != b).collect();
            }
        }
        TargetConstraint::Siblings { allowed }
    }
}

/// Computes the exact gain of moving vertex `v` from its current bucket to `to`.
pub fn move_gain(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    v: DataId,
    to: BucketId,
) -> f64 {
    let from = partition.bucket_of(v);
    if from == to {
        return 0.0;
    }
    graph
        .data_neighbors(v)
        .iter()
        .map(|&q| objective.per_query_gain(nd.count(q, from), nd.count(q, to)))
        .sum()
}

/// Computes the best move proposal for a single vertex under the given constraint, or `None`
/// when the vertex has no admissible target (e.g. an isolated vertex under `All` with every
/// candidate equal to its own bucket).
///
/// `least_loaded` supplies a representative empty-ish bucket so that moving to a bucket none of
/// the vertex's queries touch is also considered under the `All` constraint.
pub fn best_move_for_vertex(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    constraint: &TargetConstraint,
    least_loaded: BucketId,
    v: DataId,
) -> Option<MoveProposal> {
    let from = partition.bucket_of(v);
    match constraint {
        TargetConstraint::Siblings { allowed } => {
            let targets = allowed.get(from as usize)?;
            let mut best: Option<(BucketId, f64)> = None;
            for &to in targets {
                if to == from {
                    continue;
                }
                let gain = move_gain(objective, graph, partition, nd, v, to);
                best = match best {
                    Some((bb, bg)) if bg > gain || (bg == gain && bb < to) => Some((bb, bg)),
                    _ => Some((to, gain)),
                };
            }
            best.map(|(to, gain)| MoveProposal {
                vertex: v,
                from,
                to,
                gain,
            })
        }
        TargetConstraint::All { k } => {
            if *k <= 1 {
                return None;
            }
            // Gain of moving to a bucket none of v's queries touch.
            let base_gain: f64 = graph
                .data_neighbors(v)
                .iter()
                .map(|&q| objective.per_query_gain(nd.count(q, from), 0))
                .sum();
            // Adjustment for every bucket that at least one adjacent query already touches.
            let mut deltas: HashMap<BucketId, f64> = HashMap::new();
            for &q in graph.data_neighbors(v) {
                let n_from = nd.count(q, from);
                for &(b, c) in nd.nonzero(q) {
                    if b == from {
                        continue;
                    }
                    let adjustment =
                        objective.per_query_gain(n_from, c) - objective.per_query_gain(n_from, 0);
                    *deltas.entry(b).or_insert(0.0) += adjustment;
                }
            }
            let mut best: Option<(BucketId, f64)> = None;
            let mut consider = |to: BucketId, gain: f64| {
                best = match best {
                    Some((bb, bg)) if bg > gain || (bg == gain && bb <= to) => Some((bb, bg)),
                    _ => Some((to, gain)),
                };
            };
            // Iterate candidates in bucket order so results are deterministic across runs
            // (HashMap iteration order is not).
            let mut candidates: Vec<(BucketId, f64)> =
                deltas.iter().map(|(&b, &d)| (b, d)).collect();
            candidates.sort_unstable_by_key(|&(b, _)| b);
            for (b, delta) in candidates {
                consider(b, base_gain + delta);
            }
            // Also consider an untouched bucket (the globally least-loaded one) if admissible.
            if least_loaded != from && !deltas.contains_key(&least_loaded) && least_loaded < *k {
                consider(least_loaded, base_gain);
            }
            best.map(|(to, gain)| MoveProposal {
                vertex: v,
                from,
                to,
                gain,
            })
        }
    }
}

/// Computes move proposals for every data vertex in parallel over `workers` threads.
///
/// When `include_nonpositive` is false only strictly improving proposals are returned (the
/// basic Algorithm 1 behaviour); when true every vertex's best proposal is returned so the
/// histogram strategy can pair positive with non-positive gains (Section 3.4).
///
/// Vertices are partitioned into contiguous index chunks and the per-chunk candidate lists are
/// concatenated in chunk order (the rayon shim's ordered reduction), so the returned list is
/// **bit-identical for every worker count** — sorted by vertex id, exactly as the sequential
/// scan would produce it.
pub fn compute_proposals(
    objective: &Objective,
    graph: &BipartiteGraph,
    partition: &Partition,
    nd: &NeighborData,
    constraint: &TargetConstraint,
    include_nonpositive: bool,
    workers: usize,
) -> Vec<MoveProposal> {
    let least_loaded = (0..partition.num_buckets())
        .min_by_key(|&b| partition.bucket_weight(b))
        .unwrap_or(0);
    rayon::pool::filter_map_index(graph.num_data(), workers, |v| {
        best_move_for_vertex(
            objective,
            graph,
            partition,
            nd,
            constraint,
            least_loaded,
            v as DataId,
        )
        .filter(|p| include_nonpositive || p.gain > 0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn figure1() -> (BipartiteGraph, Partition) {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        (g, p)
    }

    #[test]
    fn move_gain_matches_objective_difference() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        for v in 0..6u32 {
            for to in 0..2u32 {
                let gain = move_gain(&obj, &g, &p, &nd, v, to);
                let before = obj.evaluate(&g, &p) * g.num_queries() as f64;
                let mut moved = p.clone();
                moved.assign(v, to);
                let after = obj.evaluate(&g, &moved) * g.num_queries() as f64;
                assert!((gain - (before - after)).abs() < 1e-9, "v={v} to={to}");
            }
        }
    }

    #[test]
    fn best_move_prefers_highest_gain_bucket() {
        // Vertex 5 belongs to queries {0,1,5} (two pins in bucket 0) and {3,4,5} (all three in
        // bucket 1). Moving it to bucket 0 helps query 0 but hurts query 2, and vice versa.
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let proposal = best_move_for_vertex(&obj, &g, &p, &nd, &TargetConstraint::all(2), 0, 5)
            .expect("vertex 5 has an admissible target");
        assert_eq!(proposal.from, 1);
        assert_eq!(proposal.to, 0);
        let expected = move_gain(&obj, &g, &p, &nd, 5, 0);
        assert!((proposal.gain - expected).abs() < 1e-12);
    }

    #[test]
    fn all_constraint_explores_untouched_bucket() {
        // With k = 3 and the third bucket empty, the least-loaded bucket (2) must be considered
        // even though no query touches it.
        let (g, _) = figure1();
        let p = Partition::from_assignment(&g, 3, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::Fanout;
        let proposal =
            best_move_for_vertex(&obj, &g, &p, &nd, &TargetConstraint::all(3), 2, 4).unwrap();
        // Vertex 4 only belongs to query {3,4,5}; moving anywhere splits it, so the best gain is
        // non-positive, but a proposal must still exist and consider bucket 2 or 0.
        assert!(proposal.gain <= 0.0);
        assert!(proposal.to == 0 || proposal.to == 2);
    }

    #[test]
    fn sibling_constraint_restricts_targets() {
        let (g, _) = figure1();
        let p = Partition::from_assignment(&g, 4, vec![0, 0, 1, 1, 2, 3]).unwrap();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        // Groups {0,1} and {2,3}: a vertex in bucket 0 may only move to 1, etc.
        let constraint = TargetConstraint::sibling_groups(&[vec![0, 1], vec![2, 3]]);
        for v in 0..6u32 {
            let proposal = best_move_for_vertex(&obj, &g, &p, &nd, &constraint, 0, v).unwrap();
            let expected_to = match p.bucket_of(v) {
                0 => 1,
                1 => 0,
                2 => 3,
                _ => 2,
            };
            assert_eq!(proposal.to, expected_to, "vertex {v}");
        }
    }

    #[test]
    fn compute_proposals_filters_nonpositive_by_default() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let strict = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), false, 1);
        assert!(strict.iter().all(|m| m.gain > 0.0));
        let all = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), true, 1);
        assert_eq!(
            all.len(),
            6,
            "every vertex proposes when non-positive gains are allowed"
        );
        assert!(all.len() >= strict.len());
    }

    #[test]
    fn proposals_are_deterministic() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let a = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), true, 1);
        let b = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), true, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn single_bucket_has_no_proposals() {
        let (g, _) = figure1();
        let p = Partition::from_assignment(&g, 1, vec![0; 6]).unwrap();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::Fanout;
        let proposals = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(1), true, 2);
        assert!(proposals.is_empty());
    }

    #[test]
    fn all_and_sibling_agree_for_two_buckets() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        let obj = Objective::PFanout { p: 0.5 };
        let all = compute_proposals(&obj, &g, &p, &nd, &TargetConstraint::all(2), true, 1);
        let sib = compute_proposals(
            &obj,
            &g,
            &p,
            &nd,
            &TargetConstraint::sibling_groups(&[vec![0, 1]]),
            true,
            1,
        );
        assert_eq!(all.len(), sib.len());
        for (a, s) in all.iter().zip(sib.iter()) {
            assert_eq!(a.vertex, s.vertex);
            assert_eq!(a.to, s.to);
            assert!((a.gain - s.gain).abs() < 1e-12);
        }
    }
}
