//! Gain histograms with exponentially sized bins (the advanced swap scheme of Section 3.4).
//!
//! Instead of a single probability per bucket pair, the master keeps, for each ordered pair
//! `(i, j)`, a histogram of the candidates' gains in exponentially sized bins. Bins of the two
//! opposite directions are matched from the highest gain downwards; fully matched bins move
//! with probability one, the final partially matched bin moves with a fractional probability,
//! and a positive bin may be matched with a non-positive bin as long as the expected sum of the
//! paired gains stays positive. This focuses movement on the most valuable swaps first and
//! frees up additional movement compared to the basic swap matrix.

use crate::gains::MoveProposal;
use crate::pair_table::PairTable;
use shp_hypergraph::BucketId;

/// Number of exponential gain bins per direction.
///
/// Layout (from best to worst): bins `0..POSITIVE_BINS` hold positive gains from the largest
/// magnitude down to the smallest, bin `POSITIVE_BINS` holds zero gains, and bins
/// `POSITIVE_BINS+1..NUM_BINS` hold negative gains from the smallest magnitude to the largest.
pub const NUM_BINS: usize = 2 * HALF_BINS + 1;
const HALF_BINS: usize = 24;
/// Largest binary exponent represented; gains of magnitude `≥ 2^MAX_EXP` land in the extreme
/// bins, gains of magnitude `< 2^(MAX_EXP − HALF_BINS + 1)` in the bins adjacent to zero.
const MAX_EXP: i32 = 11;

/// Maps a gain to its bin index (0 = best possible gain, `NUM_BINS - 1` = worst).
pub fn bin_index(gain: f64) -> usize {
    if gain == 0.0 {
        return HALF_BINS;
    }
    let magnitude = gain.abs();
    // Exponent clamped so every magnitude fits one of HALF_BINS bins.
    let exp = magnitude.log2().floor() as i32;
    let clamped = exp.clamp(MAX_EXP - HALF_BINS as i32 + 1, MAX_EXP);
    let offset = (MAX_EXP - clamped) as usize; // 0 for the largest magnitudes
    if gain > 0.0 {
        offset
    } else {
        NUM_BINS - 1 - offset
    }
}

/// Representative gain of a bin, used when deciding whether a positive/negative bin pair is
/// still expected to be profitable: the geometric midpoint of the bin's range.
pub fn bin_representative(bin: usize) -> f64 {
    if bin == HALF_BINS {
        return 0.0;
    }
    let offset = if bin < HALF_BINS {
        bin
    } else {
        NUM_BINS - 1 - bin
    };
    let exp = MAX_EXP - offset as i32;
    let magnitude = 1.5 * (exp as f64).exp2();
    if bin < HALF_BINS {
        magnitude
    } else {
        -magnitude
    }
}

/// Gain histogram of one ordered bucket pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GainHistogram {
    counts: [u64; NUM_BINS],
}

impl Default for GainHistogram {
    fn default() -> Self {
        GainHistogram {
            counts: [0; NUM_BINS],
        }
    }
}

impl GainHistogram {
    /// Records one candidate with the given gain.
    pub fn record(&mut self, gain: f64) {
        self.counts[bin_index(gain)] += 1;
    }

    /// Number of candidates in `bin`.
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// Total number of recorded candidates.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another histogram into this one (used when worker-local histograms are combined
    /// by the master).
    pub fn merge(&mut self, other: &GainHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// Histograms for every ordered bucket pair with at least one candidate, stored in a dense
/// [`PairTable`] (no hashing or per-entry allocation on the record path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GainHistogramSet {
    histograms: PairTable<GainHistogram>,
}

impl Default for GainHistogramSet {
    fn default() -> Self {
        GainHistogramSet {
            histograms: PairTable::new(0, GainHistogram::default()),
        }
    }
}

impl GainHistogramSet {
    /// Builds the histogram set from the full list of proposals (positive and non-positive).
    /// The bucket range is pre-sized in one pass over the proposals so recording never grows
    /// the table.
    pub fn from_proposals(proposals: &[MoveProposal]) -> Self {
        let k = proposals
            .iter()
            .map(|p| p.from.max(p.to) + 1)
            .max()
            .unwrap_or(0);
        let mut set = GainHistogramSet {
            histograms: PairTable::new(k, GainHistogram::default()),
        };
        for p in proposals {
            set.record(p);
        }
        set
    }

    /// Builds the histogram set over `workers` threads: each worker accumulates a partial set
    /// over a contiguous chunk of the proposal list and the partials are merged in chunk order.
    /// Bin counts are sums, so the result equals [`GainHistogramSet::from_proposals`] exactly
    /// for every worker count — this is the "worker-local histograms combined by the master"
    /// step of Section 3.4 executed on real threads.
    pub fn from_proposals_with_workers(proposals: &[MoveProposal], workers: usize) -> Self {
        let partials = rayon::pool::run_chunks(proposals.len(), workers, |range| {
            GainHistogramSet::from_proposals(&proposals[range])
        });
        let mut merged = GainHistogramSet::default();
        for partial in partials {
            merged.merge(&partial);
        }
        merged
    }

    /// Records one proposal, growing the bucket range if needed.
    pub fn record(&mut self, proposal: &MoveProposal) {
        self.histograms
            .entry(proposal.from, proposal.to)
            .record(proposal.gain);
    }

    /// Merges another set into this one.
    pub fn merge(&mut self, other: &GainHistogramSet) {
        for ((from, to), hist) in other.histograms.iter() {
            self.histograms.entry(from, to).merge(hist);
        }
    }

    /// The histogram of an ordered pair, if any candidate was recorded.
    pub fn get(&self, from: BucketId, to: BucketId) -> Option<&GainHistogram> {
        self.histograms.get(from, to)
    }

    /// Number of ordered pairs with candidates.
    pub fn num_pairs(&self) -> usize {
        self.histograms.len()
    }

    /// Matches bins of opposite directions for every unordered bucket pair, producing the
    /// per-bin move probabilities broadcast by the master.
    pub fn match_bins(&self) -> PairTable<[f64; NUM_BINS]> {
        let mut result: PairTable<[f64; NUM_BINS]> =
            PairTable::new(self.histograms.num_buckets(), [0.0; NUM_BINS]);
        // Visit unordered pairs once, in deterministic order.
        let mut pairs: Vec<(BucketId, BucketId)> = self
            .histograms
            .keys()
            .map(|(i, j)| if i < j { (i, j) } else { (j, i) })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();

        let empty = GainHistogram::default();
        for (i, j) in pairs {
            let forward = self.histograms.get(i, j).unwrap_or(&empty);
            let backward = self.histograms.get(j, i).unwrap_or(&empty);
            let (probs_forward, probs_backward) = match_pair(forward, backward);
            result.insert(i, j, probs_forward);
            result.insert(j, i, probs_backward);
        }
        result
    }
}

/// Matches the bins of the two directions of one bucket pair, returning per-bin move
/// probabilities for each direction.
fn match_pair(a: &GainHistogram, b: &GainHistogram) -> ([f64; NUM_BINS], [f64; NUM_BINS]) {
    let mut matched_a = [0u64; NUM_BINS];
    let mut matched_b = [0u64; NUM_BINS];
    let mut remaining_a = a.counts;
    let mut remaining_b = b.counts;
    let mut ia = 0usize;
    let mut ib = 0usize;

    loop {
        // Skip empty bins.
        while ia < NUM_BINS && remaining_a[ia] == 0 {
            ia += 1;
        }
        while ib < NUM_BINS && remaining_b[ib] == 0 {
            ib += 1;
        }
        if ia >= NUM_BINS || ib >= NUM_BINS {
            break;
        }
        // Pair the currently best bins of the two sides if the expected summed gain of a swap
        // drawn from them is positive.
        if bin_representative(ia) + bin_representative(ib) <= 0.0 {
            break;
        }
        let m = remaining_a[ia].min(remaining_b[ib]);
        matched_a[ia] += m;
        matched_b[ib] += m;
        remaining_a[ia] -= m;
        remaining_b[ib] -= m;
    }

    let to_probs = |matched: &[u64; NUM_BINS], counts: &[u64; NUM_BINS]| {
        let mut probs = [0.0f64; NUM_BINS];
        for bin in 0..NUM_BINS {
            if counts[bin] > 0 {
                probs[bin] = matched[bin] as f64 / counts[bin] as f64;
            }
        }
        probs
    };
    (
        to_probs(&matched_a, &a.counts),
        to_probs(&matched_b, &b.counts),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proposal(vertex: u32, from: u32, to: u32, gain: f64) -> MoveProposal {
        MoveProposal {
            vertex,
            from,
            to,
            gain,
        }
    }

    #[test]
    fn bin_index_orders_gains_from_best_to_worst() {
        let gains = [100.0, 10.0, 1.0, 0.1, 0.0, -0.1, -1.0, -10.0, -100.0];
        let bins: Vec<usize> = gains.iter().map(|&g| bin_index(g)).collect();
        for w in bins.windows(2) {
            assert!(
                w[0] <= w[1],
                "bins must be non-decreasing as gains get worse: {bins:?}"
            );
        }
        assert_eq!(bin_index(0.0), HALF_BINS);
        assert!(bin_index(1000.0) < bin_index(1.0));
        assert!(bin_index(-1000.0) > bin_index(-1.0));
    }

    #[test]
    fn bin_representative_has_correct_sign_and_order() {
        assert_eq!(bin_representative(HALF_BINS), 0.0);
        assert!(bin_representative(0) > bin_representative(1));
        assert!(bin_representative(0) > 0.0);
        assert!(bin_representative(NUM_BINS - 1) < 0.0);
        // The representative lies within (or at least near) its own bin for mid-range gains.
        for gain in [0.5, 2.0, 7.0, -0.25, -3.0] {
            let bin = bin_index(gain);
            let rep = bin_representative(bin);
            assert_eq!(
                rep.signum(),
                gain.signum(),
                "gain {gain} bin {bin} rep {rep}"
            );
            assert!(rep.abs() >= gain.abs() / 2.0 && rep.abs() <= gain.abs() * 3.0);
        }
    }

    #[test]
    fn extreme_gains_are_clamped_into_valid_bins() {
        assert!(bin_index(1e30) < NUM_BINS);
        assert!(bin_index(-1e30) < NUM_BINS);
        assert!(bin_index(1e-30) < NUM_BINS);
        assert!(bin_index(-1e-30) < NUM_BINS);
        assert_eq!(bin_index(1e30), 0);
        assert_eq!(bin_index(-1e30), NUM_BINS - 1);
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut h = GainHistogram::default();
        h.record(2.0);
        h.record(2.5);
        h.record(-1.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(bin_index(2.0)), 2);
        let mut other = GainHistogram::default();
        other.record(2.0);
        h.merge(&other);
        assert_eq!(h.count(bin_index(2.0)), 3);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn balanced_positive_demand_moves_everything() {
        // 3 candidates each way, all with clearly positive gains: every bin fully matched.
        let mut proposals = Vec::new();
        for v in 0..3 {
            proposals.push(proposal(v, 0, 1, 4.0));
        }
        for v in 3..6 {
            proposals.push(proposal(v, 1, 0, 4.0));
        }
        let set = GainHistogramSet::from_proposals(&proposals);
        let probs = MoveProbabilitiesForTest::from(set);
        for p in &proposals {
            assert!((probs.probability(p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unbalanced_demand_moves_best_gains_first() {
        // Direction 0->1 has one high-gain and three low-gain candidates; direction 1->0 has a
        // single candidate. Only the best 0->1 candidate should move (probability 1), the
        // low-gain ones should not.
        let proposals = vec![
            proposal(0, 0, 1, 8.0),
            proposal(1, 0, 1, 0.5),
            proposal(2, 0, 1, 0.5),
            proposal(3, 0, 1, 0.5),
            proposal(4, 1, 0, 6.0),
        ];
        let set = GainHistogramSet::from_proposals(&proposals);
        let probs = MoveProbabilitiesForTest::from(set);
        assert!((probs.probability(&proposals[0]) - 1.0).abs() < 1e-12);
        assert_eq!(probs.probability(&proposals[1]), 0.0);
        assert!((probs.probability(&proposals[4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_bins_get_fractional_probability() {
        // 4 same-gain candidates one way, 2 the other: the larger side moves with prob 0.5.
        let mut proposals = Vec::new();
        for v in 0..4 {
            proposals.push(proposal(v, 0, 1, 2.0));
        }
        for v in 4..6 {
            proposals.push(proposal(v, 1, 0, 2.0));
        }
        let set = GainHistogramSet::from_proposals(&proposals);
        let probs = MoveProbabilitiesForTest::from(set);
        assert!((probs.probability(&proposals[0]) - 0.5).abs() < 1e-12);
        assert!((probs.probability(&proposals[5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn positive_bin_can_pair_with_negative_bin_when_sum_is_positive() {
        // One candidate with gain +8 and an opposite candidate with gain -1: the pair is
        // expected to be profitable, so both should move.
        let proposals = vec![proposal(0, 0, 1, 8.0), proposal(1, 1, 0, -1.0)];
        let set = GainHistogramSet::from_proposals(&proposals);
        let probs = MoveProbabilitiesForTest::from(set);
        assert!((probs.probability(&proposals[0]) - 1.0).abs() < 1e-12);
        assert!((probs.probability(&proposals[1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_pair_with_negative_sum_does_not_move() {
        let proposals = vec![proposal(0, 0, 1, 1.0), proposal(1, 1, 0, -8.0)];
        let set = GainHistogramSet::from_proposals(&proposals);
        let probs = MoveProbabilitiesForTest::from(set);
        assert_eq!(probs.probability(&proposals[0]), 0.0);
        assert_eq!(probs.probability(&proposals[1]), 0.0);
    }

    #[test]
    fn parallel_build_matches_sequential_for_every_worker_count() {
        // A large synthetic proposal list spanning many bucket pairs and gain magnitudes.
        let proposals: Vec<MoveProposal> = (0..10_000u32)
            .map(|v| {
                proposal(
                    v,
                    v % 7,
                    (v + 1 + v % 5) % 7,
                    ((v % 97) as f64 - 48.0) / 3.0,
                )
            })
            .collect();
        let sequential = GainHistogramSet::from_proposals(&proposals);
        for workers in [1usize, 2, 4, 8] {
            let parallel = GainHistogramSet::from_proposals_with_workers(&proposals, workers);
            assert_eq!(parallel, sequential, "workers={workers}");
        }
    }

    #[test]
    fn histogram_set_merge_combines_pairs() {
        let mut a = GainHistogramSet::from_proposals(&[proposal(0, 0, 1, 1.0)]);
        let b = GainHistogramSet::from_proposals(&[proposal(1, 0, 1, 1.0), proposal(2, 2, 3, 1.0)]);
        a.merge(&b);
        assert_eq!(a.num_pairs(), 2);
        assert_eq!(a.get(0, 1).unwrap().total(), 2);
        assert_eq!(a.get(2, 3).unwrap().total(), 1);
        assert!(a.get(3, 2).is_none());
    }

    /// Small adapter so tests exercise the same lookup path as the refinement loop without
    /// depending on `crate::swap` (avoiding a circular dev-dependency in the test module).
    struct MoveProbabilitiesForTest {
        table: PairTable<[f64; NUM_BINS]>,
    }

    impl From<GainHistogramSet> for MoveProbabilitiesForTest {
        fn from(set: GainHistogramSet) -> Self {
            MoveProbabilitiesForTest {
                table: set.match_bins(),
            }
        }
    }

    impl MoveProbabilitiesForTest {
        fn probability(&self, p: &MoveProposal) -> f64 {
            self.table
                .get(p.from, p.to)
                .map(|bins| bins[bin_index(p.gain)])
                .unwrap_or(0.0)
        }
    }
}
