//! Incremental re-partitioning (Section 5, requirement (i)).
//!
//! Production storage sharding cannot afford to move most of the data when the graph changes
//! slightly. The paper's recipe: initialize the local search with the previous partition and
//! penalize movement away from it in the gain computation, so only moves whose benefit exceeds
//! the migration cost survive.

use crate::config::ShpConfig;
use crate::error::{ShpError, ShpResult};
use crate::gains::TargetConstraint;
use crate::neighbor_data::NeighborData;
use crate::objective::Objective;
use crate::refinement::{IterationStats, Refiner};
use crate::report::{PartitionResult, RunReport};
use serde::{Deserialize, Serialize};
use shp_hypergraph::{average_fanout, average_p_fanout, BipartiteGraph, Partition};
use std::time::Instant;

/// Options of an incremental update run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Gain penalty subtracted from every move that takes a vertex away from its bucket in the
    /// previous partition (moves back to it are not penalized). Expressed in the same unit as
    /// the objective gains.
    pub movement_penalty: f64,
    /// Hard cap on the fraction of data vertices allowed to change buckets relative to the
    /// previous partition; refinement stops once the cap is hit. `1.0` disables the cap.
    pub max_moved_fraction: f64,
    /// Hard migration budget: the returned partition differs from the previous one on at most
    /// this many vertices. `None` disables the budget.
    ///
    /// Enforcement is deterministic and documented: the unbudgeted refinement runs first; when
    /// its result moves no more than `max_moves` vertices it is returned **bit-identically**.
    /// Otherwise the budget is spent on (1) the balance-repair moves the previous partition
    /// needs under `epsilon` (mandatory — a budget smaller than that repair count is rejected
    /// with [`ShpError::InfeasibleBudget`]), then (2) the refinement's moves ranked by their
    /// standalone gain on the previous partition, highest first, ties broken by ascending
    /// vertex id, each applied only if the destination bucket stays within its allowed weight.
    pub max_moves: Option<usize>,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            movement_penalty: 0.1,
            max_moved_fraction: 1.0,
            max_moves: None,
        }
    }
}

/// Refines an existing partition of (a possibly updated) `graph` without moving more data than
/// necessary.
///
/// The previous partition must cover exactly the data vertices of `graph`; callers adding new
/// vertices should first extend the assignment (e.g. hashing new vertices to random buckets).
///
/// # Errors
/// Returns [`ShpError::InvalidConfig`] when the configuration is invalid and
/// [`ShpError::PartitionMismatch`] when the previous partition does not match the graph.
pub fn partition_incremental(
    graph: &BipartiteGraph,
    config: &ShpConfig,
    incremental: &IncrementalConfig,
    previous: &Partition,
) -> ShpResult<PartitionResult> {
    config.validate()?;
    if previous.num_data() != graph.num_data() {
        return Err(ShpError::PartitionMismatch {
            message: format!(
                "previous partition covers {} vertices but the graph has {}",
                previous.num_data(),
                graph.num_data()
            ),
        });
    }
    if previous.num_buckets() != config.num_buckets {
        return Err(ShpError::PartitionMismatch {
            message: format!(
                "previous partition has k={} but the configuration asks for k={}",
                previous.num_buckets(),
                config.num_buckets
            ),
        });
    }
    if !(0.0..=1.0).contains(&incremental.max_moved_fraction) {
        return Err(ShpError::InvalidConfig(
            "max_moved_fraction must lie in [0, 1]".into(),
        ));
    }
    if incremental.movement_penalty < 0.0 {
        return Err(ShpError::InvalidConfig(
            "movement_penalty must be non-negative".into(),
        ));
    }

    let start = Instant::now();
    let mut partition = previous.clone();
    let mut nd = NeighborData::build_with_workers(graph, &partition, config.workers);
    // Penalize every move whose target differs from the vertex's bucket in the previous
    // partition; moves back to the original bucket keep their full gain.
    let original: Vec<u32> = previous.assignment().to_vec();
    let penalty = incremental.movement_penalty;
    let refiner = Refiner::new(
        graph,
        Objective::from_kind(config.objective),
        TargetConstraint::all(config.num_buckets),
        config.swap_strategy,
        config.balance_mode,
        config.allow_imbalanced_moves,
        config.epsilon,
        config.seed,
    )
    .with_workers(config.workers)
    .with_gain_adjuster(Box::new(move |proposal| {
        if proposal.to != original[proposal.vertex as usize] {
            proposal.gain - penalty
        } else {
            proposal.gain
        }
    }));

    // Additionally cap the total churn relative to the previous partition.
    let cap = (incremental.max_moved_fraction * graph.num_data() as f64).floor() as usize;
    let mut history: Vec<IterationStats> = Vec::new();
    let mut active = refiner.new_active_set();
    for iteration in 0..config.max_iterations {
        let stats = refiner.run_iteration_with(&mut active, &mut partition, &mut nd, iteration);
        let converged = stats.moved_fraction < config.convergence_threshold;
        history.push(stats);
        let moved_total = partition.hamming_distance(previous);
        if converged || moved_total >= cap {
            break;
        }
    }

    // Enforce the hard migration budget (see [`IncrementalConfig::max_moves`]): the balance
    // repair of the previous partition is mandatory spend, so a budget below it is infeasible
    // no matter what refinement produced. A balanced result already inside the budget is
    // returned unchanged (bit-identical to the unbudgeted run); otherwise the budget is spent
    // deterministically, repair first, then highest-gain moves.
    if let Some(budget) = incremental.max_moves {
        let repair = balance_repair_moves(previous, config.epsilon);
        if repair.len() > budget {
            return Err(ShpError::InfeasibleBudget {
                required: repair.len(),
                budget,
            });
        }
        // Selection kicks in when the refinement overspent the budget, or when the previous
        // partition needed repair and refinement did not deliver it (the repair moves are the
        // budget's mandatory spend). A balanced in-budget result passes through untouched.
        let needs_selection = partition.hamming_distance(previous) > budget
            || (!repair.is_empty() && !partition.is_balanced(config.epsilon));
        if needs_selection {
            partition = select_budgeted_moves(graph, config, previous, &partition, &repair, budget);
        }
    }

    let elapsed = start.elapsed();
    let report = RunReport {
        final_fanout: average_fanout(graph, &partition),
        final_p_fanout: average_p_fanout(graph, &partition, 0.5),
        imbalance: partition.imbalance(),
        history,
        levels: Vec::new(),
        elapsed,
    };
    Ok(PartitionResult { partition, report })
}

/// The deterministic moves a greedy balance repair of `partition` performs under `epsilon`:
/// for every overloaded bucket (ascending id), its heaviest members (ties by ascending id) are
/// moved to the least-loaded bucket able to accept them (ties by ascending id) until the
/// bucket fits. Returns the empty list for an already-balanced partition.
fn balance_repair_moves(partition: &Partition, epsilon: f64) -> Vec<(u32, u32)> {
    let cap = partition.max_allowed_weight(epsilon);
    let k = partition.num_buckets();
    let mut weights = partition.bucket_weights().to_vec();
    let mut moves = Vec::new();
    for bucket in 0..k {
        if weights[bucket as usize] <= cap {
            continue;
        }
        let mut members = partition.bucket_members(bucket);
        members.sort_unstable_by(|&x, &y| {
            partition
                .vertex_weight(y)
                .cmp(&partition.vertex_weight(x))
                .then(x.cmp(&y))
        });
        for vertex in members {
            if weights[bucket as usize] <= cap {
                break;
            }
            let weight = partition.vertex_weight(vertex);
            let target = (0..k)
                .filter(|&t| t != bucket && weights[t as usize] + weight <= cap)
                .min_by(|&x, &y| {
                    weights[x as usize]
                        .cmp(&weights[y as usize])
                        .then(x.cmp(&y))
                });
            let Some(target) = target else { continue };
            weights[bucket as usize] -= weight;
            weights[target as usize] += weight;
            moves.push((vertex, target));
        }
    }
    moves
}

/// Spends a migration budget the unbudgeted result `full` exceeded: the pre-validated
/// balance-repair moves of `previous` first (mandatory), then `full`'s moves ranked by
/// standalone gain on `previous` (descending, ties by ascending vertex id), each applied only
/// while the destination stays within its allowed weight. Fully deterministic for a given
/// input.
fn select_budgeted_moves(
    graph: &BipartiteGraph,
    config: &ShpConfig,
    previous: &Partition,
    full: &Partition,
    repair: &[(u32, u32)],
    budget: usize,
) -> Partition {
    let mut result = previous.clone();
    let mut repaired = vec![false; graph.num_data()];
    for &(vertex, to) in repair {
        result.assign(vertex, to);
        repaired[vertex as usize] = true;
    }
    let mut remaining = budget - repair.len();

    // Rank the refinement's moves by what each would gain on its own against the previous
    // partition — the highest-value migrations ship first when the budget cannot fit them all.
    let objective = Objective::from_kind(config.objective);
    let nd = NeighborData::build_with_workers(graph, previous, config.workers);
    let mut candidates: Vec<(f64, u32, u32)> = (0..graph.num_data() as u32)
        .filter(|&v| !repaired[v as usize] && full.bucket_of(v) != previous.bucket_of(v))
        .map(|v| {
            let from = previous.bucket_of(v);
            let to = full.bucket_of(v);
            let gain: f64 = graph
                .data_neighbors(v)
                .iter()
                .map(|&q| objective.per_query_gain(nd.count(q, from), nd.count(q, to)))
                .sum();
            (gain, v, to)
        })
        .collect();
    candidates.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let cap = result.max_allowed_weight(config.epsilon);
    for (_, vertex, to) in candidates {
        if remaining == 0 {
            break;
        }
        if result.bucket_weight(to) + result.vertex_weight(vertex) > cap {
            continue;
        }
        result.assign(vertex, to);
        remaining -= 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;
    use shp_hypergraph::GraphBuilder;

    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn incremental_starts_from_previous_partition_and_improves() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4).with_seed(3).with_max_iterations(20);
        let good = crate::partition_direct(&graph, &config).unwrap();

        // Perturb the good partition slightly and repair it incrementally.
        let mut perturbed = good.partition.clone();
        for v in 0..4u32 {
            perturbed.assign(v, (perturbed.bucket_of(v) + 1) % 4);
        }
        let before_fanout = average_fanout(&graph, &perturbed);
        let result =
            partition_incremental(&graph, &config, &IncrementalConfig::default(), &perturbed)
                .unwrap();
        assert!(result.report.final_fanout <= before_fanout + 1e-9);
        // Repairing a small perturbation should not move most of the graph.
        let moved = result.partition.hamming_distance(&perturbed);
        assert!(
            moved <= graph.num_data() / 2,
            "moved {moved} of {}",
            graph.num_data()
        );
    }

    #[test]
    fn move_cap_limits_churn() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4).with_seed(7).with_max_iterations(30);
        let mut rng = Pcg64::seed_from_u64(1);
        let random = Partition::new_random(&graph, 4, &mut rng).unwrap();
        let tight = IncrementalConfig {
            movement_penalty: 0.0,
            max_moved_fraction: 0.1,
            max_moves: None,
        };
        let result = partition_incremental(&graph, &config, &tight, &random).unwrap();
        let moved = result.partition.hamming_distance(&random);
        // The cap is checked after each iteration, so it can be exceeded by at most one
        // iteration's worth of moves; with a 10% cap the total churn stays well below half.
        assert!(moved < graph.num_data() / 2, "moved {moved}");
    }

    #[test]
    fn mismatched_previous_partition_is_rejected() {
        let graph = community_graph(2, 4);
        let other = community_graph(2, 5);
        let config = ShpConfig::direct(2);
        let mut rng = Pcg64::seed_from_u64(1);
        let previous = Partition::new_random(&other, 2, &mut rng).unwrap();
        assert!(
            partition_incremental(&graph, &config, &IncrementalConfig::default(), &previous)
                .is_err()
        );

        let wrong_k = Partition::new_random(&graph, 4, &mut rng).unwrap();
        assert!(
            partition_incremental(&graph, &config, &IncrementalConfig::default(), &wrong_k)
                .is_err()
        );
    }

    #[test]
    fn budgeted_runs_never_move_more_than_the_budget() {
        let graph = community_graph(4, 8);
        // Widen epsilon so budget selection has headroom to apply single moves (at the
        // default 5% every bucket is already at its capacity of 8).
        let mut config = ShpConfig::direct(4).with_seed(11).with_max_iterations(20);
        config.epsilon = 0.5;
        // Aligned placement with 12 strays rotated one bucket over (3 per community, so the
        // perturbation stays balanced): the unbudgeted run moves all 12 strays home.
        let perturbed = Partition::from_assignment(
            &graph,
            4,
            (0..32u32)
                .map(|v| if v % 8 < 3 { (v / 8 + 1) % 4 } else { v / 8 })
                .collect(),
        )
        .unwrap();
        let budgeted = IncrementalConfig {
            movement_penalty: 0.0,
            max_moved_fraction: 1.0,
            max_moves: Some(5),
        };
        let result = partition_incremental(&graph, &config, &budgeted, &perturbed).unwrap();
        let moved = result.partition.hamming_distance(&perturbed);
        assert!(moved <= 5, "moved {moved} > budget 5");
        assert!(moved > 0, "budget selection applied no move at all");
        // Deterministic: the identical run reproduces the identical partition.
        let again = partition_incremental(&graph, &config, &budgeted, &perturbed).unwrap();
        assert_eq!(again.partition.assignment(), result.partition.assignment());
    }

    #[test]
    fn slack_budget_reproduces_the_unbudgeted_result_bit_identically() {
        let graph = community_graph(4, 8);
        let mut config = ShpConfig::direct(4).with_seed(3).with_max_iterations(20);
        config.epsilon = 0.5;
        // A balanced previous partition with 12 strays, so the unbudgeted run makes real
        // moves (a vacuous zero-move run would make this test prove nothing).
        let previous = Partition::from_assignment(
            &graph,
            4,
            (0..32u32)
                .map(|v| if v % 8 < 3 { (v / 8 + 1) % 4 } else { v / 8 })
                .collect(),
        )
        .unwrap();
        let free = IncrementalConfig {
            movement_penalty: 0.0,
            max_moved_fraction: 1.0,
            max_moves: None,
        };
        let unbudgeted = partition_incremental(&graph, &config, &free, &previous).unwrap();
        assert!(
            unbudgeted.partition.hamming_distance(&previous) > 0,
            "the unbudgeted run must move something for this test to be meaningful"
        );
        let slack = IncrementalConfig {
            max_moves: Some(graph.num_data()),
            ..free
        };
        let budgeted = partition_incremental(&graph, &config, &slack, &previous).unwrap();
        assert_eq!(
            budgeted.partition.assignment(),
            unbudgeted.partition.assignment(),
            "a slack budget must not change the result"
        );
    }

    #[test]
    fn infeasible_budget_is_rejected_with_the_typed_error() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4).with_max_iterations(5);
        // Everything piled on bucket 0: repair must shed 24 of 32 vertices (cap = 8 at 5%).
        let piled = Partition::from_assignment(&graph, 4, vec![0; 32]).unwrap();
        let tight = IncrementalConfig {
            movement_penalty: 0.0,
            max_moved_fraction: 1.0,
            max_moves: Some(10),
        };
        let err = partition_incremental(&graph, &config, &tight, &piled).unwrap_err();
        assert!(
            matches!(
                err,
                ShpError::InfeasibleBudget {
                    required: 24,
                    budget: 10
                }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn budget_selection_repairs_balance_before_spending_on_gains() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4).with_max_iterations(5);
        let piled = Partition::from_assignment(&graph, 4, vec![0; 32]).unwrap();
        // Exactly the repair requirement: the whole budget goes to balance repair.
        let exact = IncrementalConfig {
            movement_penalty: 0.0,
            max_moved_fraction: 1.0,
            max_moves: Some(24),
        };
        let result = partition_incremental(&graph, &config, &exact, &piled).unwrap();
        assert!(result.partition.is_balanced(config.epsilon));
        assert!(result.partition.hamming_distance(&piled) <= 24);
    }

    #[test]
    fn invalid_incremental_options_are_rejected() {
        let graph = community_graph(2, 4);
        let config = ShpConfig::direct(2);
        let mut rng = Pcg64::seed_from_u64(1);
        let previous = Partition::new_random(&graph, 2, &mut rng).unwrap();
        let bad_fraction = IncrementalConfig {
            movement_penalty: 0.1,
            max_moved_fraction: 2.0,
            max_moves: None,
        };
        assert!(partition_incremental(&graph, &config, &bad_fraction, &previous).is_err());
        let bad_penalty = IncrementalConfig {
            movement_penalty: -1.0,
            max_moved_fraction: 0.5,
            max_moves: None,
        };
        assert!(partition_incremental(&graph, &config, &bad_penalty, &previous).is_err());
    }
}
