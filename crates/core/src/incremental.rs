//! Incremental re-partitioning (Section 5, requirement (i)).
//!
//! Production storage sharding cannot afford to move most of the data when the graph changes
//! slightly. The paper's recipe: initialize the local search with the previous partition and
//! penalize movement away from it in the gain computation, so only moves whose benefit exceeds
//! the migration cost survive.

use crate::config::ShpConfig;
use crate::error::{ShpError, ShpResult};
use crate::gains::TargetConstraint;
use crate::neighbor_data::NeighborData;
use crate::objective::Objective;
use crate::refinement::{IterationStats, Refiner};
use crate::report::{PartitionResult, RunReport};
use serde::{Deserialize, Serialize};
use shp_hypergraph::{average_fanout, average_p_fanout, BipartiteGraph, Partition};
use std::time::Instant;

/// Options of an incremental update run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Gain penalty subtracted from every move that takes a vertex away from its bucket in the
    /// previous partition (moves back to it are not penalized). Expressed in the same unit as
    /// the objective gains.
    pub movement_penalty: f64,
    /// Hard cap on the fraction of data vertices allowed to change buckets relative to the
    /// previous partition; refinement stops once the cap is hit. `1.0` disables the cap.
    pub max_moved_fraction: f64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            movement_penalty: 0.1,
            max_moved_fraction: 1.0,
        }
    }
}

/// Refines an existing partition of (a possibly updated) `graph` without moving more data than
/// necessary.
///
/// The previous partition must cover exactly the data vertices of `graph`; callers adding new
/// vertices should first extend the assignment (e.g. hashing new vertices to random buckets).
///
/// # Errors
/// Returns [`ShpError::InvalidConfig`] when the configuration is invalid and
/// [`ShpError::PartitionMismatch`] when the previous partition does not match the graph.
pub fn partition_incremental(
    graph: &BipartiteGraph,
    config: &ShpConfig,
    incremental: &IncrementalConfig,
    previous: &Partition,
) -> ShpResult<PartitionResult> {
    config.validate()?;
    if previous.num_data() != graph.num_data() {
        return Err(ShpError::PartitionMismatch {
            message: format!(
                "previous partition covers {} vertices but the graph has {}",
                previous.num_data(),
                graph.num_data()
            ),
        });
    }
    if previous.num_buckets() != config.num_buckets {
        return Err(ShpError::PartitionMismatch {
            message: format!(
                "previous partition has k={} but the configuration asks for k={}",
                previous.num_buckets(),
                config.num_buckets
            ),
        });
    }
    if !(0.0..=1.0).contains(&incremental.max_moved_fraction) {
        return Err(ShpError::InvalidConfig(
            "max_moved_fraction must lie in [0, 1]".into(),
        ));
    }
    if incremental.movement_penalty < 0.0 {
        return Err(ShpError::InvalidConfig(
            "movement_penalty must be non-negative".into(),
        ));
    }

    let start = Instant::now();
    let mut partition = previous.clone();
    let mut nd = NeighborData::build_with_workers(graph, &partition, config.workers);
    // Penalize every move whose target differs from the vertex's bucket in the previous
    // partition; moves back to the original bucket keep their full gain.
    let original: Vec<u32> = previous.assignment().to_vec();
    let penalty = incremental.movement_penalty;
    let refiner = Refiner::new(
        graph,
        Objective::from_kind(config.objective),
        TargetConstraint::all(config.num_buckets),
        config.swap_strategy,
        config.balance_mode,
        config.allow_imbalanced_moves,
        config.epsilon,
        config.seed,
    )
    .with_workers(config.workers)
    .with_gain_adjuster(Box::new(move |proposal| {
        if proposal.to != original[proposal.vertex as usize] {
            proposal.gain - penalty
        } else {
            proposal.gain
        }
    }));

    // Additionally cap the total churn relative to the previous partition.
    let cap = (incremental.max_moved_fraction * graph.num_data() as f64).floor() as usize;
    let mut history: Vec<IterationStats> = Vec::new();
    let mut active = refiner.new_active_set();
    for iteration in 0..config.max_iterations {
        let stats = refiner.run_iteration_with(&mut active, &mut partition, &mut nd, iteration);
        let converged = stats.moved_fraction < config.convergence_threshold;
        history.push(stats);
        let moved_total = partition.hamming_distance(previous);
        if converged || moved_total >= cap {
            break;
        }
    }

    let elapsed = start.elapsed();
    let report = RunReport {
        final_fanout: average_fanout(graph, &partition),
        final_p_fanout: average_p_fanout(graph, &partition, 0.5),
        imbalance: partition.imbalance(),
        history,
        levels: Vec::new(),
        elapsed,
    };
    Ok(PartitionResult { partition, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;
    use shp_hypergraph::GraphBuilder;

    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn incremental_starts_from_previous_partition_and_improves() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4).with_seed(3).with_max_iterations(20);
        let good = crate::partition_direct(&graph, &config).unwrap();

        // Perturb the good partition slightly and repair it incrementally.
        let mut perturbed = good.partition.clone();
        for v in 0..4u32 {
            perturbed.assign(v, (perturbed.bucket_of(v) + 1) % 4);
        }
        let before_fanout = average_fanout(&graph, &perturbed);
        let result =
            partition_incremental(&graph, &config, &IncrementalConfig::default(), &perturbed)
                .unwrap();
        assert!(result.report.final_fanout <= before_fanout + 1e-9);
        // Repairing a small perturbation should not move most of the graph.
        let moved = result.partition.hamming_distance(&perturbed);
        assert!(
            moved <= graph.num_data() / 2,
            "moved {moved} of {}",
            graph.num_data()
        );
    }

    #[test]
    fn move_cap_limits_churn() {
        let graph = community_graph(4, 8);
        let config = ShpConfig::direct(4).with_seed(7).with_max_iterations(30);
        let mut rng = Pcg64::seed_from_u64(1);
        let random = Partition::new_random(&graph, 4, &mut rng).unwrap();
        let tight = IncrementalConfig {
            movement_penalty: 0.0,
            max_moved_fraction: 0.1,
        };
        let result = partition_incremental(&graph, &config, &tight, &random).unwrap();
        let moved = result.partition.hamming_distance(&random);
        // The cap is checked after each iteration, so it can be exceeded by at most one
        // iteration's worth of moves; with a 10% cap the total churn stays well below half.
        assert!(moved < graph.num_data() / 2, "moved {moved}");
    }

    #[test]
    fn mismatched_previous_partition_is_rejected() {
        let graph = community_graph(2, 4);
        let other = community_graph(2, 5);
        let config = ShpConfig::direct(2);
        let mut rng = Pcg64::seed_from_u64(1);
        let previous = Partition::new_random(&other, 2, &mut rng).unwrap();
        assert!(
            partition_incremental(&graph, &config, &IncrementalConfig::default(), &previous)
                .is_err()
        );

        let wrong_k = Partition::new_random(&graph, 4, &mut rng).unwrap();
        assert!(
            partition_incremental(&graph, &config, &IncrementalConfig::default(), &wrong_k)
                .is_err()
        );
    }

    #[test]
    fn invalid_incremental_options_are_rejected() {
        let graph = community_graph(2, 4);
        let config = ShpConfig::direct(2);
        let mut rng = Pcg64::seed_from_u64(1);
        let previous = Partition::new_random(&graph, 2, &mut rng).unwrap();
        let bad_fraction = IncrementalConfig {
            movement_penalty: 0.1,
            max_moved_fraction: 2.0,
        };
        assert!(partition_incremental(&graph, &config, &bad_fraction, &previous).is_err());
        let bad_penalty = IncrementalConfig {
            movement_penalty: -1.0,
            max_moved_fraction: 0.5,
        };
        assert!(partition_incremental(&graph, &config, &bad_penalty, &previous).is_err());
    }
}
