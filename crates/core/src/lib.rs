//! # shp-core
//!
//! The Social Hash Partitioner (SHP): a scalable hypergraph partitioner that minimizes query
//! fanout by local search on the *probabilistic fanout* objective, as described in
//! "Social Hash Partitioner: A Scalable Distributed Hypergraph Partitioner" (Kabiljo et al.,
//! VLDB 2017).
//!
//! Two execution paths implement the same algorithm:
//!
//! * the in-process path ([`partition_direct`] for SHP-k, [`partition_recursive`] for
//!   SHP-2 / SHP-r), whose refinement sweeps — gain computation, neighbor-data and
//!   gain-histogram construction — run on the rayon shim's scoped thread pool with
//!   `ShpConfig::workers` (`PartitionSpec::workers`) threads, and
//! * the distributed path ([`distributed::partition_distributed`]) which runs the identical
//!   four-superstep iteration (Figure 3 of the paper) on the vertex-centric BSP engine of
//!   `shp-vertex-centric`, with per-superstep communication accounting and one real thread
//!   per simulated worker.
//!
//! # Determinism contract
//!
//! Parallelism never changes results: every parallel phase splits its index space into
//! contiguous chunks and merges the per-chunk results **in chunk order** (ordered chunk
//! reduction — see the vendored `rayon` crate docs), and probabilistic move decisions hash
//! `(seed, iteration, vertex)` instead of sampling from a shared RNG stream. A fixed
//! [`api::PartitionSpec`] therefore produces a bit-identical [`api::PartitionOutcome`] for
//! every worker count, which `tests/parallel_conformance.rs` enforces for all registered
//! algorithms.
//!
//! Every execution path (plus the baselines of `shp-baselines`) is also reachable through the
//! unified [`api`] module — one [`api::Partitioner`] trait, one [`api::PartitionSpec`], one
//! [`api::PartitionOutcome`], and a runtime [`api::AlgorithmRegistry`] for dispatch by name.
//!
//! The easiest in-process entry point is [`SocialHashPartitioner`]:
//!
//! ```
//! use shp_core::{ShpConfig, SocialHashPartitioner};
//! use shp_hypergraph::GraphBuilder;
//!
//! // Three queries over six data records (Figure 1 of the paper).
//! let mut builder = GraphBuilder::new();
//! builder.add_query([0, 1, 5]);
//! builder.add_query([0, 1, 2, 3]);
//! builder.add_query([3, 4, 5]);
//! let graph = builder.build().unwrap();
//!
//! let partitioner = SocialHashPartitioner::new(ShpConfig::recursive_bisection(2)).unwrap();
//! let result = partitioner.partition(&graph);
//! assert_eq!(result.partition.num_buckets(), 2);
//! assert!(result.report.final_fanout <= 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod config;
pub mod direct;
pub mod distributed;
pub mod error;
pub mod gains;
pub mod histogram;
pub mod incremental;
pub mod multidim;
pub mod neighbor_data;
pub mod objective;
pub mod pair_table;
pub mod recursive;
pub mod refinement;
pub mod report;
pub mod swap;

pub use api::{
    AlgorithmRegistry, BoxedPartitioner, DistributedShp, IncrementalShp, IterationEvent,
    NoopObserver, PartitionOutcome, PartitionSpec, Partitioner, ProgressObserver, Shp2, ShpK,
    TelemetryObserver, TraceObserver,
};
pub use config::{BalanceMode, ObjectiveKind, PartitionMode, ShpConfig, SwapStrategy};
pub use direct::partition_direct;
pub use distributed::{partition_distributed, DistributedRunResult};
pub use error::{ShpError, ShpResult};
pub use gains::{GainKernel, GainScratch, MoveProposal, TargetConstraint};
pub use incremental::{partition_incremental, IncrementalConfig};
pub use multidim::{partition_multidimensional, MultiDimConfig};
pub use neighbor_data::NeighborData;
pub use objective::Objective;
pub use pair_table::PairTable;
pub use recursive::partition_recursive;
pub use refinement::{ActiveSet, IterationStats, Refiner};
pub use report::{LevelReport, PartitionResult, RunReport};

use shp_hypergraph::BipartiteGraph;

/// High-level entry point dispatching to direct (SHP-k) or recursive (SHP-2 / SHP-r) mode based
/// on the configuration.
#[derive(Debug, Clone)]
pub struct SocialHashPartitioner {
    config: ShpConfig,
}

impl SocialHashPartitioner {
    /// Creates a partitioner, validating the configuration.
    ///
    /// # Errors
    /// Returns [`ShpError::InvalidConfig`] for invalid configurations (zero buckets, `p`
    /// outside `(0, 1)`, negative `ε`, …).
    pub fn new(config: ShpConfig) -> ShpResult<Self> {
        config.validate()?;
        Ok(SocialHashPartitioner { config })
    }

    /// The configuration the partitioner was built with.
    pub fn config(&self) -> &ShpConfig {
        &self.config
    }

    /// Partitions the graph according to the configured mode.
    pub fn partition(&self, graph: &BipartiteGraph) -> PartitionResult {
        let result = match self.config.mode {
            PartitionMode::Direct => partition_direct(graph, &self.config),
            PartitionMode::Recursive { .. } => partition_recursive(graph, &self.config),
        };
        result.expect("configuration was validated at construction time")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn small_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..4u32 {
            let members: Vec<u32> = (0..6).map(|i| g * 6 + i).collect();
            for _ in 0..4 {
                b.add_query(members.clone());
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn facade_dispatches_to_both_modes() {
        let graph = small_graph();
        let recursive = SocialHashPartitioner::new(ShpConfig::recursive_bisection(4)).unwrap();
        let direct = SocialHashPartitioner::new(ShpConfig::direct(4)).unwrap();
        let r = recursive.partition(&graph);
        let d = direct.partition(&graph);
        assert_eq!(r.partition.num_buckets(), 4);
        assert_eq!(d.partition.num_buckets(), 4);
        assert!(!r.report.levels.is_empty());
        assert!(d.report.levels.is_empty());
    }

    #[test]
    fn facade_rejects_invalid_config() {
        assert!(SocialHashPartitioner::new(ShpConfig::direct(0)).is_err());
        assert!(SocialHashPartitioner::new(ShpConfig::direct(4).with_p(2.0)).is_err());
    }

    #[test]
    fn config_accessor_returns_the_config() {
        let config = ShpConfig::direct(16).with_seed(5);
        let p = SocialHashPartitioner::new(config.clone()).unwrap();
        assert_eq!(p.config(), &config);
    }
}
