//! Multi-dimensional balance (Section 5, requirement (ii)).
//!
//! A data vertex may carry several resource dimensions (CPU cost, memory, disk, …). Requiring
//! strict balance on every dimension during the local search harms quality, so the paper uses a
//! merge heuristic instead: partition into `c · k` buckets with the regular algorithm (balancing
//! only the primary dimension), then greedily merge the `c · k` small buckets into `k` final
//! buckets so that the maximum load over *all* dimensions is as even as possible.

use crate::config::{PartitionMode, ShpConfig};
use crate::error::{ShpError, ShpResult};
use crate::report::PartitionResult;
use serde::{Deserialize, Serialize};
use shp_hypergraph::{BipartiteGraph, BucketId, DataId, Partition};

/// Configuration of the multi-dimensional merge heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiDimConfig {
    /// Over-partitioning factor `c > 1`: the regular partitioner produces `c · k` buckets which
    /// are then merged into `k`.
    pub over_partitioning_factor: u32,
}

impl Default for MultiDimConfig {
    fn default() -> Self {
        MultiDimConfig {
            over_partitioning_factor: 4,
        }
    }
}

/// Result of a multi-dimensional run: the final partition plus the per-bucket loads in every
/// dimension.
#[derive(Debug, Clone)]
pub struct MultiDimResult {
    /// The merged `k`-bucket partition.
    pub partition: Partition,
    /// `loads[dim][bucket]` = total weight of dimension `dim` in the bucket.
    pub loads: Vec<Vec<u64>>,
    /// The intermediate `c · k`-bucket result (useful for diagnostics).
    pub fine_result: PartitionResult,
}

/// Partitions `graph` into `config.num_buckets` buckets while balancing several weight
/// dimensions.
///
/// `dimension_weights[dim][v]` is the weight of data vertex `v` in dimension `dim`; the vector
/// must contain at least one dimension and every dimension must cover all data vertices.
///
/// # Errors
/// Returns [`ShpError::InvalidConfig`] on invalid configuration or mismatched weight vectors.
pub fn partition_multidimensional(
    graph: &BipartiteGraph,
    config: &ShpConfig,
    multi: &MultiDimConfig,
    dimension_weights: &[Vec<u64>],
) -> ShpResult<MultiDimResult> {
    config.validate()?;
    if multi.over_partitioning_factor < 2 {
        return Err(ShpError::InvalidConfig(
            "over_partitioning_factor must be at least 2".into(),
        ));
    }
    if dimension_weights.is_empty() {
        return Err(ShpError::InvalidConfig(
            "at least one weight dimension is required".into(),
        ));
    }
    for (dim, weights) in dimension_weights.iter().enumerate() {
        if weights.len() != graph.num_data() {
            return Err(ShpError::InvalidConfig(format!(
                "dimension {dim} has {} weights but the graph has {} data vertices",
                weights.len(),
                graph.num_data()
            )));
        }
    }

    // Step 1: over-partition into c·k buckets with the regular algorithm.
    let fine_k = config
        .num_buckets
        .saturating_mul(multi.over_partitioning_factor)
        .min(graph.num_data().max(1) as u32);
    let fine_config = ShpConfig {
        num_buckets: fine_k,
        ..config.clone()
    };
    let fine_result = match fine_config.mode {
        PartitionMode::Direct => crate::partition_direct(graph, &fine_config)?,
        PartitionMode::Recursive { .. } => crate::partition_recursive(graph, &fine_config)?,
    };

    // Step 2: compute per-fine-bucket loads in every dimension.
    let num_dims = dimension_weights.len();
    let mut fine_loads = vec![vec![0u64; fine_k as usize]; num_dims];
    for v in 0..graph.num_data() as DataId {
        let b = fine_result.partition.bucket_of(v) as usize;
        for dim in 0..num_dims {
            fine_loads[dim][b] += dimension_weights[dim][v as usize];
        }
    }

    // Step 3: greedily merge fine buckets into k final buckets. Fine buckets are processed from
    // the heaviest (by normalized dominant dimension) to the lightest; each goes to the final
    // bucket whose post-merge maximum normalized load is smallest (longest-processing-time
    // style bin packing generalized to several dimensions).
    let totals: Vec<u64> = (0..num_dims)
        .map(|dim| fine_loads[dim].iter().sum::<u64>().max(1))
        .collect();
    let dominant = |bucket: usize| -> f64 {
        (0..num_dims)
            .map(|dim| fine_loads[dim][bucket] as f64 / totals[dim] as f64)
            .fold(0.0, f64::max)
    };
    let mut order: Vec<usize> = (0..fine_k as usize).collect();
    order.sort_by(|&a, &b| {
        dominant(b)
            .partial_cmp(&dominant(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let k = config.num_buckets as usize;
    let mut final_loads = vec![vec![0u64; k]; num_dims];
    let mut fine_to_final: Vec<BucketId> = vec![0; fine_k as usize];
    for &fine in &order {
        // Ties keep the lowest bucket index: `min_by` returns the first minimum.
        let best_bucket = (0..k)
            .map(|candidate| {
                let score = (0..num_dims)
                    .map(|dim| {
                        (final_loads[dim][candidate] + fine_loads[dim][fine]) as f64
                            / totals[dim] as f64
                    })
                    .fold(0.0, f64::max);
                (candidate, score)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(candidate, _)| candidate)
            .unwrap_or(0);
        fine_to_final[fine] = best_bucket as BucketId;
        for dim in 0..num_dims {
            final_loads[dim][best_bucket] += fine_loads[dim][fine];
        }
    }

    // Step 4: project the merge onto the vertices.
    let partition = fine_result
        .partition
        .remap_buckets(config.num_buckets, |_, fine| fine_to_final[fine as usize]);

    Ok(MultiDimResult {
        partition,
        loads: final_loads,
        fine_result,
    })
}

/// Maximum-over-dimensions imbalance of a load matrix: `max_dim max_bucket load / (total/k) − 1`.
pub fn multi_dim_imbalance(loads: &[Vec<u64>]) -> f64 {
    let mut worst: f64 = 0.0;
    for dim in loads {
        let total: u64 = dim.iter().sum();
        if total == 0 || dim.is_empty() {
            continue;
        }
        let ideal = total as f64 / dim.len() as f64;
        let max = *dim.iter().max().expect("non-empty") as f64;
        worst = worst.max(max / ideal - 1.0);
    }
    worst.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;
    use shp_hypergraph::GraphBuilder;

    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn multidim_balances_both_dimensions_better_than_single_dim_merge() {
        let graph = community_graph(8, 8);
        let n = graph.num_data();
        // Dimension 0: uniform; dimension 1: skewed (vertices of the first half are 4x heavier).
        let dim0: Vec<u64> = vec![1; n];
        let dim1: Vec<u64> = (0..n).map(|v| if v < n / 2 { 4 } else { 1 }).collect();
        let config = ShpConfig::recursive_bisection(4)
            .with_seed(13)
            .with_max_iterations(10);
        let result = partition_multidimensional(
            &graph,
            &config,
            &MultiDimConfig {
                over_partitioning_factor: 4,
            },
            &[dim0.clone(), dim1.clone()],
        )
        .unwrap();
        assert_eq!(result.partition.num_buckets(), 4);
        let imbalance = multi_dim_imbalance(&result.loads);
        assert!(
            imbalance < 0.6,
            "multi-dimensional imbalance too high: {imbalance}"
        );
        // Every bucket received some vertices.
        assert!(result.partition.bucket_weights().iter().all(|&w| w > 0));
    }

    #[test]
    fn loads_sum_to_dimension_totals() {
        let graph = community_graph(4, 6);
        let n = graph.num_data();
        let dim0: Vec<u64> = (0..n as u64).collect();
        let config = ShpConfig::recursive_bisection(2)
            .with_seed(3)
            .with_max_iterations(5);
        let result = partition_multidimensional(
            &graph,
            &config,
            &MultiDimConfig {
                over_partitioning_factor: 2,
            },
            std::slice::from_ref(&dim0),
        )
        .unwrap();
        let total: u64 = result.loads[0].iter().sum();
        assert_eq!(total, dim0.iter().sum::<u64>());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let graph = community_graph(2, 4);
        let config = ShpConfig::recursive_bisection(2);
        let ok_weights = vec![vec![1u64; graph.num_data()]];
        assert!(partition_multidimensional(
            &graph,
            &config,
            &MultiDimConfig {
                over_partitioning_factor: 1
            },
            &ok_weights
        )
        .is_err());
        assert!(
            partition_multidimensional(&graph, &config, &MultiDimConfig::default(), &[]).is_err()
        );
        assert!(partition_multidimensional(
            &graph,
            &config,
            &MultiDimConfig::default(),
            &[vec![1u64; 3]]
        )
        .is_err());
    }

    #[test]
    fn multi_dim_imbalance_of_uniform_loads_is_zero() {
        assert_eq!(multi_dim_imbalance(&[vec![5, 5, 5, 5]]), 0.0);
        assert!(multi_dim_imbalance(&[vec![5, 5], vec![10, 0]]) > 0.9);
        assert_eq!(multi_dim_imbalance(&[]), 0.0);
    }

    #[test]
    fn merge_is_deterministic() {
        let graph = community_graph(4, 6);
        let n = graph.num_data();
        let mut rng = Pcg64::seed_from_u64(4);
        use rand::Rng;
        let dims: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..n).map(|_| rng.gen_range(1..10)).collect())
            .collect();
        let config = ShpConfig::recursive_bisection(4)
            .with_seed(8)
            .with_max_iterations(6);
        let a =
            partition_multidimensional(&graph, &config, &MultiDimConfig::default(), &dims).unwrap();
        let b =
            partition_multidimensional(&graph, &config, &MultiDimConfig::default(), &dims).unwrap();
        assert_eq!(a.partition, b.partition);
    }
}
