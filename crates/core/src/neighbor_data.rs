//! Per-query "neighbor data": the number of a query's pins in each bucket.
//!
//! The paper calls the vector `n_i(q)` the *neighbor data* of query `q`; it is the only state
//! the gain computation needs (Equation 1). Following the paper's space analysis (Section 3.3),
//! only the non-zero entries are stored — at most `fanout(q)` of them per query — so the total
//! footprint is `O(|E|)` regardless of the bucket count.

use shp_hypergraph::{BipartiteGraph, BucketId, DataId, Partition, QueryId};

/// Sparse per-query bucket counts, kept in sync with the partition by the refinement loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborData {
    /// For each query, the sorted list of `(bucket, count)` pairs with `count > 0`.
    counts: Vec<Vec<(BucketId, u32)>>,
}

impl NeighborData {
    /// Builds the neighbor data of every query for the given partition, sequentially.
    pub fn build(graph: &BipartiteGraph, partition: &Partition) -> Self {
        Self::build_with_workers(graph, partition, 1)
    }

    /// Builds the neighbor data over `workers` threads: queries are split into contiguous
    /// index chunks and each worker fills the per-query histograms of its own chunk, so the
    /// result is bit-identical to the sequential build for every worker count.
    pub fn build_with_workers(
        graph: &BipartiteGraph,
        partition: &Partition,
        workers: usize,
    ) -> Self {
        let counts: Vec<Vec<(BucketId, u32)>> =
            rayon::pool::map_index(graph.num_queries(), workers, |q| {
                let mut local: Vec<(BucketId, u32)> = Vec::new();
                for &v in graph.query_neighbors(q as QueryId) {
                    let b = partition.bucket_of(v);
                    match local.binary_search_by_key(&b, |&(bb, _)| bb) {
                        Ok(idx) => local[idx].1 += 1,
                        Err(idx) => local.insert(idx, (b, 1)),
                    }
                }
                local
            });
        NeighborData { counts }
    }

    /// Number of queries tracked.
    pub fn num_queries(&self) -> usize {
        self.counts.len()
    }

    /// Number of pins of query `q` in bucket `b` (0 if none).
    #[inline]
    pub fn count(&self, q: QueryId, b: BucketId) -> u32 {
        let entry = &self.counts[q as usize];
        match entry.binary_search_by_key(&b, |&(bb, _)| bb) {
            Ok(idx) => entry[idx].1,
            Err(_) => 0,
        }
    }

    /// The non-zero `(bucket, count)` entries of query `q`, sorted by bucket.
    #[inline]
    pub fn nonzero(&self, q: QueryId) -> &[(BucketId, u32)] {
        &self.counts[q as usize]
    }

    /// Current fanout of query `q` (number of distinct buckets it touches).
    #[inline]
    pub fn fanout(&self, q: QueryId) -> usize {
        self.counts[q as usize].len()
    }

    /// Total number of stored non-zero entries (equals `Σ_q fanout(q)`).
    pub fn total_entries(&self) -> usize {
        self.counts.iter().map(|c| c.len()).sum()
    }

    /// Updates the neighbor data after data vertex `v` moved from bucket `from` to bucket `to`.
    ///
    /// Each adjacent query is updated with a single combined decrement-increment pass: both
    /// bucket positions are located together (one linear scan for the common `fanout ≤ 4`
    /// case, otherwise one binary search over the full entry plus one over the remaining
    /// suffix), and the remove-then-insert case shifts the entry once via an in-place rotate
    /// instead of two memmoves.
    ///
    /// # Panics
    /// Debug-asserts that `v` actually had a pin counted in `from` for each adjacent query.
    pub fn apply_move(&mut self, graph: &BipartiteGraph, v: DataId, from: BucketId, to: BucketId) {
        if from == to {
            return;
        }
        for &q in graph.data_neighbors(v) {
            let entry = &mut self.counts[q as usize];
            let (from_pos, to_pos) = if entry.len() <= SMALL_FANOUT {
                locate_pair_linear(entry, from, to)
            } else {
                locate_pair_binary(entry, from, to)
            };
            let Some(from_idx) = from_pos else {
                debug_assert!(false, "query {q} had no pins in bucket {from}");
                continue;
            };
            debug_assert!(entry[from_idx].1 >= 1);
            match to_pos {
                Ok(to_idx) => {
                    // Both buckets present: pure count updates, no shifting.
                    entry[to_idx].1 += 1;
                    if entry[from_idx].1 == 1 {
                        entry.remove(from_idx);
                    } else {
                        entry[from_idx].1 -= 1;
                    }
                }
                Err(insert_at) if entry[from_idx].1 > 1 => {
                    entry[from_idx].1 -= 1;
                    entry.insert(insert_at, (to, 1));
                }
                Err(insert_at) => {
                    // `from` empties exactly as `to` appears: rewrite the slot in place and
                    // rotate it to its sorted position — one shift instead of remove + insert.
                    entry[from_idx] = (to, 1);
                    if insert_at > from_idx + 1 {
                        entry[from_idx..insert_at].rotate_left(1);
                    } else if insert_at <= from_idx {
                        entry[insert_at..=from_idx].rotate_right(1);
                    }
                }
            }
        }
    }

    /// Average fanout implied by the stored counts (must equal the metric computed from the
    /// partition; used as a consistency check and for cheap convergence reporting).
    pub fn average_fanout(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.total_entries() as f64 / self.counts.len() as f64
    }

    /// Average p-fanout implied by the stored counts.
    pub fn average_p_fanout(&self, p: f64) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let q = 1.0 - p;
        let total: f64 = self
            .counts
            .iter()
            .map(|entry| {
                entry
                    .iter()
                    .map(|&(_, n)| 1.0 - q.powi(n as i32))
                    .sum::<f64>()
            })
            .sum();
        total / self.counts.len() as f64
    }
}

/// Fanout threshold at or below which [`locate_pair_linear`] (one cache-friendly scan) beats
/// two binary searches. Most social-graph queries sit in this regime once refinement has
/// colocated their pins.
const SMALL_FANOUT: usize = 4;

/// Locates `from` and `to` in a sorted entry with a single linear pass: returns the index of
/// `from` (if present) and the index of `to` (`Ok`) or its insertion point (`Err`).
#[inline]
fn locate_pair_linear(
    entry: &[(BucketId, u32)],
    from: BucketId,
    to: BucketId,
) -> (Option<usize>, Result<usize, usize>) {
    let mut from_pos = None;
    let mut less_than_to = 0usize;
    let mut to_pos = None;
    for (i, &(b, _)) in entry.iter().enumerate() {
        if b == from {
            from_pos = Some(i);
        }
        if b < to {
            less_than_to += 1;
        } else if b == to {
            to_pos = Some(i);
        }
    }
    (from_pos, to_pos.ok_or(less_than_to))
}

/// Binary-search counterpart of [`locate_pair_linear`] for larger fanouts: the smaller bucket
/// is searched over the full entry, the larger one only over the remaining suffix.
#[inline]
fn locate_pair_binary(
    entry: &[(BucketId, u32)],
    from: BucketId,
    to: BucketId,
) -> (Option<usize>, Result<usize, usize>) {
    let (lo, hi) = if from < to { (from, to) } else { (to, from) };
    let lo_res = entry.binary_search_by_key(&lo, |&(b, _)| b);
    let split = match lo_res {
        Ok(i) => i + 1,
        Err(i) => i,
    };
    let hi_res = match entry[split..].binary_search_by_key(&hi, |&(b, _)| b) {
        Ok(i) => Ok(split + i),
        Err(i) => Err(split + i),
    };
    if from < to {
        (lo_res.ok(), hi_res)
    } else {
        (hi_res.ok(), lo_res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::{average_fanout, average_p_fanout, GraphBuilder};

    fn figure1() -> (BipartiteGraph, Partition) {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        (g, p)
    }

    #[test]
    fn build_matches_metric_counts() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        assert_eq!(nd.num_queries(), 3);
        assert_eq!(nd.count(0, 0), 2);
        assert_eq!(nd.count(0, 1), 1);
        assert_eq!(nd.count(2, 0), 0);
        assert_eq!(nd.count(2, 1), 3);
        assert_eq!(nd.fanout(0), 2);
        assert_eq!(nd.fanout(2), 1);
        assert_eq!(nd.nonzero(1), &[(0, 3), (1, 1)]);
        assert_eq!(nd.total_entries(), 5);
    }

    #[test]
    fn averages_match_partition_metrics() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        assert!((nd.average_fanout() - average_fanout(&g, &p)).abs() < 1e-12);
        for prob in [0.1, 0.5, 0.9] {
            assert!((nd.average_p_fanout(prob) - average_p_fanout(&g, &p, prob)).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_move_keeps_counts_in_sync_with_rebuild() {
        let (g, mut p) = figure1();
        let mut nd = NeighborData::build(&g, &p);
        // Move vertex 3 from bucket 1 to bucket 0, then vertex 0 from 0 to 1.
        nd.apply_move(&g, 3, 1, 0);
        p.assign(3, 0);
        nd.apply_move(&g, 0, 0, 1);
        p.assign(0, 1);
        let rebuilt = NeighborData::build(&g, &p);
        assert_eq!(nd, rebuilt);
    }

    #[test]
    fn apply_move_to_same_bucket_is_noop() {
        let (g, p) = figure1();
        let mut nd = NeighborData::build(&g, &p);
        let before = nd.clone();
        nd.apply_move(&g, 2, 0, 0);
        assert_eq!(nd, before);
    }

    #[test]
    fn counts_removed_when_they_reach_zero() {
        let (g, p) = figure1();
        let mut nd = NeighborData::build(&g, &p);
        // Query 0 has one pin (vertex 5) in bucket 1; moving it away empties that bucket entry.
        nd.apply_move(&g, 5, 1, 0);
        assert_eq!(nd.count(0, 1), 0);
        assert_eq!(nd.fanout(0), 1);
        let _ = p;
    }

    #[test]
    fn combined_pass_matches_rebuild_across_the_fanout_threshold() {
        // One query over 12 vertices spread across 8 buckets (fanout > SMALL_FANOUT, binary
        // path) and one over 3 vertices (linear path); drive both through every branch:
        // decrement-only, increment-only, remove+insert with to>from and to<from, and
        // adjacent-slot rewrites.
        let mut b = GraphBuilder::new();
        b.add_query((0u32..12).collect::<Vec<_>>());
        b.add_query([0u32, 1, 2]);
        let g = b.build().unwrap();
        let assignment: Vec<u32> = (0..12).map(|v| v % 8).collect();
        let mut p = Partition::from_assignment(&g, 8, assignment).unwrap();
        let mut nd = NeighborData::build(&g, &p);
        // A move script hitting: to far above from, to far below from, to adjacent to from,
        // emptying and refilling buckets, repeated single-pin hops.
        let script: [(u32, u32); 10] = [
            (0, 7), // 0 -> 7: count 0 empties low, 7 doubles
            (8, 2), // 0 -> 2 again? vertex 8 was in bucket 0: empties 0 entirely
            (7, 0), // 7 -> 0: refill far below
            (3, 4), // adjacent rewrite upward
            (4, 3), // and back
            (11, 6),
            (6, 1),
            (2, 5),
            (1, 2),
            (5, 2),
        ];
        for (v, to) in script {
            let from = p.bucket_of(v);
            nd.apply_move(&g, v, from, to);
            p.assign(v, to);
            assert_eq!(nd, NeighborData::build(&g, &p), "after moving {v} to {to}");
        }
    }

    #[test]
    fn locate_pair_helpers_agree() {
        let entry: Vec<(BucketId, u32)> = vec![(1, 2), (3, 1), (4, 5), (8, 1), (9, 2)];
        for from in 0..11u32 {
            for to in 0..11u32 {
                if from == to {
                    continue;
                }
                assert_eq!(
                    locate_pair_linear(&entry, from, to),
                    locate_pair_binary(&entry, from, to),
                    "from={from} to={to}"
                );
            }
        }
        assert_eq!(locate_pair_linear(&[], 0, 1), (None, Err(0)));
        assert_eq!(locate_pair_binary(&[], 0, 1), (None, Err(0)));
    }

    #[test]
    fn works_with_many_buckets_sparsely() {
        // 1 query over 6 vertices spread across 6 of 1000 buckets: storage stays at 6 entries.
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 2, 3, 4, 5]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 1000, vec![0, 100, 200, 300, 400, 500]).unwrap();
        let nd = NeighborData::build(&g, &p);
        assert_eq!(nd.fanout(0), 6);
        assert_eq!(nd.total_entries(), 6);
        assert_eq!(nd.count(0, 300), 1);
        assert_eq!(nd.count(0, 999), 0);
    }
}
