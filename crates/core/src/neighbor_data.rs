//! Per-query "neighbor data": the number of a query's pins in each bucket.
//!
//! The paper calls the vector `n_i(q)` the *neighbor data* of query `q`; it is the only state
//! the gain computation needs (Equation 1). Following the paper's space analysis (Section 3.3),
//! only the non-zero entries are stored — at most `fanout(q)` of them per query — so the total
//! footprint is `O(|E|)` regardless of the bucket count.

use shp_hypergraph::{BipartiteGraph, BucketId, DataId, Partition, QueryId};

/// Sparse per-query bucket counts, kept in sync with the partition by the refinement loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborData {
    /// For each query, the sorted list of `(bucket, count)` pairs with `count > 0`.
    counts: Vec<Vec<(BucketId, u32)>>,
}

impl NeighborData {
    /// Builds the neighbor data of every query for the given partition, sequentially.
    pub fn build(graph: &BipartiteGraph, partition: &Partition) -> Self {
        Self::build_with_workers(graph, partition, 1)
    }

    /// Builds the neighbor data over `workers` threads: queries are split into contiguous
    /// index chunks and each worker fills the per-query histograms of its own chunk, so the
    /// result is bit-identical to the sequential build for every worker count.
    pub fn build_with_workers(
        graph: &BipartiteGraph,
        partition: &Partition,
        workers: usize,
    ) -> Self {
        let counts: Vec<Vec<(BucketId, u32)>> =
            rayon::pool::map_index(graph.num_queries(), workers, |q| {
                let mut local: Vec<(BucketId, u32)> = Vec::new();
                for &v in graph.query_neighbors(q as QueryId) {
                    let b = partition.bucket_of(v);
                    match local.binary_search_by_key(&b, |&(bb, _)| bb) {
                        Ok(idx) => local[idx].1 += 1,
                        Err(idx) => local.insert(idx, (b, 1)),
                    }
                }
                local
            });
        NeighborData { counts }
    }

    /// Number of queries tracked.
    pub fn num_queries(&self) -> usize {
        self.counts.len()
    }

    /// Number of pins of query `q` in bucket `b` (0 if none).
    #[inline]
    pub fn count(&self, q: QueryId, b: BucketId) -> u32 {
        let entry = &self.counts[q as usize];
        match entry.binary_search_by_key(&b, |&(bb, _)| bb) {
            Ok(idx) => entry[idx].1,
            Err(_) => 0,
        }
    }

    /// The non-zero `(bucket, count)` entries of query `q`, sorted by bucket.
    #[inline]
    pub fn nonzero(&self, q: QueryId) -> &[(BucketId, u32)] {
        &self.counts[q as usize]
    }

    /// Current fanout of query `q` (number of distinct buckets it touches).
    #[inline]
    pub fn fanout(&self, q: QueryId) -> usize {
        self.counts[q as usize].len()
    }

    /// Total number of stored non-zero entries (equals `Σ_q fanout(q)`).
    pub fn total_entries(&self) -> usize {
        self.counts.iter().map(|c| c.len()).sum()
    }

    /// Updates the neighbor data after data vertex `v` moved from bucket `from` to bucket `to`.
    ///
    /// # Panics
    /// Debug-asserts that `v` actually had a pin counted in `from` for each adjacent query.
    pub fn apply_move(&mut self, graph: &BipartiteGraph, v: DataId, from: BucketId, to: BucketId) {
        if from == to {
            return;
        }
        for &q in graph.data_neighbors(v) {
            let entry = &mut self.counts[q as usize];
            // Decrement `from`.
            match entry.binary_search_by_key(&from, |&(bb, _)| bb) {
                Ok(idx) => {
                    debug_assert!(entry[idx].1 >= 1);
                    if entry[idx].1 == 1 {
                        entry.remove(idx);
                    } else {
                        entry[idx].1 -= 1;
                    }
                }
                Err(_) => debug_assert!(false, "query {q} had no pins in bucket {from}"),
            }
            // Increment `to`.
            match entry.binary_search_by_key(&to, |&(bb, _)| bb) {
                Ok(idx) => entry[idx].1 += 1,
                Err(idx) => entry.insert(idx, (to, 1)),
            }
        }
    }

    /// Average fanout implied by the stored counts (must equal the metric computed from the
    /// partition; used as a consistency check and for cheap convergence reporting).
    pub fn average_fanout(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.total_entries() as f64 / self.counts.len() as f64
    }

    /// Average p-fanout implied by the stored counts.
    pub fn average_p_fanout(&self, p: f64) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let q = 1.0 - p;
        let total: f64 = self
            .counts
            .iter()
            .map(|entry| {
                entry
                    .iter()
                    .map(|&(_, n)| 1.0 - q.powi(n as i32))
                    .sum::<f64>()
            })
            .sum();
        total / self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::{average_fanout, average_p_fanout, GraphBuilder};

    fn figure1() -> (BipartiteGraph, Partition) {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        (g, p)
    }

    #[test]
    fn build_matches_metric_counts() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        assert_eq!(nd.num_queries(), 3);
        assert_eq!(nd.count(0, 0), 2);
        assert_eq!(nd.count(0, 1), 1);
        assert_eq!(nd.count(2, 0), 0);
        assert_eq!(nd.count(2, 1), 3);
        assert_eq!(nd.fanout(0), 2);
        assert_eq!(nd.fanout(2), 1);
        assert_eq!(nd.nonzero(1), &[(0, 3), (1, 1)]);
        assert_eq!(nd.total_entries(), 5);
    }

    #[test]
    fn averages_match_partition_metrics() {
        let (g, p) = figure1();
        let nd = NeighborData::build(&g, &p);
        assert!((nd.average_fanout() - average_fanout(&g, &p)).abs() < 1e-12);
        for prob in [0.1, 0.5, 0.9] {
            assert!((nd.average_p_fanout(prob) - average_p_fanout(&g, &p, prob)).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_move_keeps_counts_in_sync_with_rebuild() {
        let (g, mut p) = figure1();
        let mut nd = NeighborData::build(&g, &p);
        // Move vertex 3 from bucket 1 to bucket 0, then vertex 0 from 0 to 1.
        nd.apply_move(&g, 3, 1, 0);
        p.assign(3, 0);
        nd.apply_move(&g, 0, 0, 1);
        p.assign(0, 1);
        let rebuilt = NeighborData::build(&g, &p);
        assert_eq!(nd, rebuilt);
    }

    #[test]
    fn apply_move_to_same_bucket_is_noop() {
        let (g, p) = figure1();
        let mut nd = NeighborData::build(&g, &p);
        let before = nd.clone();
        nd.apply_move(&g, 2, 0, 0);
        assert_eq!(nd, before);
    }

    #[test]
    fn counts_removed_when_they_reach_zero() {
        let (g, p) = figure1();
        let mut nd = NeighborData::build(&g, &p);
        // Query 0 has one pin (vertex 5) in bucket 1; moving it away empties that bucket entry.
        nd.apply_move(&g, 5, 1, 0);
        assert_eq!(nd.count(0, 1), 0);
        assert_eq!(nd.fanout(0), 1);
        let _ = p;
    }

    #[test]
    fn works_with_many_buckets_sparsely() {
        // 1 query over 6 vertices spread across 6 of 1000 buckets: storage stays at 6 entries.
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 2, 3, 4, 5]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 1000, vec![0, 100, 200, 300, 400, 500]).unwrap();
        let nd = NeighborData::build(&g, &p);
        assert_eq!(nd.fanout(0), 6);
        assert_eq!(nd.total_entries(), 6);
        assert_eq!(nd.count(0, 300), 1);
        assert_eq!(nd.count(0, 999), 0);
    }
}
