//! Optimization objectives and their per-query move-gain functions.
//!
//! The paper optimizes *probabilistic fanout* (p-fanout); Lemma 1 shows the `p → 1` limit is
//! plain fanout, Lemma 2 shows the `p → 0` limit is the weighted edge-cut of the clique-net
//! graph. Equation 1 gives the change in p-fanout caused by moving one data vertex; the other
//! objectives have the corresponding limits of that formula.
//!
//! # Sign convention
//!
//! All gains in this crate are *reductions* of the objective: a positive gain means the move
//! improves (lowers) the objective. This is the negation of Equation 1 as printed in the paper,
//! which reports the post-move minus pre-move difference.

use crate::config::ObjectiveKind;
use shp_hypergraph::{
    average_fanout, average_p_fanout, weighted_edge_cut, BipartiteGraph, Partition,
};

/// A move-gain oracle for one of the supported objectives.
///
/// `per_query_gain(n_src, n_dst)` returns the gain contributed by a single query when one of
/// its pins moves from a bucket where the query currently has `n_src ≥ 1` pins (including the
/// moving vertex) to a bucket where it currently has `n_dst ≥ 0` pins (excluding the moving
/// vertex). Summing over the moving vertex's adjacent queries yields the total move gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Probabilistic fanout with probability `p`.
    PFanout {
        /// Fanout probability `p ∈ (0, 1)`.
        p: f64,
    },
    /// Plain fanout (`p → 1`).
    Fanout,
    /// Clique-net / weighted edge-cut (`p → 0`, rescaled by `2/p²`).
    CliqueNet,
    /// The final-p-fanout approximation used during recursive splits (Section 3.4): each
    /// current bucket will eventually be divided into `t` final buckets, and the contribution
    /// of a query with `r` pins in it is approximated as `t·(1 − (1 − p/t)^r)`.
    FinalPFanout {
        /// Fanout probability `p ∈ (0, 1)`.
        p: f64,
        /// Number of final buckets each current bucket will be split into (`t ≥ 1`).
        t: u32,
    },
}

impl Objective {
    /// Builds the runtime objective from its configuration description.
    pub fn from_kind(kind: ObjectiveKind) -> Self {
        match kind {
            ObjectiveKind::ProbabilisticFanout { p } => Objective::PFanout { p },
            ObjectiveKind::Fanout => Objective::Fanout,
            ObjectiveKind::CliqueNet => Objective::CliqueNet,
        }
    }

    /// The final-p-fanout variant of this objective for a recursion step whose buckets will
    /// each be split into `t` final buckets. Non-probabilistic objectives are returned
    /// unchanged (the approximation only applies to p-fanout).
    pub fn for_final_splits(self, t: u32) -> Self {
        match self {
            Objective::PFanout { p } if t > 1 => Objective::FinalPFanout { p, t },
            other => other,
        }
    }

    /// Gain (objective reduction) contributed by one query when one of its pins moves from a
    /// bucket holding `n_src` of its pins (including the mover) to a bucket holding `n_dst`
    /// (excluding the mover).
    ///
    /// # Panics
    /// Debug-asserts `n_src ≥ 1`.
    #[inline]
    pub fn per_query_gain(&self, n_src: u32, n_dst: u32) -> f64 {
        debug_assert!(
            n_src >= 1,
            "the moving vertex must be counted in the source bucket"
        );
        match *self {
            Objective::PFanout { p } => {
                // Reduction = p·[(1−p)^{n_src−1} − (1−p)^{n_dst}]  (negated Equation 1).
                let q = 1.0 - p;
                p * (q.powi(n_src as i32 - 1) - q.powi(n_dst as i32))
            }
            Objective::Fanout => {
                // Leaving the source bucket helps iff the mover was its only pin there;
                // entering the destination hurts iff the query had no pin there yet.
                let leave = if n_src == 1 { 1.0 } else { 0.0 };
                let enter = if n_dst == 0 { 1.0 } else { 0.0 };
                leave - enter
            }
            Objective::CliqueNet => {
                // Weighted edge-cut reduction = (pins joined in destination) − (pins left in
                // source) = n_dst − (n_src − 1).
                n_dst as f64 - (n_src as f64 - 1.0)
            }
            Objective::FinalPFanout { p, t } => {
                // Reduction = p·[(1 − p/t)^{n_src−1} − (1 − p/t)^{n_dst}].
                let q = 1.0 - p / t as f64;
                p * (q.powi(n_src as i32 - 1) - q.powi(n_dst as i32))
            }
        }
    }

    /// Evaluates the objective on a full partition (used for convergence reporting and tests).
    ///
    /// For [`Objective::CliqueNet`] this is the weighted edge-cut; for the p-fanout variants it
    /// is the average (final-)p-fanout; for [`Objective::Fanout`] it is the average fanout.
    pub fn evaluate(&self, graph: &BipartiteGraph, partition: &Partition) -> f64 {
        match *self {
            Objective::PFanout { p } => average_p_fanout(graph, partition, p),
            Objective::Fanout => average_fanout(graph, partition),
            Objective::CliqueNet => weighted_edge_cut(graph, partition) as f64,
            Objective::FinalPFanout { p, t } => {
                if graph.num_queries() == 0 {
                    return 0.0;
                }
                let q = 1.0 - p / t as f64;
                let mut total = 0.0;
                for query in graph.queries() {
                    let counts =
                        shp_hypergraph::metrics::query_neighbor_counts(graph, partition, query);
                    for &n in counts.iter().filter(|&&n| n > 0) {
                        total += t as f64 * (1.0 - q.powi(n as i32));
                    }
                }
                total / graph.num_queries() as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn figure1() -> (BipartiteGraph, Partition) {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        (g, p)
    }

    /// Brute-force gain: evaluate the objective before and after the move, un-normalized
    /// (the averaged objectives are rescaled by |Q| so they are comparable with the summed
    /// per-query gains).
    fn brute_force_gain(
        objective: &Objective,
        graph: &BipartiteGraph,
        partition: &Partition,
        v: u32,
        to: u32,
    ) -> f64 {
        let scale = match objective {
            Objective::CliqueNet => 1.0,
            _ => graph.num_queries() as f64,
        };
        let before = objective.evaluate(graph, partition) * scale;
        let mut moved = partition.clone();
        moved.assign(v, to);
        let after = objective.evaluate(graph, &moved) * scale;
        before - after
    }

    /// Analytic gain via per_query_gain summed over the vertex's queries.
    fn analytic_gain(
        objective: &Objective,
        graph: &BipartiteGraph,
        partition: &Partition,
        v: u32,
        to: u32,
    ) -> f64 {
        let from = partition.bucket_of(v);
        graph
            .data_neighbors(v)
            .iter()
            .map(|&q| {
                let counts = shp_hypergraph::metrics::query_neighbor_counts(graph, partition, q);
                objective.per_query_gain(counts[from as usize], counts[to as usize])
            })
            .sum()
    }

    #[test]
    fn per_query_gain_matches_brute_force_for_p_fanout() {
        let (g, p) = figure1();
        let obj = Objective::PFanout { p: 0.5 };
        for v in 0..6u32 {
            for to in 0..2u32 {
                if to == p.bucket_of(v) {
                    continue;
                }
                let analytic = analytic_gain(&obj, &g, &p, v, to);
                let brute = brute_force_gain(&obj, &g, &p, v, to);
                assert!(
                    (analytic - brute).abs() < 1e-9,
                    "v={v} to={to}: {analytic} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn per_query_gain_matches_brute_force_for_fanout() {
        let (g, p) = figure1();
        let obj = Objective::Fanout;
        for v in 0..6u32 {
            for to in 0..2u32 {
                if to == p.bucket_of(v) {
                    continue;
                }
                let analytic = analytic_gain(&obj, &g, &p, v, to);
                let brute = brute_force_gain(&obj, &g, &p, v, to);
                assert!(
                    (analytic - brute).abs() < 1e-9,
                    "v={v} to={to}: {analytic} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn per_query_gain_matches_brute_force_for_clique_net() {
        let (g, p) = figure1();
        let obj = Objective::CliqueNet;
        for v in 0..6u32 {
            for to in 0..2u32 {
                if to == p.bucket_of(v) {
                    continue;
                }
                let analytic = analytic_gain(&obj, &g, &p, v, to);
                let brute = brute_force_gain(&obj, &g, &p, v, to);
                assert!(
                    (analytic - brute).abs() < 1e-9,
                    "v={v} to={to}: {analytic} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn lemma1_p_fanout_gain_approaches_fanout_gain() {
        // As p -> 1 the p-fanout per-query gain converges to the fanout gain.
        let near_one = Objective::PFanout { p: 1.0 - 1e-9 };
        let fanout = Objective::Fanout;
        for n_src in 1..5u32 {
            for n_dst in 0..5u32 {
                let diff = (near_one.per_query_gain(n_src, n_dst)
                    - fanout.per_query_gain(n_src, n_dst))
                .abs();
                assert!(diff < 1e-6, "n_src={n_src} n_dst={n_dst} diff={diff}");
            }
        }
    }

    #[test]
    fn lemma2_p_fanout_gain_approaches_scaled_clique_net_gain() {
        // As p -> 0 the p-fanout gain divided by p² converges to the clique-net gain.
        let p = 1e-5;
        let small = Objective::PFanout { p };
        let clique = Objective::CliqueNet;
        for n_src in 1..5u32 {
            for n_dst in 0..5u32 {
                let scaled = small.per_query_gain(n_src, n_dst) / (p * p);
                let expected = clique.per_query_gain(n_src, n_dst);
                assert!(
                    (scaled - expected).abs() < 1e-2,
                    "n_src={n_src} n_dst={n_dst}: {scaled} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn figure2_example_has_no_positive_fanout_gain_but_positive_p_fanout_gain() {
        // A Figure-2-style instance: buckets V1 = {0..3}, V2 = {4..7}, queries
        // q1 = {0,1,4,5}, q2 = {2,3,4,5}, q3 = {2,3,6,7}. Every query has exactly two pins in
        // each bucket, so no single move improves plain fanout, yet p-fanout has improving
        // moves (and swapping across buckets eventually makes q1 and q3 internal).
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 4, 5]);
        b.add_query([2u32, 3, 4, 5]);
        b.add_query([2u32, 3, 6, 7]);
        let g = b.build().unwrap();
        let part = Partition::from_assignment(&g, 2, vec![0, 0, 0, 0, 1, 1, 1, 1]).unwrap();

        let fanout = Objective::Fanout;
        let pfan = Objective::PFanout { p: 0.5 };
        let mut best_fanout_gain = f64::NEG_INFINITY;
        let mut best_pfanout_gain = f64::NEG_INFINITY;
        for v in 0..8u32 {
            let to = 1 - part.bucket_of(v);
            best_fanout_gain = best_fanout_gain.max(analytic_gain(&fanout, &g, &part, v, to));
            best_pfanout_gain = best_pfanout_gain.max(analytic_gain(&pfan, &g, &part, v, to));
        }
        assert!(
            best_fanout_gain <= 0.0,
            "no single move should improve plain fanout"
        );
        assert!(
            best_pfanout_gain > 0.0,
            "p-fanout should see an improving move"
        );
    }

    #[test]
    fn final_p_fanout_reduces_to_p_fanout_when_t_is_one() {
        let a = Objective::FinalPFanout { p: 0.5, t: 1 };
        let b = Objective::PFanout { p: 0.5 };
        for n_src in 1..6u32 {
            for n_dst in 0..6u32 {
                assert!(
                    (a.per_query_gain(n_src, n_dst) - b.per_query_gain(n_src, n_dst)).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn for_final_splits_only_affects_p_fanout() {
        assert_eq!(
            Objective::PFanout { p: 0.5 }.for_final_splits(4),
            Objective::FinalPFanout { p: 0.5, t: 4 }
        );
        assert_eq!(
            Objective::PFanout { p: 0.5 }.for_final_splits(1),
            Objective::PFanout { p: 0.5 }
        );
        assert_eq!(Objective::Fanout.for_final_splits(4), Objective::Fanout);
        assert_eq!(
            Objective::CliqueNet.for_final_splits(4),
            Objective::CliqueNet
        );
    }

    #[test]
    fn evaluate_matches_hypergraph_metrics() {
        let (g, p) = figure1();
        assert!((Objective::Fanout.evaluate(&g, &p) - average_fanout(&g, &p)).abs() < 1e-12);
        assert!(
            (Objective::PFanout { p: 0.5 }.evaluate(&g, &p) - average_p_fanout(&g, &p, 0.5)).abs()
                < 1e-12
        );
        assert!(
            (Objective::CliqueNet.evaluate(&g, &p) - weighted_edge_cut(&g, &p) as f64).abs()
                < 1e-12
        );
        // FinalPFanout with t=1 equals PFanout.
        assert!(
            (Objective::FinalPFanout { p: 0.5, t: 1 }.evaluate(&g, &p)
                - average_p_fanout(&g, &p, 0.5))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn from_kind_roundtrip() {
        assert_eq!(
            Objective::from_kind(ObjectiveKind::ProbabilisticFanout { p: 0.3 }),
            Objective::PFanout { p: 0.3 }
        );
        assert_eq!(
            Objective::from_kind(ObjectiveKind::Fanout),
            Objective::Fanout
        );
        assert_eq!(
            Objective::from_kind(ObjectiveKind::CliqueNet),
            Objective::CliqueNet
        );
    }
}
