//! A flat, dense-indexed table keyed by ordered bucket pairs — the allocation- and hash-free
//! replacement for `HashMap<(BucketId, BucketId), T>` on the refinement hot path.
//!
//! The swap matrix, the gain-histogram set, and the distributed master's probability
//! broadcasts are all keyed by ordered bucket pairs `(from, to)` with `from, to < k`. For the
//! bucket counts the paper targets (k up to a few thousand), a flat index array addressed by
//! `from * k + to` beats a hash map on every axis that matters per iteration: O(1) lookups
//! with no hashing, no per-entry allocation on lookup, and cache-friendly row-major
//! traversal. Iteration visits present entries in ascending `(from, to)` order — exactly the
//! sorted-pairs order the previous `HashMap` call sites established by collecting and sorting
//! keys — so every consumer remains bit-identical to the hash-map implementation.
//!
//! # Memory layout
//!
//! The table is **index-indirect**: a dense `Vec<u32>` of `k²` slot ids (4 bytes per pair,
//! `u32::MAX` = absent) points into a compact `Vec<T>` holding only the entries actually
//! inserted. Values are therefore never replicated across the k² space — important for large
//! payloads like per-pair gain histograms (hundreds of bytes each): a table over k = 2048
//! buckets costs 16 MiB of index plus the observed entries, not k² payload clones. Tables
//! grow geometrically from `k = 0`, so sparsely populated sets (e.g. per-worker partial
//! histogram sets over one chunk of proposals) only pay for the bucket range they have seen.

use shp_hypergraph::BucketId;

/// Slot marker for an absent pair.
const ABSENT: u32 = u32::MAX;

/// Flat table over ordered bucket pairs: a dense `from * k + to` index into compact entries.
///
/// Presence is tracked by the index array, keeping the `HashMap` semantics of "no entry"
/// versus "entry holding the default value". Equality compares **logical content** (the set
/// of present `(pair, value)` entries in pair order), not capacity or insertion order, so
/// tables that grew along different paths compare equal.
#[derive(Debug, Clone)]
pub struct PairTable<T> {
    /// Current bucket-range capacity: valid pairs are `(from, to)` with both `< k`.
    k: u32,
    /// `k * k` slot ids into `entries`; [`ABSENT`] marks an absent pair.
    slots: Vec<u32>,
    /// The present entries, in insertion order.
    entries: Vec<T>,
    /// Template value cloned into fresh entries.
    fill: T,
}

impl<T: Clone> PairTable<T> {
    /// Creates a table covering buckets `0..k`, with every pair absent. `fill` is the value a
    /// fresh pair starts from when first touched through [`PairTable::entry`].
    pub fn new(k: u32, fill: T) -> Self {
        let n = (k as usize) * (k as usize);
        PairTable {
            k,
            slots: vec![ABSENT; n],
            entries: Vec::new(),
            fill,
        }
    }

    /// The bucket-range capacity (pairs with either coordinate `>= k` are out of range).
    pub fn num_buckets(&self) -> u32 {
        self.k
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn idx(&self, from: BucketId, to: BucketId) -> usize {
        from as usize * self.k as usize + to as usize
    }

    /// The entry of `(from, to)` if present. Out-of-range pairs are simply absent.
    #[inline]
    pub fn get(&self, from: BucketId, to: BucketId) -> Option<&T> {
        if from >= self.k || to >= self.k {
            return None;
        }
        let slot = self.slots[self.idx(from, to)];
        (slot != ABSENT).then(|| &self.entries[slot as usize])
    }

    /// Mutable access to the entry of `(from, to)`, inserting a clone of the fill value (and
    /// growing the bucket range geometrically) if absent.
    pub fn entry(&mut self, from: BucketId, to: BucketId) -> &mut T {
        self.ensure_buckets(from.max(to) + 1);
        let i = self.idx(from, to);
        if self.slots[i] == ABSENT {
            self.slots[i] = self.entries.len() as u32;
            self.entries.push(self.fill.clone());
        }
        let slot = self.slots[i] as usize;
        &mut self.entries[slot]
    }

    /// Inserts (or replaces) the entry of `(from, to)`.
    pub fn insert(&mut self, from: BucketId, to: BucketId, value: T) {
        *self.entry(from, to) = value;
    }

    /// Grows the bucket range to at least `k` buckets (geometric growth to amortize index
    /// rebuilds; existing entries keep their pairs). A no-op when the table already covers
    /// `k`.
    pub fn ensure_buckets(&mut self, k: u32) {
        if k <= self.k {
            return;
        }
        let new_k = k.max(self.k.saturating_mul(2));
        let n = (new_k as usize) * (new_k as usize);
        let mut slots = vec![ABSENT; n];
        for from in 0..self.k as usize {
            let old_row = from * self.k as usize;
            let new_row = from * new_k as usize;
            slots[new_row..new_row + self.k as usize]
                .copy_from_slice(&self.slots[old_row..old_row + self.k as usize]);
        }
        self.slots = slots;
        self.k = new_k;
    }

    /// Iterates the present entries in ascending `(from, to)` order — the same order the
    /// previous hash-map call sites produced by sorting collected keys.
    pub fn iter(&self) -> impl Iterator<Item = ((BucketId, BucketId), &T)> + '_ {
        let k = self.k;
        self.slots
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| slot != ABSENT)
            .map(move |(i, &slot)| {
                let from = (i / k as usize) as BucketId;
                let to = (i % k as usize) as BucketId;
                ((from, to), &self.entries[slot as usize])
            })
    }

    /// The present pairs in ascending `(from, to)` order.
    pub fn keys(&self) -> impl Iterator<Item = (BucketId, BucketId)> + '_ {
        self.iter().map(|(pair, _)| pair)
    }
}

impl<T: Clone + PartialEq> PartialEq for PairTable<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<T: Clone + Eq> Eq for PairTable<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_has_no_entries() {
        let t: PairTable<u64> = PairTable::new(0, 0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(0, 0), None);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn entry_inserts_and_get_reads_back() {
        let mut t = PairTable::new(4, 0u64);
        *t.entry(1, 3) += 5;
        *t.entry(1, 3) += 2;
        t.insert(3, 0, 9);
        assert_eq!(t.get(1, 3), Some(&7));
        assert_eq!(t.get(3, 0), Some(&9));
        assert_eq!(t.get(0, 1), None);
        assert_eq!(t.get(3, 1), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn out_of_range_lookups_are_absent_not_panics() {
        let t = PairTable::new(2, 0u32);
        assert_eq!(t.get(5, 0), None);
        assert_eq!(t.get(0, 5), None);
        assert_eq!(t.get(u32::MAX, u32::MAX), None);
    }

    #[test]
    fn growth_preserves_entries_and_pairs() {
        let mut t = PairTable::new(0, 0u64);
        t.insert(0, 1, 10);
        t.insert(2, 0, 20);
        t.insert(9, 9, 90); // forces growth well past the doubled capacity
        assert!(t.num_buckets() >= 10);
        assert_eq!(t.get(0, 1), Some(&10));
        assert_eq!(t.get(2, 0), Some(&20));
        assert_eq!(t.get(9, 9), Some(&90));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn iteration_is_in_ascending_pair_order() {
        let mut t = PairTable::new(0, 0u32);
        for &(f, to) in &[(5u32, 2u32), (0, 3), (2, 1), (0, 1), (5, 0)] {
            t.insert(f, to, f * 100 + to);
        }
        let keys: Vec<_> = t.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys, vec![(0, 1), (0, 3), (2, 1), (5, 0), (5, 2)]);
    }

    #[test]
    fn equality_is_logical_not_representational() {
        let mut a = PairTable::new(16, 0u64);
        a.insert(1, 2, 7);
        let mut b = PairTable::new(0, 0u64);
        b.insert(1, 2, 7);
        assert_ne!(a.num_buckets(), b.num_buckets());
        assert_eq!(a, b);
        b.insert(0, 0, 1);
        assert_ne!(a, b);

        // Different insertion orders must still compare equal (entries are indirect).
        let mut c = PairTable::new(4, 0u64);
        c.insert(2, 3, 30);
        c.insert(0, 1, 10);
        let mut d = PairTable::new(4, 0u64);
        d.insert(0, 1, 10);
        d.insert(2, 3, 30);
        assert_eq!(c, d);
    }

    #[test]
    fn payloads_are_stored_once_per_present_pair_not_per_slot() {
        // The memory contract behind the indirect layout: a large-payload table over a big
        // bucket range must hold exactly `len()` payloads, however large k is.
        let mut t = PairTable::new(0, [0u64; 49]);
        t.insert(2000, 7, [1; 49]);
        t.insert(7, 2000, [2; 49]);
        assert!(t.num_buckets() >= 2001);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(2000, 7), Some(&[1; 49]));
        assert_eq!(t.get(7, 2000), Some(&[2; 49]));
    }
}
