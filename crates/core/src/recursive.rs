//! SHP-2 / SHP-r: recursive splitting into `k` buckets (Section 3.3, "Recursive partitioning").
//!
//! At every level each existing bucket is split into up to `r` children; the refinement of
//! Algorithm 1 then runs over the *whole* graph simultaneously, with every data vertex
//! constrained to move only between the children of its previous bucket. This keeps memory and
//! communication at `O(r·|E|)` per iteration instead of `O(k·|E|)`, at the cost of a typically
//! 5–10% higher fanout than direct SHP-k (Section 4.2.2).

use crate::config::{PartitionMode, ShpConfig};
use crate::error::{ShpError, ShpResult};
use crate::gains::TargetConstraint;
use crate::neighbor_data::NeighborData;
use crate::objective::Objective;
use crate::refinement::Refiner;
use crate::report::{LevelReport, PartitionResult, RunReport};
use shp_hypergraph::{average_fanout, average_p_fanout, BipartiteGraph, BucketId, Partition};
use std::time::Instant;

/// Per-bucket bookkeeping during the recursion: how many final buckets this bucket must still
/// be divided into.
#[derive(Debug, Clone)]
struct Group {
    /// Number of final buckets this group is responsible for (`1` = leaf, no further splits).
    targets: u32,
}

/// Partitions `graph` into `config.num_buckets` buckets by recursive splitting with the arity
/// of `config.mode` (SHP-2 when the arity is 2).
///
/// # Errors
/// Returns [`ShpError::InvalidConfig`] when the configuration is invalid or not in recursive
/// mode.
pub fn partition_recursive(
    graph: &BipartiteGraph,
    config: &ShpConfig,
) -> ShpResult<PartitionResult> {
    config.validate()?;
    let arity = match config.mode {
        PartitionMode::Recursive { arity } => arity,
        PartitionMode::Direct => {
            return Err(ShpError::InvalidConfig(
                "partition_recursive called with direct mode".into(),
            ))
        }
    };
    let k = config.num_buckets;
    let start = Instant::now();
    let run_span = shp_telemetry::Span::enter("partition/recursive");

    // All vertices start in a single bucket responsible for k final buckets.
    let mut partition = Partition::new_uniform(graph, 1)?;
    let mut groups = vec![Group { targets: k }];

    let total_levels = total_levels(k, arity);
    let mut history = Vec::new();
    let mut levels = Vec::new();
    let mut level = 0usize;

    while groups.iter().any(|g| g.targets > 1) {
        let _level_span = run_span.child("level");
        let level_start = Instant::now();

        // Decide the children of every current bucket.
        let mut children_of: Vec<Vec<BucketId>> = Vec::with_capacity(groups.len());
        let mut child_targets: Vec<u32> = Vec::new();
        for group in &groups {
            let num_children = group.targets.min(arity).max(1);
            let mut child_ids = Vec::with_capacity(num_children as usize);
            for c in 0..num_children {
                child_ids.push(child_targets.len() as BucketId);
                // Distribute the group's remaining target count as evenly as possible.
                let share = split_share(group.targets, num_children, c);
                child_targets.push(share);
            }
            children_of.push(child_ids);
        }
        let new_k = child_targets.len() as u32;

        // Re-assign every vertex to one of its bucket's children, weighted by the child's share
        // of final buckets, using the deterministic per-vertex hash.
        let seed = config
            .seed
            .wrapping_add((level as u64).wrapping_mul(0x9E37_79B9));
        let assignment: Vec<BucketId> = (0..graph.num_data() as u32)
            .map(|v| {
                let old = partition.bucket_of(v);
                let children = &children_of[old as usize];
                if children.len() == 1 {
                    children[0]
                } else {
                    let total: u32 = children.iter().map(|&c| child_targets[c as usize]).sum();
                    let r = crate::refinement::unit_hash(seed, 0x5EED, v as u64) * total as f64;
                    let mut acc = 0.0;
                    let mut chosen = children[children.len() - 1];
                    for &c in children {
                        acc += child_targets[c as usize] as f64;
                        if r < acc {
                            chosen = c;
                            break;
                        }
                    }
                    chosen
                }
            })
            .collect();
        partition = Partition::from_assignment(graph, new_k, assignment)?;

        // Only groups that actually split participate in refinement; pass-through groups form
        // singleton sibling sets with no admissible moves.
        let sibling_groups: Vec<Vec<BucketId>> = children_of
            .iter()
            .filter(|c| c.len() > 1)
            .cloned()
            .collect();
        let constraint = TargetConstraint::sibling_groups(&sibling_groups);

        // ε scaling over recursion depth (Section 3.4).
        let epsilon = if config.scale_epsilon_by_level {
            config.epsilon * (level + 1) as f64 / total_levels.max(1) as f64
        } else {
            config.epsilon
        };

        // Optimize an approximation of the final p-fanout if requested: each child bucket will
        // eventually be split into at most `max_remaining` final buckets.
        let mut objective = Objective::from_kind(config.objective);
        if config.optimize_final_p_fanout {
            let max_remaining = child_targets.iter().copied().max().unwrap_or(1);
            objective = objective.for_final_splits(max_remaining);
        }

        let refiner = Refiner::new(
            graph,
            objective,
            constraint,
            config.swap_strategy,
            config.balance_mode,
            config.allow_imbalanced_moves,
            epsilon,
            seed,
        )
        .with_workers(config.workers);
        let mut nd = NeighborData::build_with_workers(graph, &partition, config.workers);
        let level_history = refiner.run(
            &mut partition,
            &mut nd,
            config.max_iterations,
            config.convergence_threshold,
        );

        levels.push(LevelReport {
            level,
            buckets_after: new_k,
            iterations: level_history.len(),
            fanout_after: nd.average_fanout(),
            elapsed: level_start.elapsed(),
        });
        history.extend(level_history);

        groups = child_targets
            .iter()
            .map(|&t| Group { targets: t })
            .collect();
        level += 1;
    }

    debug_assert_eq!(partition.num_buckets(), k);
    let elapsed = start.elapsed();
    let report = RunReport {
        final_fanout: average_fanout(graph, &partition),
        final_p_fanout: average_p_fanout(graph, &partition, 0.5),
        imbalance: partition.imbalance(),
        history,
        levels,
        elapsed,
    };
    Ok(PartitionResult { partition, report })
}

/// Number of final buckets child `index` (0-based) receives when a group responsible for
/// `targets` final buckets is split into `children` children: as even as possible, with the
/// first `targets mod children` children receiving one extra.
fn split_share(targets: u32, children: u32, index: u32) -> u32 {
    let base = targets / children;
    let extra = targets % children;
    if index < extra {
        base + 1
    } else {
        base
    }
}

/// Number of recursion levels needed to reach `k` buckets with the given arity.
fn total_levels(k: u32, arity: u32) -> usize {
    if k <= 1 {
        return 0;
    }
    let mut levels = 0usize;
    let mut reached = 1u64;
    while reached < k as u64 {
        reached *= arity as u64;
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShpConfig;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;
    use shp_hypergraph::GraphBuilder;

    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        for g in 0..groups.saturating_sub(1) {
            b.add_query([g * size, (g + 1) * size]);
        }
        b.build().unwrap()
    }

    #[test]
    fn split_share_distributes_evenly() {
        assert_eq!(split_share(8, 2, 0), 4);
        assert_eq!(split_share(8, 2, 1), 4);
        assert_eq!(split_share(5, 2, 0), 3);
        assert_eq!(split_share(5, 2, 1), 2);
        assert_eq!(split_share(7, 4, 0), 2);
        assert_eq!(split_share(7, 4, 3), 1);
        assert_eq!((0..4).map(|i| split_share(7, 4, i)).sum::<u32>(), 7);
    }

    #[test]
    fn total_levels_is_log_arity_k() {
        assert_eq!(total_levels(1, 2), 0);
        assert_eq!(total_levels(2, 2), 1);
        assert_eq!(total_levels(8, 2), 3);
        assert_eq!(total_levels(9, 2), 4);
        assert_eq!(total_levels(32, 4), 3);
    }

    #[test]
    fn recursive_bisection_reaches_k_buckets_and_reduces_fanout() {
        let graph = community_graph(8, 8);
        let config = ShpConfig::recursive_bisection(8)
            .with_seed(11)
            .with_max_iterations(15);
        let result = partition_recursive(&graph, &config).unwrap();
        assert_eq!(result.partition.num_buckets(), 8);
        assert_eq!(result.report.levels.len(), 3);

        let mut rng = Pcg64::seed_from_u64(99);
        let random = Partition::new_random(&graph, 8, &mut rng).unwrap();
        assert!(
            result.report.final_fanout < average_fanout(&graph, &random) * 0.7,
            "SHP-2 fanout {} vs random {}",
            result.report.final_fanout,
            average_fanout(&graph, &random)
        );
        // Every bucket is non-empty and reasonably balanced.
        assert!(result.partition.bucket_weights().iter().all(|&w| w > 0));
        assert!(
            result.report.imbalance < 0.6,
            "imbalance {}",
            result.report.imbalance
        );
    }

    #[test]
    fn recursive_supports_non_power_of_two_k() {
        let graph = community_graph(6, 6);
        let config = ShpConfig::recursive_bisection(6)
            .with_seed(2)
            .with_max_iterations(10);
        let result = partition_recursive(&graph, &config).unwrap();
        assert_eq!(result.partition.num_buckets(), 6);
        assert!(result.partition.bucket_weights().iter().all(|&w| w > 0));
    }

    #[test]
    fn recursive_with_higher_arity() {
        let graph = community_graph(9, 4);
        let config = ShpConfig {
            num_buckets: 9,
            mode: PartitionMode::Recursive { arity: 3 },
            max_iterations: 10,
            seed: 4,
            ..Default::default()
        };
        let result = partition_recursive(&graph, &config).unwrap();
        assert_eq!(result.partition.num_buckets(), 9);
        assert_eq!(result.report.levels.len(), 2);
    }

    #[test]
    fn recursive_is_deterministic() {
        let graph = community_graph(4, 6);
        let config = ShpConfig::recursive_bisection(4)
            .with_seed(21)
            .with_max_iterations(8);
        let a = partition_recursive(&graph, &config).unwrap();
        let b = partition_recursive(&graph, &config).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn direct_mode_config_is_rejected() {
        let graph = community_graph(2, 4);
        let config = ShpConfig::direct(4);
        assert!(partition_recursive(&graph, &config).is_err());
    }

    #[test]
    fn k_equal_one_returns_single_bucket_without_levels() {
        let graph = community_graph(2, 4);
        let config = ShpConfig::recursive_bisection(1);
        let result = partition_recursive(&graph, &config).unwrap();
        assert_eq!(result.partition.num_buckets(), 1);
        assert!(result.report.levels.is_empty());
        assert!((result.report.final_fanout - 1.0).abs() < 1e-12);
    }
}
