//! The local-refinement iteration of Algorithm 1: propose, coordinate, and apply vertex moves.
//!
//! # The dirty-vertex active set and its exactness argument
//!
//! A vertex's best-move proposal is a pure function of three inputs: (1) its own bucket, (2)
//! the neighbor data of its adjacent queries, and (3) — under the `All` constraint — the
//! globally least-loaded bucket. [`ActiveSet`] caches every vertex's standing proposal and
//! tracks which of those inputs changed when moves were applied:
//!
//! * a moved vertex dirties **itself** (input 1) and every query it belongs to; every vertex
//!   adjacent to a dirtied query is dirtied (input 2) — this is the `O(moved · deg²)`
//!   frontier;
//! * input 3 is global, so it gets a conservative **escape hatch**: whenever the least-loaded
//!   bucket differs from the one the cache was computed against, *every* vertex is dirtied and
//!   the next sweep is a full rescan. This is the only global input to the gain kernel; any
//!   future global input must adopt the same conservative invalidation to keep the argument
//!   valid. (Under the `Siblings` constraint the kernel never reads the least-loaded bucket,
//!   so the hatch is skipped.)
//!
//! Clean vertices therefore have bit-identical inputs to the previous sweep, and the kernel is
//! deterministic, so serving their cached proposal is **exactly** what recomputing them would
//! produce: the assembled proposal list (ascending vertex order, same gain filter) equals a
//! full rescan bit-for-bit, for every worker count and with the dirty set on or off. The
//! conformance suite (`tests/parallel_conformance.rs`) locks this in against the legacy
//! full-rescan pipeline.
//!
//! Late iterations in the Figure 7 convergence regime move a vanishing fraction of vertices,
//! so the per-iteration cost drops from `O(|V| · deg · fanout)` to the dirty frontier's
//! `O(moved · deg²)` plus an `O(|V|)` bitmap-and-assemble scan.

use crate::config::{BalanceMode, SwapStrategy};
use crate::gains::{compute_proposals_for, GainKernel, MoveProposal, TargetConstraint};
use crate::histogram::GainHistogramSet;
use crate::neighbor_data::NeighborData;
use crate::objective::Objective;
use crate::swap::{MoveProbabilities, SwapMatrix};
use serde::{Deserialize, Serialize};
use shp_hypergraph::{BipartiteGraph, BucketId, DataId, Partition, QueryId};
use std::collections::HashMap;

/// Statistics of one refinement iteration, used for convergence decisions and for reproducing
/// Figure 7 of the paper (objective progress and fraction of moved vertices per iteration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration index (0-based) within the current refinement run.
    pub iteration: usize,
    /// Number of vertices that proposed a move.
    pub candidates: usize,
    /// Number of vertices actually moved.
    pub moved: usize,
    /// Fraction of all data vertices moved.
    pub moved_fraction: f64,
    /// Sum of the gains of the applied moves (an upper estimate of the objective improvement;
    /// exact when moves do not interact).
    pub applied_gain: f64,
    /// Average fanout after the iteration (from the neighbor data, so it is cheap).
    pub fanout_after: f64,
}

/// A hook that rewrites the gain of a proposal before swap coordination; used e.g. by the
/// incremental-update path to penalize moves away from a previous partition (Section 5).
pub type GainAdjuster = Box<dyn Fn(&MoveProposal) -> f64 + Send + Sync>;

/// Cross-iteration refinement state: each vertex's standing (unadjusted, unfiltered) proposal
/// plus the dirty bookkeeping that decides which proposals must be recomputed. See the module
/// docs for the exactness argument.
///
/// An `ActiveSet` is valid for **exactly one** (refiner, partition, neighbor-data) evolution:
/// the cached proposals embody the refiner's objective, constraint, and kernel, and the dirty
/// flags assume every partition/neighbor-data mutation since the last call went through
/// [`Refiner::run_iteration_with`] with this same state. Reusing it with a differently
/// configured refiner, or after mutating the partition behind its back, silently serves stale
/// proposals — create a fresh state via [`Refiner::new_active_set`] instead (a graph-size
/// mismatch is caught by a debug assertion).
#[derive(Debug)]
pub struct ActiveSet {
    /// The standing best proposal of every vertex (`None` when the vertex has no admissible
    /// target), exactly as a gain sweep with non-positive proposals included would produce it.
    cached: Vec<Option<MoveProposal>>,
    /// Vertices whose cached proposal is stale.
    vertex_dirty: Vec<bool>,
    /// Scratch flags for the query frontier of one apply phase (always reset after use).
    query_dirty: Vec<bool>,
    /// Scratch list of the queries flagged in `query_dirty`.
    dirty_queries: Vec<QueryId>,
    /// The least-loaded bucket the cache was computed against (`None` until the first sweep).
    cached_least_loaded: Option<BucketId>,
}

impl ActiveSet {
    /// Creates the state for `graph` with every vertex dirty (the first iteration is a full
    /// rescan).
    pub fn new(graph: &BipartiteGraph) -> Self {
        ActiveSet {
            cached: vec![None; graph.num_data()],
            vertex_dirty: vec![true; graph.num_data()],
            query_dirty: vec![false; graph.num_queries()],
            dirty_queries: Vec::new(),
            cached_least_loaded: None,
        }
    }

    /// Number of currently dirty vertices (diagnostics / tests).
    pub fn num_dirty(&self) -> usize {
        self.vertex_dirty.iter().filter(|&&d| d).count()
    }

    /// Marks every vertex dirty (the conservative escape hatch).
    fn mark_all_dirty(&mut self) {
        self.vertex_dirty.iter_mut().for_each(|d| *d = true);
    }

    /// Marks the refinement frontier of the applied moves dirty: each moved vertex itself
    /// (its `from` bucket changed) and every vertex sharing a query with it (their neighbor
    /// data changed).
    fn mark_moves_dirty(&mut self, graph: &BipartiteGraph, moves: &[MoveProposal]) {
        for p in moves {
            self.vertex_dirty[p.vertex as usize] = true;
            for &q in graph.data_neighbors(p.vertex) {
                if !self.query_dirty[q as usize] {
                    self.query_dirty[q as usize] = true;
                    self.dirty_queries.push(q);
                }
            }
        }
        for i in 0..self.dirty_queries.len() {
            let q = self.dirty_queries[i];
            for &v in graph.query_neighbors(q) {
                self.vertex_dirty[v as usize] = true;
            }
            self.query_dirty[q as usize] = false;
        }
        self.dirty_queries.clear();
    }
}

/// Runs refinement iterations over one partition with a fixed constraint and objective.
pub struct Refiner<'a> {
    graph: &'a BipartiteGraph,
    objective: Objective,
    constraint: TargetConstraint,
    swap_strategy: SwapStrategy,
    balance_mode: BalanceMode,
    allow_imbalanced_moves: bool,
    epsilon: f64,
    seed: u64,
    workers: usize,
    gain_adjuster: Option<GainAdjuster>,
    use_dirty_set: bool,
    kernel: GainKernel,
}

impl<'a> Refiner<'a> {
    /// Creates a refiner.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &'a BipartiteGraph,
        objective: Objective,
        constraint: TargetConstraint,
        swap_strategy: SwapStrategy,
        balance_mode: BalanceMode,
        allow_imbalanced_moves: bool,
        epsilon: f64,
        seed: u64,
    ) -> Self {
        Refiner {
            graph,
            objective,
            constraint,
            swap_strategy,
            balance_mode,
            allow_imbalanced_moves,
            epsilon,
            seed,
            workers: 1,
            gain_adjuster: None,
            use_dirty_set: true,
            kernel: GainKernel::default(),
        }
    }

    /// The objective being optimized.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Installs a gain adjuster applied to every proposal before swap coordination.
    pub fn with_gain_adjuster(mut self, adjuster: GainAdjuster) -> Self {
        self.gain_adjuster = Some(adjuster);
        self
    }

    /// Sets the worker-thread count used by the parallel phases of each iteration (gain
    /// computation and histogram construction). The produced moves are bit-identical for every
    /// worker count; the default is 1 (fully sequential).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables or disables the dirty-vertex active set (enabled by default). With the set
    /// disabled every iteration performs a full gain rescan; results are bit-identical either
    /// way (the conformance suite asserts it) — the toggle exists for that comparison and for
    /// perf analysis.
    pub fn with_dirty_set(mut self, enabled: bool) -> Self {
        self.use_dirty_set = enabled;
        self
    }

    /// Selects the gain-kernel implementation (default [`GainKernel::Scratch`]). The legacy
    /// hash-map kernel exists only as the bit-identity oracle for tests and bench smoke runs.
    pub fn with_kernel(mut self, kernel: GainKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Creates the cross-iteration [`ActiveSet`] for this refiner's graph, with every vertex
    /// initially dirty.
    pub fn new_active_set(&self) -> ActiveSet {
        ActiveSet::new(self.graph)
    }

    /// Runs one iteration of Algorithm 1, mutating the partition and neighbor data in place.
    ///
    /// Stateless convenience wrapper: it builds a fresh [`ActiveSet`] (full rescan) each call.
    /// Loops should create the state once and call [`Refiner::run_iteration_with`] so late
    /// iterations only recompute the dirty frontier — [`Refiner::run`] does exactly that.
    pub fn run_iteration(
        &self,
        partition: &mut Partition,
        nd: &mut NeighborData,
        iteration: usize,
    ) -> IterationStats {
        let mut active = self.new_active_set();
        self.run_iteration_with(&mut active, partition, nd, iteration)
    }

    /// Runs one iteration of Algorithm 1 with cross-iteration dirty-vertex state: only
    /// vertices whose gain inputs changed since the previous call are recomputed (see the
    /// module docs), while the assembled proposal list stays bit-identical to a full rescan.
    pub fn run_iteration_with(
        &self,
        active: &mut ActiveSet,
        partition: &mut Partition,
        nd: &mut NeighborData,
        iteration: usize,
    ) -> IterationStats {
        debug_assert_eq!(
            active.cached.len(),
            self.graph.num_data(),
            "ActiveSet built for a different graph (see ActiveSet docs)"
        );
        debug_assert_eq!(active.query_dirty.len(), self.graph.num_queries());
        let include_nonpositive = self.swap_strategy == SwapStrategy::Histogram;

        // Refresh the cache. The least-loaded bucket is a global input of the `All` kernel:
        // if it moved since the cache was filled, conservatively dirty everything.
        let least_loaded = partition.least_loaded_bucket();
        let least_loaded_is_input = matches!(self.constraint, TargetConstraint::All { .. });
        if !self.use_dirty_set
            || (least_loaded_is_input && active.cached_least_loaded != Some(least_loaded))
        {
            active.mark_all_dirty();
        }
        let dirty: Vec<DataId> = active
            .vertex_dirty
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(v, _)| v as DataId)
            .collect();
        let recomputed = compute_proposals_for(
            &self.objective,
            self.graph,
            partition,
            nd,
            &self.constraint,
            least_loaded,
            &dirty,
            self.workers,
            self.kernel,
        );
        for (&v, proposal) in dirty.iter().zip(recomputed) {
            active.cached[v as usize] = proposal;
            active.vertex_dirty[v as usize] = false;
        }
        active.cached_least_loaded = Some(least_loaded);

        // Assemble the iteration's proposal list from the (now fresh) standing proposals,
        // applying the same adjust-then-filter steps a full rescan would.
        let mut proposals: Vec<MoveProposal> = Vec::new();
        for cached in &active.cached {
            let Some(mut p) = *cached else { continue };
            if let Some(adjuster) = &self.gain_adjuster {
                p.gain = adjuster(&p);
            }
            if include_nonpositive || p.gain > 0.0 {
                proposals.push(p);
            }
        }

        let probabilities = match self.swap_strategy {
            SwapStrategy::Matrix => SwapMatrix::from_proposals(&proposals).move_probabilities(),
            SwapStrategy::Histogram => MoveProbabilities::from_histograms(
                &GainHistogramSet::from_proposals_with_workers(&proposals, self.workers),
            ),
        };

        // Probabilistic selection with a per-(seed, iteration, vertex) hash so the outcome does
        // not depend on thread scheduling.
        let mut selected: Vec<MoveProposal> = Vec::new();
        let mut unselected_positive: Vec<MoveProposal> = Vec::new();
        for p in &proposals {
            let prob = probabilities.probability(p);
            let taken =
                prob > 0.0 && unit_hash(self.seed, iteration as u64, p.vertex as u64) < prob;
            if taken {
                selected.push(*p);
            } else if p.gain > 0.0 {
                unselected_positive.push(*p);
            }
        }

        if self.balance_mode == BalanceMode::Strict {
            selected = enforce_strict_pairing(selected);
        } else {
            // The move probabilities equalize the two directions of every bucket pair only in
            // expectation; on small instances the variance accumulates into real imbalance over
            // many iterations. Guard the application step with the ε capacity so drift never
            // exceeds the allowed imbalance (large instances are virtually unaffected).
            selected = enforce_capacity(partition, selected, self.epsilon);
        }

        if self.allow_imbalanced_moves {
            let extra = select_imbalanced_extras(
                partition,
                &selected,
                &mut unselected_positive,
                self.epsilon,
            );
            selected.extend(extra);
        }

        // Apply the moves, then mark the affected gain inputs dirty for the next iteration.
        let mut applied_gain = 0.0;
        let mut moved = 0usize;
        for p in &selected {
            debug_assert_eq!(partition.bucket_of(p.vertex), p.from);
            partition.assign(p.vertex, p.to);
            nd.apply_move(self.graph, p.vertex, p.from, p.to);
            applied_gain += p.gain;
            moved += 1;
        }
        active.mark_moves_dirty(self.graph, &selected);

        let num_data = self.graph.num_data().max(1);
        IterationStats {
            iteration,
            candidates: proposals.len(),
            moved,
            moved_fraction: moved as f64 / num_data as f64,
            applied_gain,
            fanout_after: nd.average_fanout(),
        }
    }

    /// Runs up to `max_iterations` iterations, stopping early once the fraction of moved
    /// vertices drops below `convergence_threshold`. Returns the per-iteration statistics.
    pub fn run(
        &self,
        partition: &mut Partition,
        nd: &mut NeighborData,
        max_iterations: usize,
        convergence_threshold: f64,
    ) -> Vec<IterationStats> {
        let span = shp_telemetry::Span::enter("partition/refinement");
        let mut active = self.new_active_set();
        let mut history = Vec::with_capacity(max_iterations);
        for iteration in 0..max_iterations {
            let _iteration_span = span.child("iteration");
            let stats = self.run_iteration_with(&mut active, partition, nd, iteration);
            let converged = stats.moved_fraction < convergence_threshold;
            history.push(stats);
            if converged {
                break;
            }
        }
        history
    }
}

/// Keeps, for every unordered bucket pair, only as many moves in each direction as the opposite
/// direction selected (highest gains first), so bucket weights are exactly preserved.
fn enforce_strict_pairing(selected: Vec<MoveProposal>) -> Vec<MoveProposal> {
    let mut by_pair: HashMap<(BucketId, BucketId), (Vec<MoveProposal>, Vec<MoveProposal>)> =
        HashMap::new();
    for p in selected {
        let key = if p.from < p.to {
            (p.from, p.to)
        } else {
            (p.to, p.from)
        };
        let entry = by_pair.entry(key).or_default();
        if p.from == key.0 {
            entry.0.push(p);
        } else {
            entry.1.push(p);
        }
    }
    let mut result = Vec::new();
    let mut keys: Vec<_> = by_pair.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let (mut forward, mut backward) = by_pair.remove(&key).expect("key exists");
        forward.sort_by(|a, b| {
            b.gain
                .partial_cmp(&a.gain)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        backward.sort_by(|a, b| {
            b.gain
                .partial_cmp(&a.gain)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let m = forward.len().min(backward.len());
        result.extend(forward.into_iter().take(m));
        result.extend(backward.into_iter().take(m));
    }
    result
}

/// Drops selected moves (worst gains first) whose target bucket would exceed the `(1 + ε)`
/// capacity after accounting for the moves processed so far. Departures free capacity as they
/// are processed, so paired swaps generally survive; only drift-inducing surplus is trimmed.
fn enforce_capacity(
    partition: &Partition,
    mut selected: Vec<MoveProposal>,
    epsilon: f64,
) -> Vec<MoveProposal> {
    // A bucket must always be allowed to hold at least the ideal weight plus one vertex,
    // otherwise tight instances would freeze entirely.
    let cap = partition
        .max_allowed_weight(epsilon)
        .max((partition.total_weight() as f64 / partition.num_buckets() as f64).ceil() as u64 + 1);
    selected.sort_by(|a, b| {
        b.gain
            .partial_cmp(&a.gain)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut weights: Vec<u64> = partition.bucket_weights().to_vec();
    let mut kept = Vec::with_capacity(selected.len());
    for p in selected {
        let w = partition.vertex_weight(p.vertex);
        if weights[p.to as usize] + w <= cap {
            weights[p.to as usize] += w;
            weights[p.from as usize] -= w;
            kept.push(p);
        }
    }
    kept
}

/// Selects additional unpaired positive-gain moves as long as the target bucket stays within
/// the `(1 + ε)` capacity, given the moves already selected (Section 3.4's use of the allowed
/// imbalance).
fn select_imbalanced_extras(
    partition: &Partition,
    already_selected: &[MoveProposal],
    candidates: &mut [MoveProposal],
    epsilon: f64,
) -> Vec<MoveProposal> {
    let cap = partition.max_allowed_weight(epsilon);
    // Projected weights after the already-selected moves.
    let mut weights: Vec<u64> = partition.bucket_weights().to_vec();
    for p in already_selected {
        let w = partition.vertex_weight(p.vertex);
        weights[p.from as usize] -= w;
        weights[p.to as usize] += w;
    }
    candidates.sort_by(|a, b| {
        b.gain
            .partial_cmp(&a.gain)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut extras = Vec::new();
    for p in candidates.iter() {
        let w = partition.vertex_weight(p.vertex);
        if weights[p.to as usize] + w <= cap {
            weights[p.to as usize] += w;
            weights[p.from as usize] -= w;
            extras.push(*p);
        }
    }
    extras
}

/// Deterministic hash of `(seed, iteration, vertex)` to a uniform value in `[0, 1)`
/// (SplitMix64 finalizer), so probabilistic move decisions are reproducible and independent of
/// worker scheduling.
pub fn unit_hash(seed: u64, iteration: u64, vertex: u64) -> f64 {
    let mut x = seed ^ iteration.rotate_left(24) ^ vertex.rotate_left(48);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BalanceMode, SwapStrategy};
    use rand::SeedableRng;
    use rand_pcg::Pcg64;
    use shp_hypergraph::{average_fanout, GraphBuilder};

    /// A small community-structured graph: `groups` cliques of `size` members; every member
    /// issues a query over its whole clique, plus a few cross-clique queries for noise.
    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        // A few cross-group queries.
        for g in 0..groups.saturating_sub(1) {
            b.add_query([g * size, (g + 1) * size]);
        }
        b.build().unwrap()
    }

    fn refine(
        graph: &BipartiteGraph,
        k: u32,
        strategy: SwapStrategy,
        balance: BalanceMode,
        iterations: usize,
        seed: u64,
    ) -> (Partition, Vec<IterationStats>) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut partition = Partition::new_random(graph, k, &mut rng).unwrap();
        let mut nd = NeighborData::build(graph, &partition);
        let refiner = Refiner::new(
            graph,
            Objective::PFanout { p: 0.5 },
            TargetConstraint::all(k),
            strategy,
            balance,
            false,
            0.05,
            seed,
        );
        let history = refiner.run(&mut partition, &mut nd, iterations, 0.0);
        (partition, history)
    }

    #[test]
    fn refinement_reduces_fanout_on_community_graph() {
        let graph = community_graph(4, 8);
        let mut rng = Pcg64::seed_from_u64(3);
        let initial = Partition::new_random(&graph, 4, &mut rng).unwrap();
        let initial_fanout = average_fanout(&graph, &initial);

        for strategy in [SwapStrategy::Matrix, SwapStrategy::Histogram] {
            let (partition, history) = refine(&graph, 4, strategy, BalanceMode::Expectation, 20, 3);
            let final_fanout = average_fanout(&graph, &partition);
            assert!(
                final_fanout < initial_fanout,
                "{strategy:?}: fanout should drop ({initial_fanout} -> {final_fanout})"
            );
            assert!(!history.is_empty());
            // The history's last fanout must agree with the metric recomputed from scratch.
            let last = history.last().unwrap();
            assert!((last.fanout_after - final_fanout).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_strategy_finds_near_optimal_community_split() {
        // With 4 communities and k=4 and enough iterations, the partitioner should isolate the
        // communities almost perfectly: average fanout close to 1 for intra-community queries.
        let graph = community_graph(4, 8);
        let (partition, _) = refine(
            &graph,
            4,
            SwapStrategy::Histogram,
            BalanceMode::Expectation,
            40,
            3,
        );
        let fanout = average_fanout(&graph, &partition);
        assert!(
            fanout < 1.5,
            "expected a near-perfect community split, got fanout {fanout}"
        );
    }

    #[test]
    fn strict_balance_mode_preserves_bucket_weights_exactly() {
        let graph = community_graph(4, 8);
        let mut rng = Pcg64::seed_from_u64(7);
        let mut partition = Partition::new_random(&graph, 4, &mut rng).unwrap();
        let before: Vec<u64> = partition.bucket_weights().to_vec();
        let mut nd = NeighborData::build(&graph, &partition);
        let refiner = Refiner::new(
            &graph,
            Objective::PFanout { p: 0.5 },
            TargetConstraint::all(4),
            SwapStrategy::Histogram,
            BalanceMode::Strict,
            false,
            0.05,
            7,
        );
        refiner.run(&mut partition, &mut nd, 15, 0.0);
        assert_eq!(partition.bucket_weights(), &before[..]);
    }

    #[test]
    fn expectation_mode_stays_roughly_balanced() {
        let graph = community_graph(6, 16);
        let (partition, _) = refine(
            &graph,
            4,
            SwapStrategy::Histogram,
            BalanceMode::Expectation,
            30,
            11,
        );
        // Expectation-mode balance: allow a generous 25% deviation on this small instance.
        assert!(
            partition.imbalance() < 0.25,
            "imbalance {}",
            partition.imbalance()
        );
    }

    #[test]
    fn refinement_is_deterministic_for_a_fixed_seed() {
        let graph = community_graph(4, 8);
        let (p1, h1) = refine(
            &graph,
            4,
            SwapStrategy::Histogram,
            BalanceMode::Expectation,
            10,
            42,
        );
        let (p2, h2) = refine(
            &graph,
            4,
            SwapStrategy::Histogram,
            BalanceMode::Expectation,
            10,
            42,
        );
        assert_eq!(p1, p2);
        assert_eq!(h1, h2);
        let (p3, _) = refine(
            &graph,
            4,
            SwapStrategy::Histogram,
            BalanceMode::Expectation,
            10,
            44,
        );
        // A different seed almost surely yields a different partition on this instance.
        assert_ne!(p1, p3);
    }

    #[test]
    fn neighbor_data_stays_consistent_after_refinement() {
        let graph = community_graph(3, 6);
        let mut rng = Pcg64::seed_from_u64(5);
        let mut partition = Partition::new_random(&graph, 3, &mut rng).unwrap();
        let mut nd = NeighborData::build(&graph, &partition);
        let refiner = Refiner::new(
            &graph,
            Objective::PFanout { p: 0.5 },
            TargetConstraint::all(3),
            SwapStrategy::Matrix,
            BalanceMode::Expectation,
            false,
            0.05,
            5,
        );
        refiner.run(&mut partition, &mut nd, 8, 0.0);
        assert_eq!(nd, NeighborData::build(&graph, &partition));
    }

    #[test]
    fn convergence_threshold_stops_early() {
        let graph = community_graph(2, 4);
        let mut rng = Pcg64::seed_from_u64(2);
        let mut partition = Partition::new_random(&graph, 2, &mut rng).unwrap();
        let mut nd = NeighborData::build(&graph, &partition);
        let refiner = Refiner::new(
            &graph,
            Objective::PFanout { p: 0.5 },
            TargetConstraint::all(2),
            SwapStrategy::Histogram,
            BalanceMode::Expectation,
            false,
            0.05,
            2,
        );
        let history = refiner.run(&mut partition, &mut nd, 100, 1.1);
        // A threshold above 1.0 can never be exceeded, so the run stops after one iteration.
        assert_eq!(history.len(), 1);
    }

    #[test]
    fn imbalanced_moves_respect_capacity() {
        let graph = community_graph(4, 8);
        let mut rng = Pcg64::seed_from_u64(9);
        let mut partition = Partition::new_random(&graph, 4, &mut rng).unwrap();
        let mut nd = NeighborData::build(&graph, &partition);
        let epsilon = 0.10;
        let refiner = Refiner::new(
            &graph,
            Objective::PFanout { p: 0.5 },
            TargetConstraint::all(4),
            SwapStrategy::Histogram,
            BalanceMode::Expectation,
            true,
            epsilon,
            9,
        );
        for it in 0..10 {
            refiner.run_iteration(&mut partition, &mut nd, it);
            let cap = partition.max_allowed_weight(epsilon);
            // Projected capacity is computed before the iteration's own moves, so allow the
            // slack of one vertex weight.
            for b in 0..4 {
                assert!(
                    partition.bucket_weight(b) <= cap + 1,
                    "bucket {b} exceeded capacity: {} > {cap}",
                    partition.bucket_weight(b)
                );
            }
        }
    }

    #[test]
    fn dirty_set_and_scratch_kernel_match_legacy_full_rescan_bit_for_bit() {
        // The complete oracle: the optimized pipeline (scratch kernel + dirty-vertex active
        // set) must reproduce the pre-optimization pipeline (hash-map kernel + full rescan
        // every iteration) exactly — same partitions, same stats including float bit patterns.
        let graph = community_graph(5, 7);
        for strategy in [SwapStrategy::Matrix, SwapStrategy::Histogram] {
            for constraint in [
                TargetConstraint::all(4),
                TargetConstraint::sibling_groups(&[vec![0, 1], vec![2, 3]]),
            ] {
                let mut rng = Pcg64::seed_from_u64(21);
                let initial = Partition::new_random(&graph, 4, &mut rng).unwrap();

                let run = |dirty: bool, kernel: crate::gains::GainKernel| {
                    let mut partition = initial.clone();
                    let mut nd = NeighborData::build(&graph, &partition);
                    let refiner = Refiner::new(
                        &graph,
                        Objective::PFanout { p: 0.5 },
                        constraint.clone(),
                        strategy,
                        BalanceMode::Expectation,
                        false,
                        0.05,
                        21,
                    )
                    .with_dirty_set(dirty)
                    .with_kernel(kernel);
                    let history = refiner.run(&mut partition, &mut nd, 12, 0.0);
                    (partition, history)
                };

                let (p_new, h_new) = run(true, crate::gains::GainKernel::Scratch);
                let (p_old, h_old) = run(false, crate::gains::GainKernel::LegacyHashMap);
                assert_eq!(
                    p_new, p_old,
                    "{strategy:?}/{constraint:?}: partitions diverged"
                );
                assert_eq!(h_new.len(), h_old.len());
                for (a, b) in h_new.iter().zip(h_old.iter()) {
                    assert_eq!(a.candidates, b.candidates);
                    assert_eq!(a.moved, b.moved);
                    assert_eq!(
                        a.applied_gain.to_bits(),
                        b.applied_gain.to_bits(),
                        "{strategy:?}/{constraint:?} iteration {}",
                        a.iteration
                    );
                    assert_eq!(a.fanout_after.to_bits(), b.fanout_after.to_bits());
                }
            }
        }
    }

    #[test]
    fn dirty_set_shrinks_as_refinement_converges() {
        let graph = community_graph(4, 8);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut partition = Partition::new_random(&graph, 4, &mut rng).unwrap();
        let mut nd = NeighborData::build(&graph, &partition);
        let refiner = Refiner::new(
            &graph,
            Objective::PFanout { p: 0.5 },
            TargetConstraint::all(4),
            SwapStrategy::Histogram,
            BalanceMode::Expectation,
            false,
            0.05,
            3,
        );
        let mut active = refiner.new_active_set();
        let n = graph.num_data();
        assert_eq!(active.num_dirty(), n, "everything starts dirty");
        let mut last_dirty = n;
        for it in 0..25 {
            let stats = refiner.run_iteration_with(&mut active, &mut partition, &mut nd, it);
            last_dirty = active.num_dirty();
            if stats.moved == 0 {
                break;
            }
        }
        // Once no moves are applied, nothing is dirty: the next sweep is (near) free.
        assert_eq!(
            last_dirty, 0,
            "a move-free iteration must leave the active set empty"
        );
        // And the cached proposals still match a full rescan exactly.
        let stateless = {
            let mut p2 = partition.clone();
            let mut nd2 = nd.clone();
            refiner.run_iteration(&mut p2, &mut nd2, 99)
        };
        let stateful = refiner.run_iteration_with(&mut active, &mut partition, &mut nd, 99);
        assert_eq!(stateless.candidates, stateful.candidates);
        assert_eq!(stateless.moved, stateful.moved);
    }

    #[test]
    fn gain_adjuster_composes_with_the_dirty_set() {
        // The adjuster is applied at list-assembly time, so cached proposals must still yield
        // the same adjusted/filtered list as a full rescan.
        let graph = community_graph(3, 6);
        let mut rng = Pcg64::seed_from_u64(8);
        let initial = Partition::new_random(&graph, 3, &mut rng).unwrap();
        let run = |dirty: bool| {
            let mut partition = initial.clone();
            let mut nd = NeighborData::build(&graph, &partition);
            let refiner = Refiner::new(
                &graph,
                Objective::PFanout { p: 0.5 },
                TargetConstraint::all(3),
                SwapStrategy::Matrix,
                BalanceMode::Expectation,
                false,
                0.05,
                8,
            )
            .with_dirty_set(dirty)
            .with_gain_adjuster(Box::new(|p| p.gain - 0.125));
            let history = refiner.run(&mut partition, &mut nd, 10, 0.0);
            (partition, history)
        };
        let (p_dirty, h_dirty) = run(true);
        let (p_full, h_full) = run(false);
        assert_eq!(p_dirty, p_full);
        assert_eq!(h_dirty, h_full);
    }

    #[test]
    fn unit_hash_is_uniform_and_deterministic() {
        let a = unit_hash(1, 2, 3);
        assert_eq!(a, unit_hash(1, 2, 3));
        assert_ne!(a, unit_hash(1, 2, 4));
        let n = 10_000;
        let mean: f64 = (0..n).map(|v| unit_hash(99, 0, v)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((0..n).all(|v| {
            let x = unit_hash(99, 0, v);
            (0.0..1.0).contains(&x)
        }));
    }

    #[test]
    fn strict_pairing_keeps_highest_gains() {
        let proposals = vec![
            MoveProposal {
                vertex: 0,
                from: 0,
                to: 1,
                gain: 5.0,
            },
            MoveProposal {
                vertex: 1,
                from: 0,
                to: 1,
                gain: 1.0,
            },
            MoveProposal {
                vertex: 2,
                from: 1,
                to: 0,
                gain: 3.0,
            },
        ];
        let kept = enforce_strict_pairing(proposals);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|p| p.vertex == 0));
        assert!(kept.iter().any(|p| p.vertex == 2));
        assert!(!kept.iter().any(|p| p.vertex == 1));
    }
}
