//! Run reports: everything a caller might want to know about a finished partitioning run.

use crate::refinement::IterationStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Summary of one recursion level (recursive mode only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelReport {
    /// Recursion level (0-based).
    pub level: usize,
    /// Number of buckets after this level's splits.
    pub buckets_after: u32,
    /// Refinement iterations executed at this level.
    pub iterations: usize,
    /// Average fanout at the end of the level.
    pub fanout_after: f64,
    /// Wall-clock time spent on the level.
    #[serde(with = "duration_micros")]
    pub elapsed: Duration,
}

/// Full report of a partitioning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-iteration statistics, concatenated across recursion levels in execution order.
    pub history: Vec<IterationStats>,
    /// Per-level summaries (empty in direct mode).
    pub levels: Vec<LevelReport>,
    /// Average fanout of the final partition.
    pub final_fanout: f64,
    /// Average p-fanout (p = 0.5) of the final partition, for comparability across objectives.
    pub final_p_fanout: f64,
    /// Realized imbalance of the final partition.
    pub imbalance: f64,
    /// Total wall-clock time of the run.
    #[serde(with = "duration_micros")]
    pub elapsed: Duration,
}

impl RunReport {
    /// Total number of refinement iterations executed.
    pub fn total_iterations(&self) -> usize {
        self.history.len()
    }

    /// Total number of vertex moves applied over the whole run.
    pub fn total_moves(&self) -> usize {
        self.history.iter().map(|s| s.moved).sum()
    }
}

mod duration_micros {
    //! Serializes [`std::time::Duration`] as integer microseconds.
    // Referenced by `#[serde(with = ...)]`; the vendored no-op derive does not expand to calls,
    // so these helpers look dead to rustc until a real serde backend is enabled.
    #![allow(dead_code)]
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let micros = u64::deserialize(d)?;
        Ok(Duration::from_micros(micros))
    }
}

/// The output of a partitioning run: the partition plus its report.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// The final bucket assignment.
    pub partition: shp_hypergraph::Partition,
    /// Statistics about how it was obtained.
    pub report: RunReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_history() {
        let report = RunReport {
            history: vec![
                IterationStats {
                    iteration: 0,
                    candidates: 10,
                    moved: 5,
                    moved_fraction: 0.5,
                    applied_gain: 2.0,
                    fanout_after: 3.0,
                },
                IterationStats {
                    iteration: 1,
                    candidates: 4,
                    moved: 2,
                    moved_fraction: 0.2,
                    applied_gain: 0.5,
                    fanout_after: 2.5,
                },
            ],
            levels: vec![],
            final_fanout: 2.5,
            final_p_fanout: 2.0,
            imbalance: 0.01,
            elapsed: Duration::from_millis(12),
        };
        assert_eq!(report.total_iterations(), 2);
        assert_eq!(report.total_moves(), 7);
    }
}
