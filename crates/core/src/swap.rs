//! Swap coordination: the swap matrix `S` and bucket-pair move probabilities.
//!
//! After every data vertex has picked a target bucket, the master must decide how many of the
//! candidates may actually move so that balance is preserved. The basic scheme of Algorithm 1
//! counts candidates per ordered bucket pair in the matrix `S` and lets each candidate move
//! with probability `min(S_ij, S_ji) / S_ij`, so the expected flow in the two directions is
//! equal. The advanced scheme (Section 3.4, implemented in [`crate::histogram`]) refines this
//! with per-gain-bin probabilities.

use crate::gains::MoveProposal;
use crate::histogram::{bin_index, GainHistogramSet, NUM_BINS};
use crate::pair_table::PairTable;
use shp_hypergraph::BucketId;

/// The swap matrix `S`: `S[(i, j)]` is the number of data vertices currently in bucket `i`
/// whose best target is bucket `j`. Stored in a dense [`PairTable`] indexed by `i * k + j`
/// (O(1) hash-free counting; at most `k²` slots, small in the dense-k regime the paper
/// targets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapMatrix {
    counts: PairTable<u64>,
}

impl Default for SwapMatrix {
    fn default() -> Self {
        SwapMatrix {
            counts: PairTable::new(0, 0),
        }
    }
}

impl SwapMatrix {
    /// Builds the swap matrix from a set of proposals, counting only strictly improving moves
    /// (matching the `if gain > 0` condition of Algorithm 1).
    pub fn from_proposals(proposals: &[MoveProposal]) -> Self {
        let k = proposals
            .iter()
            .filter(|p| p.gain > 0.0)
            .map(|p| p.from.max(p.to) + 1)
            .max()
            .unwrap_or(0);
        let mut counts = PairTable::new(k, 0u64);
        for p in proposals {
            if p.gain > 0.0 {
                *counts.entry(p.from, p.to) += 1;
            }
        }
        SwapMatrix { counts }
    }

    /// Number of candidates wanting to move from `i` to `j`.
    pub fn count(&self, i: BucketId, j: BucketId) -> u64 {
        self.counts.get(i, j).copied().unwrap_or(0)
    }

    /// Number of non-zero entries.
    pub fn num_entries(&self) -> usize {
        self.counts.len()
    }

    /// Total number of counted candidates.
    pub fn total_candidates(&self) -> u64 {
        self.counts.iter().map(|(_, &c)| c).sum()
    }

    /// Computes the basic move probabilities `min(S_ij, S_ji) / S_ij` for every ordered pair
    /// with candidates.
    pub fn move_probabilities(&self) -> MoveProbabilities {
        let mut probs = PairTable::new(self.counts.num_buckets(), 0.0f64);
        for ((i, j), &s_ij) in self.counts.iter() {
            if s_ij == 0 {
                continue;
            }
            let s_ji = self.count(j, i);
            let p = s_ij.min(s_ji) as f64 / s_ij as f64;
            probs.insert(i, j, p);
        }
        MoveProbabilities::Matrix(probs)
    }
}

/// Move probabilities broadcast by the master: either one probability per ordered bucket pair
/// (basic scheme) or one per (bucket pair, gain bin) (histogram scheme).
#[derive(Debug, Clone, PartialEq)]
pub enum MoveProbabilities {
    /// `probability[(i, j)]` applies to every candidate moving from `i` to `j`.
    Matrix(PairTable<f64>),
    /// `probability[(i, j)][bin]` applies to candidates moving from `i` to `j` whose gain falls
    /// in `bin` (see [`crate::histogram::bin_index`]). Boxed: the per-bin table's fill
    /// template alone is larger than the whole matrix variant.
    Histogram(Box<PairTable<[f64; NUM_BINS]>>),
}

impl MoveProbabilities {
    /// Probability with which the given proposal is allowed to move.
    pub fn probability(&self, proposal: &MoveProposal) -> f64 {
        match self {
            MoveProbabilities::Matrix(probs) => {
                if proposal.gain > 0.0 {
                    probs
                        .get(proposal.from, proposal.to)
                        .copied()
                        .unwrap_or(0.0)
                } else {
                    0.0
                }
            }
            MoveProbabilities::Histogram(probs) => probs
                .get(proposal.from, proposal.to)
                .map(|bins| bins[bin_index(proposal.gain)])
                .unwrap_or(0.0),
        }
    }

    /// Builds histogram-based probabilities from a histogram set (Section 3.4): bins of the two
    /// directions of every bucket pair are matched from the highest gain downwards.
    pub fn from_histograms(set: &GainHistogramSet) -> Self {
        MoveProbabilities::Histogram(Box::new(set.match_bins()))
    }

    /// An empty probability table (nothing is allowed to move).
    pub fn none() -> Self {
        MoveProbabilities::Matrix(PairTable::new(0, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proposal(vertex: u32, from: u32, to: u32, gain: f64) -> MoveProposal {
        MoveProposal {
            vertex,
            from,
            to,
            gain,
        }
    }

    #[test]
    fn swap_matrix_counts_only_positive_gains() {
        let proposals = vec![
            proposal(0, 0, 1, 1.0),
            proposal(1, 0, 1, 0.5),
            proposal(2, 1, 0, 2.0),
            proposal(3, 1, 0, -1.0),
            proposal(4, 1, 0, 0.0),
        ];
        let s = SwapMatrix::from_proposals(&proposals);
        assert_eq!(s.count(0, 1), 2);
        assert_eq!(s.count(1, 0), 1);
        assert_eq!(s.count(0, 2), 0);
        assert_eq!(s.num_entries(), 2);
        assert_eq!(s.total_candidates(), 3);
    }

    #[test]
    fn matrix_probabilities_balance_expected_flow() {
        // 4 candidates 0->1, 2 candidates 1->0: probability 0.5 one way, 1.0 the other, so the
        // expected number of movers is 2 in each direction.
        let mut proposals = Vec::new();
        for v in 0..4 {
            proposals.push(proposal(v, 0, 1, 1.0));
        }
        for v in 4..6 {
            proposals.push(proposal(v, 1, 0, 1.0));
        }
        let s = SwapMatrix::from_proposals(&proposals);
        let probs = s.move_probabilities();
        assert!((probs.probability(&proposal(0, 0, 1, 1.0)) - 0.5).abs() < 1e-12);
        assert!((probs.probability(&proposal(4, 1, 0, 1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_sided_demand_gets_zero_probability() {
        let proposals = vec![proposal(0, 0, 1, 1.0), proposal(1, 0, 1, 1.0)];
        let s = SwapMatrix::from_proposals(&proposals);
        let probs = s.move_probabilities();
        assert_eq!(probs.probability(&proposal(0, 0, 1, 1.0)), 0.0);
    }

    #[test]
    fn nonpositive_proposals_never_move_under_matrix_probabilities() {
        let proposals = vec![proposal(0, 0, 1, 1.0), proposal(1, 1, 0, 1.0)];
        let s = SwapMatrix::from_proposals(&proposals);
        let probs = s.move_probabilities();
        assert_eq!(probs.probability(&proposal(5, 0, 1, -0.5)), 0.0);
        assert_eq!(probs.probability(&proposal(5, 0, 1, 0.0)), 0.0);
        assert!(probs.probability(&proposal(5, 0, 1, 0.5)) > 0.0);
    }

    #[test]
    fn unknown_pairs_have_zero_probability() {
        let probs = MoveProbabilities::none();
        assert_eq!(probs.probability(&proposal(0, 3, 7, 10.0)), 0.0);
    }
}
