//! Uniform random bipartite graphs (Erdős–Rényi style), used as an unstructured control.

use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_hypergraph::{BipartiteGraph, GraphBuilder};

/// Generates a bipartite graph with `num_queries` queries over `num_data` data vertices where
/// every query has `query_degree` pins chosen uniformly at random (without replacement within
/// the query).
///
/// # Panics
/// Panics if `num_data == 0` while `num_queries > 0 && query_degree > 0`.
pub fn erdos_renyi_bipartite(
    num_queries: usize,
    num_data: usize,
    query_degree: usize,
    seed: u64,
) -> BipartiteGraph {
    assert!(
        num_data > 0 || num_queries == 0 || query_degree == 0,
        "cannot draw pins from an empty data set"
    );
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(num_queries, num_data);
    builder.reserve_pins(num_queries * query_degree.min(num_data));
    // Reusable pin buffer feeding the builder's flat arena (no per-query `Vec`).
    let mut pins: Vec<u32> = Vec::with_capacity(query_degree.min(num_data));
    for _ in 0..num_queries {
        let degree = query_degree.min(num_data);
        pins.clear();
        while pins.len() < degree {
            let v = rng.gen_range(0..num_data) as u32;
            if !pins.contains(&v) {
                pins.push(v);
            }
        }
        builder.add_query_slice(&pins);
    }
    builder.ensure_data_count(num_data);
    builder
        .build()
        .expect("generated ids are in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let g = erdos_renyi_bipartite(100, 50, 4, 1);
        assert_eq!(g.num_queries(), 100);
        assert_eq!(g.num_data(), 50);
        assert_eq!(g.num_edges(), 400);
        assert!(g.queries().all(|q| g.query_degree(q) == 4));
    }

    #[test]
    fn is_deterministic_per_seed() {
        assert_eq!(
            erdos_renyi_bipartite(50, 30, 3, 7),
            erdos_renyi_bipartite(50, 30, 3, 7)
        );
        assert_ne!(
            erdos_renyi_bipartite(50, 30, 3, 7),
            erdos_renyi_bipartite(50, 30, 3, 8)
        );
    }

    #[test]
    fn degree_is_capped_by_data_count() {
        let g = erdos_renyi_bipartite(5, 3, 10, 2);
        assert!(g.queries().all(|q| g.query_degree(q) == 3));
    }

    #[test]
    fn empty_graph_is_allowed() {
        let g = erdos_renyi_bipartite(0, 0, 0, 3);
        assert_eq!(g.num_queries(), 0);
        assert_eq!(g.num_data(), 0);
    }
}
