//! # shp-datagen
//!
//! Synthetic hypergraph generators reproducing the *shape* of the datasets used in the SHP
//! paper's evaluation (Table 1) at a configurable scale.
//!
//! The original experiments use SNAP graphs (email-Enron, soc-Epinions, web-Stanford,
//! web-BerkStan, soc-Pokec, soc-LJ) and Darwini-generated Facebook-like graphs
//! (FB-10M … FB-10B). Neither the SNAP downloads nor billion-edge Darwini graphs are available
//! offline, so this crate provides generators with the same qualitative structure:
//!
//! * [`social`] — a community-structured social graph whose hyperedges are friend lists (every
//!   user is both a query and a data vertex), standing in for the Darwini FB-x graphs and the
//!   soc-* graphs.
//! * [`power_law`] — a bipartite configuration model with power-law query degrees, standing in
//!   for the heavy-tailed web graphs.
//! * [`erdos_renyi`] — uniform random bipartite graphs, used as an unstructured control.
//! * [`planted`] — a planted-partition hypergraph with known ground-truth buckets, used for
//!   correctness tests (a good partitioner must recover the planted structure).
//! * [`registry`] — named datasets mirroring Table 1 with a scale factor, so benchmark binaries
//!   can say "soc-Pokec at 1% scale" and get a deterministic graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod erdos_renyi;
pub mod planted;
pub mod power_law;
pub mod registry;
pub mod social;

pub use erdos_renyi::erdos_renyi_bipartite;
pub use planted::{planted_partition, PlantedConfig};
pub use power_law::{power_law_bipartite, PowerLawConfig, PowerLawStream};
pub use registry::{Dataset, DatasetSpec, GeneratorFamily};
pub use social::{social_graph, SocialGraphConfig};
