//! Planted-partition hypergraphs with known ground truth.
//!
//! Vertices are divided into `k` planted blocks; most queries draw all their pins from a single
//! block, a configurable fraction spans two blocks. A correct partitioner given the true `k`
//! must essentially recover the planted blocks (average fanout close to 1 + noise), which makes
//! this generator the workhorse of the correctness tests and of the paper's suggestion to study
//! algorithms "that provably find a correct solution for certain random hypergraphs
//! (e.g., generated with a planted partition model)".

use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use shp_hypergraph::{BipartiteGraph, GraphBuilder};

/// Parameters of the planted-partition generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedConfig {
    /// Number of planted blocks (the "true" k).
    pub num_blocks: u32,
    /// Number of data vertices per block.
    pub block_size: usize,
    /// Number of queries.
    pub num_queries: usize,
    /// Query degree (pins per query).
    pub query_degree: usize,
    /// Fraction of queries whose pins are drawn from two different blocks.
    pub noise: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            num_blocks: 4,
            block_size: 256,
            num_queries: 4_096,
            query_degree: 6,
            noise: 0.05,
            seed: 1,
        }
    }
}

/// Generates a planted-partition hypergraph. Returns the graph and the planted block of every
/// data vertex.
pub fn planted_partition(config: &PlantedConfig) -> (BipartiteGraph, Vec<u32>) {
    let mut rng = Pcg64::seed_from_u64(config.seed);
    let k = config.num_blocks.max(1);
    let n = config.block_size * k as usize;
    let truth: Vec<u32> = (0..n)
        .map(|v| (v / config.block_size.max(1)) as u32)
        .collect();
    let mut builder = GraphBuilder::with_capacity(config.num_queries, n);
    if n == 0 {
        return (builder.build().expect("empty graph"), truth);
    }
    // Reusable pin buffer: queries stream into the builder's flat arena without a per-query
    // `Vec` allocation.
    let mut pins: Vec<u32> = Vec::with_capacity(config.query_degree.max(1));
    for _ in 0..config.num_queries {
        let primary = rng.gen_range(0..k) as usize;
        let noisy = rng.gen_bool(config.noise.clamp(0.0, 1.0)) && k > 1;
        let secondary = if noisy {
            let mut s = rng.gen_range(0..k) as usize;
            while s == primary {
                s = rng.gen_range(0..k) as usize;
            }
            Some(s)
        } else {
            None
        };
        let degree = config.query_degree.max(1).min(n);
        pins.clear();
        while pins.len() < degree {
            let block = match secondary {
                Some(s) if pins.len() % 2 == 1 => s,
                _ => primary,
            };
            let start = block * config.block_size;
            let v = (start + rng.gen_range(0..config.block_size)) as u32;
            if !pins.contains(&v) {
                pins.push(v);
            }
        }
        builder.add_query_slice(&pins);
    }
    builder.ensure_data_count(n);
    (builder.build().expect("generated ids are in range"), truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::{average_fanout, Partition};

    #[test]
    fn planted_blocks_have_fanout_close_to_one() {
        let config = PlantedConfig {
            noise: 0.0,
            ..Default::default()
        };
        let (g, truth) = planted_partition(&config);
        let p = Partition::from_assignment(&g, config.num_blocks, truth).unwrap();
        assert!((average_fanout(&g, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_fraction_controls_cross_block_queries() {
        let config = PlantedConfig {
            noise: 0.3,
            num_queries: 10_000,
            ..Default::default()
        };
        let (g, truth) = planted_partition(&config);
        let p = Partition::from_assignment(&g, config.num_blocks, truth).unwrap();
        let fanout = average_fanout(&g, &p);
        // Roughly 30% of queries have fanout 2 under the planted partition.
        assert!(fanout > 1.2 && fanout < 1.4, "fanout {fanout}");
    }

    #[test]
    fn sizes_match_configuration() {
        let config = PlantedConfig {
            num_blocks: 3,
            block_size: 100,
            num_queries: 500,
            ..Default::default()
        };
        let (g, truth) = planted_partition(&config);
        assert_eq!(g.num_data(), 300);
        assert_eq!(g.num_queries(), 500);
        assert_eq!(truth.len(), 300);
        assert!(truth.iter().all(|&b| b < 3));
    }

    #[test]
    fn deterministic_per_seed() {
        let config = PlantedConfig::default();
        assert_eq!(planted_partition(&config).0, planted_partition(&config).0);
        let other = PlantedConfig { seed: 2, ..config };
        assert_ne!(planted_partition(&config).0, planted_partition(&other).0);
    }
}
