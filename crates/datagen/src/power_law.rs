//! A bipartite configuration model with power-law query degrees.
//!
//! Web graphs and social graphs have heavy-tailed degree distributions; this generator draws
//! each query's degree from a bounded Pareto distribution and its pins from a preferential
//! (size-biased) distribution over the data vertices, giving both sides skewed degrees — the
//! property that stresses hypergraph partitioners (large hyperedges, hub data vertices).

use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use shp_hypergraph::io::QueryStream;
use shp_hypergraph::{BipartiteGraph, GraphBuilder};

/// Parameters of the power-law bipartite generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerLawConfig {
    /// Number of query vertices (hyperedges).
    pub num_queries: usize,
    /// Number of data vertices.
    pub num_data: usize,
    /// Minimum query degree (hyperedge size).
    pub min_degree: usize,
    /// Maximum query degree.
    pub max_degree: usize,
    /// Pareto exponent of the degree distribution (larger = lighter tail); typical 2.0–2.5.
    pub exponent: f64,
    /// Strength of preferential attachment on the data side: 0.0 = uniform pins, 1.0 = strongly
    /// skewed data degrees.
    pub preferential: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            num_queries: 10_000,
            num_data: 10_000,
            min_degree: 2,
            max_degree: 100,
            exponent: 2.2,
            preferential: 0.5,
            seed: 1,
        }
    }
}

/// Draws a bounded Pareto-distributed integer in `[min, max]`.
fn bounded_pareto<R: Rng>(rng: &mut R, min: f64, max: f64, alpha: f64) -> f64 {
    // Inverse-CDF sampling of the bounded Pareto distribution.
    let u: f64 = rng.gen_range(0.0..1.0);
    let l = min.powf(-alpha);
    let h = max.powf(-alpha);
    (-(u * (l - h) - l)).powf(-1.0 / alpha)
}

/// A re-iterable [`QueryStream`] over the power-law generator.
///
/// Each [`QueryStream::for_each_query`] pass re-seeds the PCG from `config.seed` and re-rolls
/// the identical query sequence, so the bounded-memory `.shpb` streaming writer
/// ([`shp_hypergraph::io::stream_shpb_file`]) can emit the graph to disk without ever
/// materializing it — the multiple passes the writer needs are pure CPU. The stream and
/// [`power_law_bipartite`] share one generation loop, which is what makes the streamed
/// container byte-identical to writing the materialized graph.
#[derive(Debug, Clone)]
pub struct PowerLawStream {
    config: PowerLawConfig,
    // One reusable pin buffer for the whole generation loop: pins stream to the consumer
    // straight from it, so no per-query `Vec` is ever allocated.
    pins: Vec<u32>,
}

impl PowerLawStream {
    /// Wraps a generator config as a re-iterable query stream.
    pub fn new(config: PowerLawConfig) -> Self {
        let cap = config.max_degree.max(1);
        PowerLawStream {
            config,
            pins: Vec::with_capacity(cap),
        }
    }

    /// The wrapped generator parameters.
    pub fn config(&self) -> &PowerLawConfig {
        &self.config
    }
}

impl QueryStream for PowerLawStream {
    fn for_each_query(&mut self, emit: &mut dyn FnMut(&[u32])) {
        let config = &self.config;
        if config.num_data == 0 {
            // No data vertices: no queries either (an all-empty hyperedge list is useless),
            // matching the materialized generator's early return.
            return;
        }
        let mut rng = Pcg64::seed_from_u64(config.seed);
        let n = config.num_data;
        let pins = &mut self.pins;
        for _ in 0..config.num_queries {
            let raw = bounded_pareto(
                &mut rng,
                config.min_degree.max(1) as f64,
                config.max_degree.max(config.min_degree.max(1)) as f64,
                config.exponent,
            );
            let degree = (raw.round() as usize)
                .clamp(config.min_degree.max(1), config.max_degree.max(1))
                .min(n);
            pins.clear();
            let mut attempts = 0;
            while pins.len() < degree && attempts < degree * 20 {
                attempts += 1;
                let v = if rng.gen_bool(config.preferential.clamp(0.0, 1.0)) {
                    // Size-biased choice: squaring a uniform skews towards low ids, which act
                    // as "hub" data vertices.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    ((u * u) * n as f64) as usize
                } else {
                    rng.gen_range(0..n)
                }
                .min(n - 1) as u32;
                if !pins.contains(&v) {
                    pins.push(v);
                }
            }
            emit(pins);
        }
    }

    fn min_data_count(&self) -> usize {
        self.config.num_data
    }
}

/// Generates a power-law bipartite graph (by materializing [`PowerLawStream`]).
pub fn power_law_bipartite(config: &PowerLawConfig) -> BipartiteGraph {
    let mut builder = GraphBuilder::with_capacity(config.num_queries, config.num_data);
    let mut stream = PowerLawStream::new(config.clone());
    stream.for_each_query(&mut |pins| {
        builder.add_query_slice(pins);
    });
    builder
        .build()
        .expect("generated ids are in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts_and_degree_bounds() {
        let config = PowerLawConfig {
            num_queries: 2_000,
            num_data: 1_000,
            min_degree: 2,
            max_degree: 50,
            ..Default::default()
        };
        let g = power_law_bipartite(&config);
        assert_eq!(g.num_queries(), 2_000);
        assert_eq!(g.num_data(), 1_000);
        for q in g.queries() {
            let d = g.query_degree(q);
            assert!((2..=50).contains(&d), "degree {d} out of bounds");
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let config = PowerLawConfig {
            num_queries: 5_000,
            num_data: 5_000,
            ..Default::default()
        };
        let g = power_law_bipartite(&config);
        let avg = g.avg_query_degree();
        let max = g.max_query_degree();
        // A heavy tail means the max degree greatly exceeds the average.
        assert!(max as f64 > avg * 5.0, "max {max} avg {avg}");
        // Preferential attachment should create data-side hubs too.
        assert!(g.max_data_degree() as f64 > g.avg_data_degree() * 5.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let config = PowerLawConfig {
            num_queries: 500,
            num_data: 500,
            ..Default::default()
        };
        assert_eq!(power_law_bipartite(&config), power_law_bipartite(&config));
        let other = PowerLawConfig { seed: 99, ..config };
        assert_ne!(power_law_bipartite(&config), power_law_bipartite(&other));
    }

    #[test]
    fn stream_writes_the_identical_container_without_materializing() {
        let config = PowerLawConfig {
            num_queries: 400,
            num_data: 300,
            ..Default::default()
        };
        let path =
            std::env::temp_dir().join(format!("shp-datagen-stream-{}.shpb", std::process::id()));
        shp_hypergraph::io::stream_shpb_file(&mut PowerLawStream::new(config.clone()), &path)
            .unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut materialized = Vec::new();
        shp_hypergraph::io::write_shpb(&power_law_bipartite(&config), &mut materialized).unwrap();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn empty_data_side_streams_the_empty_graph() {
        let config = PowerLawConfig {
            num_queries: 10,
            num_data: 0,
            ..Default::default()
        };
        let g = power_law_bipartite(&config);
        assert_eq!(g.num_queries(), 0);
        assert_eq!(g.num_data(), 0);
        let mut count = 0usize;
        PowerLawStream::new(config).for_each_query(&mut |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = bounded_pareto(&mut rng, 2.0, 100.0, 2.0);
            assert!((2.0..=100.0).contains(&x), "{x}");
        }
    }
}
