//! A named registry of datasets mirroring Table 1 of the paper at a configurable scale.
//!
//! Each entry records the published `|Q|`, `|D|`, `|E|` of the original dataset and the
//! generator used to synthesize a structurally similar graph at `scale ∈ (0, 1]` of the
//! original size (the default benchmark scale keeps every graph comfortably inside one
//! machine). Benchmark binaries iterate over the registry so that every table and figure can
//! name its datasets exactly like the paper does.

use crate::power_law::{power_law_bipartite, PowerLawConfig};
use crate::social::{social_graph, SocialGraphConfig};
use serde::{Deserialize, Serialize};
use shp_hypergraph::BipartiteGraph;

/// The datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum Dataset {
    /// email-Enron (SNAP).
    EmailEnron,
    /// soc-Epinions (SNAP).
    SocEpinions,
    /// web-Stanford (SNAP).
    WebStanford,
    /// web-BerkStan (SNAP).
    WebBerkStan,
    /// soc-Pokec (SNAP).
    SocPokec,
    /// soc-LiveJournal (SNAP).
    SocLiveJournal,
    /// FB-10M (Darwini).
    Fb10M,
    /// FB-50M (Darwini).
    Fb50M,
    /// FB-2B (Darwini).
    Fb2B,
    /// FB-5B (Darwini).
    Fb5B,
    /// FB-10B (Darwini).
    Fb10B,
}

/// Specification of one registry entry: the published sizes plus the generator family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Published number of query vertices (hyperedges).
    pub paper_queries: u64,
    /// Published number of data vertices.
    pub paper_data: u64,
    /// Published number of bipartite edges (pins).
    pub paper_edges: u64,
    /// Which generator family is used for the synthetic stand-in.
    pub family: GeneratorFamily,
}

/// Generator family of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratorFamily {
    /// Community-structured social graph (soc-*, FB-*).
    Social,
    /// Heavy-tailed web-like bipartite graph (web-*, email-*).
    PowerLaw,
}

impl Dataset {
    /// All datasets, in the order of Table 1.
    pub fn all() -> &'static [Dataset] {
        &[
            Dataset::EmailEnron,
            Dataset::SocEpinions,
            Dataset::WebStanford,
            Dataset::WebBerkStan,
            Dataset::SocPokec,
            Dataset::SocLiveJournal,
            Dataset::Fb10M,
            Dataset::Fb50M,
            Dataset::Fb2B,
            Dataset::Fb5B,
            Dataset::Fb10B,
        ]
    }

    /// The "small" datasets used in the single-machine quality comparison (Table 2).
    pub fn quality_benchmark_set() -> &'static [Dataset] {
        &[
            Dataset::EmailEnron,
            Dataset::SocEpinions,
            Dataset::WebStanford,
            Dataset::WebBerkStan,
            Dataset::SocPokec,
            Dataset::SocLiveJournal,
            Dataset::Fb10M,
            Dataset::Fb50M,
        ]
    }

    /// The large datasets used in the distributed scalability comparison (Table 3, Figure 5).
    pub fn scalability_benchmark_set() -> &'static [Dataset] {
        &[
            Dataset::SocPokec,
            Dataset::SocLiveJournal,
            Dataset::Fb50M,
            Dataset::Fb2B,
            Dataset::Fb5B,
            Dataset::Fb10B,
        ]
    }

    /// The specification (published sizes and generator family) of the dataset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::EmailEnron => DatasetSpec {
                name: "email-Enron",
                paper_queries: 25_481,
                paper_data: 36_692,
                paper_edges: 356_451,
                family: GeneratorFamily::PowerLaw,
            },
            Dataset::SocEpinions => DatasetSpec {
                name: "soc-Epinions",
                paper_queries: 31_149,
                paper_data: 75_879,
                paper_edges: 479_645,
                family: GeneratorFamily::Social,
            },
            Dataset::WebStanford => DatasetSpec {
                name: "web-Stanford",
                paper_queries: 253_097,
                paper_data: 281_903,
                paper_edges: 2_283_863,
                family: GeneratorFamily::PowerLaw,
            },
            Dataset::WebBerkStan => DatasetSpec {
                name: "web-BerkStan",
                paper_queries: 609_527,
                paper_data: 685_230,
                paper_edges: 7_529_636,
                family: GeneratorFamily::PowerLaw,
            },
            Dataset::SocPokec => DatasetSpec {
                name: "soc-Pokec",
                paper_queries: 1_277_002,
                paper_data: 1_632_803,
                paper_edges: 30_466_873,
                family: GeneratorFamily::Social,
            },
            Dataset::SocLiveJournal => DatasetSpec {
                name: "soc-LJ",
                paper_queries: 3_392_317,
                paper_data: 4_847_571,
                paper_edges: 68_077_638,
                family: GeneratorFamily::Social,
            },
            Dataset::Fb10M => DatasetSpec {
                name: "FB-10M",
                paper_queries: 32_296,
                paper_data: 32_770,
                paper_edges: 10_099_740,
                family: GeneratorFamily::Social,
            },
            Dataset::Fb50M => DatasetSpec {
                name: "FB-50M",
                paper_queries: 152_263,
                paper_data: 154_551,
                paper_edges: 49_998_426,
                family: GeneratorFamily::Social,
            },
            Dataset::Fb2B => DatasetSpec {
                name: "FB-2B",
                paper_queries: 6_063_442,
                paper_data: 6_153_846,
                paper_edges: 2_000_000_000,
                family: GeneratorFamily::Social,
            },
            Dataset::Fb5B => DatasetSpec {
                name: "FB-5B",
                paper_queries: 15_150_402,
                paper_data: 15_376_099,
                paper_edges: 5_000_000_000,
                family: GeneratorFamily::Social,
            },
            Dataset::Fb10B => DatasetSpec {
                name: "FB-10B",
                paper_queries: 30_302_615,
                paper_data: 40_361_708,
                paper_edges: 10_000_000_000,
                family: GeneratorFamily::Social,
            },
        }
    }

    /// Parses a dataset by its paper name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Dataset> {
        let lower = name.to_ascii_lowercase();
        Dataset::all()
            .iter()
            .copied()
            .find(|d| d.spec().name.to_ascii_lowercase() == lower)
    }

    /// The exact [`PowerLawConfig`] that [`Dataset::generate`] uses for this dataset at the
    /// given `(scale, seed)`, or `None` for [`GeneratorFamily::Social`] datasets.
    ///
    /// This is the hook for streaming generation: wrapping the returned config in
    /// [`crate::power_law::PowerLawStream`] and handing it to
    /// [`shp_hypergraph::io::stream_shpb_file`] writes a container byte-identical to
    /// materializing with [`Dataset::generate`] and calling `write_shpb` — without ever
    /// holding the graph in memory. The social family is inherently non-streamable (its
    /// community shuffle needs the whole graph), so it returns `None`.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn power_law_config(&self, scale: f64, seed: u64) -> Option<PowerLawConfig> {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must lie in (0, 1], got {scale}"
        );
        let spec = self.spec();
        if spec.family != GeneratorFamily::PowerLaw {
            return None;
        }
        let (num_queries, num_data, avg_degree) = scaled_sizes(&spec, scale);
        Some(PowerLawConfig {
            num_queries,
            num_data,
            min_degree: 2,
            max_degree: ((avg_degree * 20.0) as usize).clamp(8, 2_000),
            exponent: 2.1,
            preferential: 0.6,
            seed: seed ^ hash_name(spec.name),
        })
    }

    /// Generates a synthetic stand-in at the given `scale ∈ (0, 1]` of the published size.
    /// The result is deterministic for a `(dataset, scale, seed)` triple.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate(&self, scale: f64, seed: u64) -> BipartiteGraph {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must lie in (0, 1], got {scale}"
        );
        let spec = self.spec();
        let (num_queries, num_data, avg_degree) = scaled_sizes(&spec, scale);
        match spec.family {
            GeneratorFamily::PowerLaw => power_law_bipartite(
                &self
                    .power_law_config(scale, seed)
                    .expect("family checked above"),
            ),
            GeneratorFamily::Social => {
                // For social graphs every user is both query and data; use the data count and
                // halve the degree because friend-list symmetrization doubles it.
                let users = num_data.max(num_queries);
                social_graph(&SocialGraphConfig {
                    num_users: users,
                    avg_degree: ((avg_degree / 2.0) as usize).clamp(2, 400),
                    avg_community_size: (users / 200).clamp(20, 2_000),
                    cross_community_fraction: 0.08,
                    seed: seed ^ hash_name(spec.name),
                })
            }
        }
    }
}

/// The scaled `(num_queries, num_data, avg_degree)` of a spec, shared by every generator
/// family. Keeps at least a small floor so extreme scales remain meaningful graphs.
fn scaled_sizes(spec: &DatasetSpec, scale: f64) -> (usize, usize, f64) {
    let num_queries = ((spec.paper_queries as f64 * scale) as usize).max(200);
    let num_data = ((spec.paper_data as f64 * scale) as usize).max(200);
    let avg_degree = (spec.paper_edges as f64 / spec.paper_queries as f64).max(2.0);
    (num_queries, num_data, avg_degree)
}

/// Stable hash of a dataset name, mixed into the seed so different datasets generated with the
/// same seed are not correlated.
fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_table1_datasets() {
        assert_eq!(Dataset::all().len(), 11);
        assert_eq!(Dataset::quality_benchmark_set().len(), 8);
        assert_eq!(Dataset::scalability_benchmark_set().len(), 6);
    }

    #[test]
    fn from_name_roundtrips() {
        for &d in Dataset::all() {
            assert_eq!(Dataset::from_name(d.spec().name), Some(d));
        }
        assert_eq!(Dataset::from_name("soc-pokec"), Some(Dataset::SocPokec));
        assert_eq!(Dataset::from_name("nonexistent"), None);
    }

    #[test]
    fn generation_is_deterministic_and_scaled() {
        let small = Dataset::EmailEnron.generate(0.05, 1);
        let small2 = Dataset::EmailEnron.generate(0.05, 1);
        assert_eq!(small, small2);
        let bigger = Dataset::EmailEnron.generate(0.2, 1);
        assert!(bigger.num_edges() > small.num_edges());
    }

    #[test]
    fn social_family_has_equal_query_and_data_counts() {
        let g = Dataset::Fb10M.generate(0.02, 1);
        assert_eq!(g.num_queries(), g.num_data());
        assert!(g.num_edges() > g.num_queries());
    }

    #[test]
    #[should_panic(expected = "scale must lie in (0, 1]")]
    fn invalid_scale_panics() {
        let _ = Dataset::SocPokec.generate(0.0, 1);
    }

    #[test]
    fn power_law_config_matches_generate_and_streams_identically() {
        // Social family is not streamable.
        assert!(Dataset::SocPokec.power_law_config(0.05, 1).is_none());

        // PowerLaw family: streaming the config writes the byte-identical container to
        // materializing via `generate`.
        let config = Dataset::EmailEnron.power_law_config(0.02, 7).unwrap();
        let path =
            std::env::temp_dir().join(format!("shp-registry-stream-{}.shpb", std::process::id()));
        let mut stream = crate::power_law::PowerLawStream::new(config);
        shp_hypergraph::io::stream_shpb_file(&mut stream, &path).unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut materialized = Vec::new();
        shp_hypergraph::io::write_shpb(&Dataset::EmailEnron.generate(0.02, 7), &mut materialized)
            .unwrap();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn spec_sizes_match_table1_values() {
        assert_eq!(Dataset::SocLiveJournal.spec().paper_edges, 68_077_638);
        assert_eq!(Dataset::WebStanford.spec().paper_queries, 253_097);
        assert_eq!(Dataset::Fb10B.spec().paper_edges, 10_000_000_000);
    }
}
