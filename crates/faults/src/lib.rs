//! # shp-faults
//!
//! Deterministic, replayable fault injection for the serving tier.
//!
//! The Social Hash system the paper sits inside serves multiget traffic from machines that
//! crash, straggle, and get replaced; the two-level design (graph buckets → physical shards,
//! plus replication for read scaling) exists so the assigner can react to failures without
//! recomputing the partition. Exercising that reaction requires failures on demand — and for
//! CI to assert the outcome, the *same* failures on every run.
//!
//! A [`FaultPlan`] scripts per-shard fault schedules on a logical **query clock**: every
//! executed multiget advances the tick by one, and every schedule window is expressed in
//! ticks. Three fault kinds compose:
//!
//! * **down windows** — the shard refuses all requests during `[from, to)` (crash at `from`,
//!   recover at `to`; `to = u64::MAX` is a dead shard);
//! * **slow windows** — the shard serves, but its sampled service time is multiplied by a
//!   straggler factor (the hedged-retry trigger);
//! * **request drops** — each attempt against the shard is independently lost with a fixed
//!   probability, drawn from the vendored PCG seeded by a pure hash of
//!   `(seed, shard, tick, attempt)`.
//!
//! Every decision a [`FaultInjector`] makes is a pure function of the plan, the injector
//! seed, and the query tick — no shared RNG streams, no wall clock. Two runs over the same
//! query sequence observe byte-identical faults, and an **empty plan is indistinguishable
//! from no injector at all** (the conformance property the serving tests pin down): the
//! injector never touches the shard latency RNG streams, so healthy shards sample the exact
//! same service times with or without it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};
use rand_pcg::Pcg64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 finalizer: the bijective mixer behind every scripted fault decision.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The scripted fault schedule of one shard (see [`FaultPlan`]).
#[derive(Debug, Clone, Default, PartialEq)]
struct ShardSchedule {
    /// Tick windows `[from, to)` during which the shard is down.
    down: Vec<(u64, u64)>,
    /// Tick windows `[from, to)` with a service-time multiplier (straggler phases).
    slow: Vec<(u64, u64, f64)>,
    /// Probability that any single attempt against the shard is lost.
    drop_probability: f64,
}

/// A deterministic per-shard fault script, expressed on the logical query clock.
///
/// Built in builder style and handed to a [`FaultInjector`]:
///
/// ```
/// use shp_faults::{FaultInjector, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .kill(1, 100, 400)          // shard 1 crashes at query 100, recovers at 400
///     .crash(0, 1_000)            // shard 0 dies at query 1000 and never comes back
///     .slow(2, 0, u64::MAX, 4.0)  // shard 2 is a permanent 4x straggler
///     .drop_requests(3, 0.05);    // shard 3 loses 5% of attempts
/// let injector = FaultInjector::new(plan, 0xFA17);
/// assert!(!injector.is_down(1, 99));
/// assert!(injector.is_down(1, 100));
/// assert!(!injector.is_down(1, 400));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    schedules: BTreeMap<u32, ShardSchedule>,
}

impl FaultPlan {
    /// An empty plan: no shard ever fails. An injector carrying it behaves byte-identically
    /// to no injector at all.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan scripts no faults at all.
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty()
    }

    /// Scripts `shard` down for the tick window `[from, to)`.
    pub fn kill(mut self, shard: u32, from: u64, to: u64) -> Self {
        self.schedules
            .entry(shard)
            .or_default()
            .down
            .push((from, to));
        self
    }

    /// Scripts `shard` to crash at tick `at` and never recover.
    pub fn crash(self, shard: u32, at: u64) -> Self {
        self.kill(shard, at, u64::MAX)
    }

    /// Scripts `shard` as a straggler for `[from, to)`: sampled service times are multiplied
    /// by `factor` (> 1.0 to slow it down).
    pub fn slow(mut self, shard: u32, from: u64, to: u64, factor: f64) -> Self {
        self.schedules
            .entry(shard)
            .or_default()
            .slow
            .push((from, to, factor));
        self
    }

    /// Scripts `shard` to lose each attempt independently with `probability` (clamped to
    /// `[0, 1]`).
    pub fn drop_requests(mut self, shard: u32, probability: f64) -> Self {
        self.schedules.entry(shard).or_default().drop_probability = probability.clamp(0.0, 1.0);
        self
    }

    fn schedule(&self, shard: u32) -> Option<&ShardSchedule> {
        self.schedules.get(&shard)
    }
}

/// Deterministic latency costs of the failover/retry machinery, in multiples of the latency
/// model's mean service time.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// What a failed attempt (down shard or dropped request) costs before the client gives
    /// up on it: the client-side timeout.
    pub timeout_factor: f64,
    /// Backoff added before retry attempt `k` (cost `k * backoff_factor` mean service times)
    /// — the deterministic budgeted backoff between failover candidates.
    pub backoff_factor: f64,
    /// Delay after which a hedged duplicate is sent to the next replica when the serving
    /// shard is flagged slow.
    pub hedge_delay_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_factor: 8.0,
            backoff_factor: 1.0,
            hedge_delay_factor: 2.0,
        }
    }
}

/// Applies a [`FaultPlan`] to live traffic: owns the logical query clock and answers
/// down/slow/drop questions as pure functions of `(plan, seed, shard, tick)`.
///
/// The only mutable state is the clock ([`FaultInjector::begin_query`] ticks it once per
/// executed multiget); everything else is stateless, which is what makes fault schedules
/// replayable and two identically-seeded runs byte-identical.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    policy: RetryPolicy,
    clock: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector applying `plan`, with drop draws keyed by `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            seed,
            policy: RetryPolicy::default(),
            clock: AtomicU64::new(0),
        }
    }

    /// Replaces the retry/hedging cost policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The scripted plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The retry/hedging cost policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Advances the query clock and returns the tick the beginning query runs at.
    pub fn begin_query(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The tick the *next* query will run at (queries served so far).
    pub fn current_tick(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Whether `shard` is scripted down at `tick`.
    pub fn is_down(&self, shard: u32, tick: u64) -> bool {
        self.plan
            .schedule(shard)
            .is_some_and(|s| s.down.iter().any(|&(from, to)| tick >= from && tick < to))
    }

    /// The service-time multiplier of `shard` at `tick` (`1.0` when not scripted slow;
    /// overlapping slow windows multiply).
    pub fn slow_factor(&self, shard: u32, tick: u64) -> f64 {
        match self.plan.schedule(shard) {
            None => 1.0,
            Some(s) => s
                .slow
                .iter()
                .filter(|&&(from, to, _)| tick >= from && tick < to)
                .map(|&(_, _, factor)| factor)
                .product(),
        }
    }

    /// Whether attempt number `attempt` of the query at `tick` against `shard` is lost.
    ///
    /// The draw comes from a throwaway [`Pcg64`] seeded by a pure hash of
    /// `(seed, shard, tick, attempt)`, so it is independent of every other decision and
    /// identical on replay. A shard with no scripted drop probability costs one branch.
    pub fn drops(&self, shard: u32, tick: u64, attempt: u64) -> bool {
        let Some(schedule) = self.plan.schedule(shard) else {
            return false;
        };
        if schedule.drop_probability <= 0.0 {
            return false;
        }
        if schedule.drop_probability >= 1.0 {
            return true;
        }
        let key = mix64(self.seed ^ mix64((u64::from(shard) << 34) ^ (attempt << 56) ^ tick));
        let mut rng = Pcg64::seed_from_u64(key);
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < schedule.drop_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let inj = FaultInjector::new(FaultPlan::new(), 1);
        assert!(inj.plan().is_empty());
        for shard in 0..4 {
            for tick in [0, 1, 1000, u64::MAX - 1] {
                assert!(!inj.is_down(shard, tick));
                assert_eq!(inj.slow_factor(shard, tick), 1.0);
                assert!(!inj.drops(shard, tick, 0));
            }
        }
    }

    #[test]
    fn down_windows_are_half_open_and_per_shard() {
        let inj = FaultInjector::new(FaultPlan::new().kill(2, 10, 20).crash(3, 5), 1);
        assert!(!inj.is_down(2, 9));
        assert!(inj.is_down(2, 10));
        assert!(inj.is_down(2, 19));
        assert!(!inj.is_down(2, 20));
        assert!(!inj.is_down(0, 15));
        assert!(inj.is_down(3, u64::MAX - 1), "a crash never recovers");
        assert!(!inj.is_down(3, 4));
    }

    #[test]
    fn slow_windows_multiply_and_default_to_unity() {
        let plan = FaultPlan::new().slow(1, 0, 100, 3.0).slow(1, 50, 100, 2.0);
        let inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.slow_factor(1, 10), 3.0);
        assert_eq!(inj.slow_factor(1, 60), 6.0);
        assert_eq!(inj.slow_factor(1, 100), 1.0);
        assert_eq!(inj.slow_factor(0, 10), 1.0);
    }

    #[test]
    fn drops_are_deterministic_and_roughly_calibrated() {
        let a = FaultInjector::new(FaultPlan::new().drop_requests(0, 0.25), 7);
        let b = FaultInjector::new(FaultPlan::new().drop_requests(0, 0.25), 7);
        let mut dropped = 0u32;
        for tick in 0..4000u64 {
            let d = a.drops(0, tick, 0);
            assert_eq!(d, b.drops(0, tick, 0), "replay diverged at tick {tick}");
            dropped += u32::from(d);
        }
        // ~25% of 4000 with deterministic draws; generous tolerance.
        assert!((800..1200).contains(&dropped), "dropped {dropped} of 4000");
        // A different seed produces a different (but internally deterministic) sequence.
        let c = FaultInjector::new(FaultPlan::new().drop_requests(0, 0.25), 8);
        let diverges = (0..4000u64).any(|t| c.drops(0, t, 0) != a.drops(0, t, 0));
        assert!(diverges);
    }

    #[test]
    fn drop_extremes_shortcut() {
        let never = FaultInjector::new(FaultPlan::new().drop_requests(0, 0.0), 1);
        let always = FaultInjector::new(FaultPlan::new().drop_requests(0, 7.5), 1);
        for tick in 0..100 {
            assert!(!never.drops(0, tick, 0));
            assert!(always.drops(0, tick, 1), "probability clamps to 1");
        }
    }

    #[test]
    fn attempts_draw_independently() {
        let inj = FaultInjector::new(FaultPlan::new().drop_requests(0, 0.5), 3);
        let differs = (0..200u64).any(|tick| inj.drops(0, tick, 0) != inj.drops(0, tick, 1));
        assert!(differs, "attempt index must vary the draw");
    }

    #[test]
    fn query_clock_ticks_once_per_query() {
        let inj = FaultInjector::new(FaultPlan::new(), 1);
        assert_eq!(inj.current_tick(), 0);
        assert_eq!(inj.begin_query(), 0);
        assert_eq!(inj.begin_query(), 1);
        assert_eq!(inj.current_tick(), 2);
    }

    #[test]
    fn policy_is_overridable() {
        let inj = FaultInjector::new(FaultPlan::new(), 1).with_policy(RetryPolicy {
            timeout_factor: 2.0,
            backoff_factor: 0.5,
            hedge_delay_factor: 1.0,
        });
        assert_eq!(inj.policy().timeout_factor, 2.0);
        assert_eq!(RetryPolicy::default().timeout_factor, 8.0);
    }
}
