//! The bipartite-graph representation of a hypergraph.
//!
//! A [`BipartiteGraph`] stores the query→data and data→query adjacency of the bipartite graph
//! `G = (Q ∪ D, E)` in two compressed sparse row (CSR) arrays. The structure is immutable after
//! construction; use [`crate::GraphBuilder`] to assemble one incrementally.

use crate::error::{GraphError, Result};
use crate::storage::Section;

/// Identifier of a query vertex (equivalently, a hyperedge). Dense, `0..num_queries`.
pub type QueryId = u32;

/// Identifier of a data vertex (a hypergraph vertex). Dense, `0..num_data`.
pub type DataId = u32;

/// Borrowed raw CSR components: `(query_offsets, query_adjacency, data_offsets,
/// data_adjacency, data_weights)`.
pub(crate) type RawCsr<'a> = (
    &'a [u64],
    &'a [DataId],
    &'a [u64],
    &'a [QueryId],
    Option<&'a [u32]>,
);

/// An immutable bipartite graph in CSR form with adjacency stored in both directions.
///
/// The graph is equivalent to a hypergraph whose vertices are the data vertices and whose
/// hyperedges are the queries: hyperedge `q` spans exactly the data vertices adjacent to query
/// vertex `q` (Section 1 of the paper).
///
/// # Example
///
/// ```
/// use shp_hypergraph::GraphBuilder;
///
/// // The six-vertex example of Figure 1 in the paper: queries {1,2,6}, {1,2,3,4}, {4,5,6}
/// // (ids shifted to be 0-based).
/// let mut builder = GraphBuilder::new();
/// builder.add_query([0, 1, 5]);
/// builder.add_query([0, 1, 2, 3]);
/// builder.add_query([3, 4, 5]);
/// let graph = builder.build().unwrap();
///
/// assert_eq!(graph.num_queries(), 3);
/// assert_eq!(graph.num_data(), 6);
/// assert_eq!(graph.num_edges(), 10);
/// assert_eq!(graph.query_neighbors(1), &[0, 1, 2, 3]);
/// assert_eq!(graph.data_neighbors(0), &[0, 1]);
/// ```
/// Every section is a [`Section`]: either heap-owned (builders, text readers, the copying
/// binary reader) or a zero-copy borrowed view of a memory-mapped `.shpb` file
/// ([`crate::io::map_shpb_file`]). Equality compares contents, so an owned graph and a mapped
/// view of its serialization are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    /// CSR offsets for query → data adjacency; length `num_queries + 1`.
    query_offsets: Section<u64>,
    /// Concatenated data-vertex neighbor lists of all queries.
    query_adjacency: Section<DataId>,
    /// CSR offsets for data → query adjacency; length `num_data + 1`.
    data_offsets: Section<u64>,
    /// Concatenated query-vertex neighbor lists of all data vertices.
    data_adjacency: Section<QueryId>,
    /// Optional per-data-vertex weights (uniform weight 1 when `None`).
    data_weights: Option<Section<u32>>,
}

impl BipartiteGraph {
    /// Assembles a graph directly from CSR components.
    ///
    /// This is the low-level constructor used by [`crate::GraphBuilder`] and by the generators;
    /// it validates structural consistency of the two adjacency directions' sizes but does not
    /// verify that they encode the same edge set (the builder guarantees that).
    pub(crate) fn from_csr(
        query_offsets: Vec<u64>,
        query_adjacency: Vec<DataId>,
        data_offsets: Vec<u64>,
        data_adjacency: Vec<QueryId>,
        data_weights: Option<Vec<u32>>,
    ) -> Self {
        debug_assert_eq!(
            *query_offsets.last().unwrap_or(&0),
            query_adjacency.len() as u64
        );
        debug_assert_eq!(
            *data_offsets.last().unwrap_or(&0),
            data_adjacency.len() as u64
        );
        debug_assert_eq!(query_adjacency.len(), data_adjacency.len());
        if let Some(w) = &data_weights {
            debug_assert_eq!(w.len() + 1, data_offsets.len());
        }
        BipartiteGraph {
            query_offsets: Section::from(query_offsets),
            query_adjacency: Section::from(query_adjacency),
            data_offsets: Section::from(data_offsets),
            data_adjacency: Section::from(data_adjacency),
            data_weights: data_weights.map(Section::from),
        }
    }

    /// Assembles a graph directly from backing [`Section`]s — the constructor behind the
    /// zero-copy mapped path. The caller (the `.shpb` reader) must have validated the CSR
    /// structural contract; accessors trust offsets to be monotone and in-bounds.
    pub(crate) fn from_sections(
        query_offsets: Section<u64>,
        query_adjacency: Section<DataId>,
        data_offsets: Section<u64>,
        data_adjacency: Section<QueryId>,
        data_weights: Option<Section<u32>>,
    ) -> Self {
        BipartiteGraph {
            query_offsets,
            query_adjacency,
            data_offsets,
            data_adjacency,
            data_weights,
        }
    }

    /// Borrows the raw CSR components `(query_offsets, query_adjacency, data_offsets,
    /// data_adjacency, data_weights)` — the exact arrays the `.shpb` binary container
    /// serializes.
    pub(crate) fn raw_csr(&self) -> RawCsr<'_> {
        (
            self.query_offsets.as_slice(),
            self.query_adjacency.as_slice(),
            self.data_offsets.as_slice(),
            self.data_adjacency.as_slice(),
            self.data_weights.as_deref(),
        )
    }

    /// Number of query vertices (hyperedges), `|Q|`.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.query_offsets.len() - 1
    }

    /// Number of data vertices (hypergraph vertices), `|D|`.
    #[inline]
    pub fn num_data(&self) -> usize {
        self.data_offsets.len() - 1
    }

    /// Number of bipartite edges, `|E|` (equivalently the total size of all hyperedges).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.query_adjacency.len()
    }

    /// The data vertices adjacent to query `q` — i.e. the pins of hyperedge `q`.
    ///
    /// # Panics
    /// Panics if `q >= num_queries()`.
    #[inline]
    pub fn query_neighbors(&self, q: QueryId) -> &[DataId] {
        let start = self.query_offsets[q as usize] as usize;
        let end = self.query_offsets[q as usize + 1] as usize;
        &self.query_adjacency[start..end]
    }

    /// The query vertices adjacent to data vertex `v` — i.e. the hyperedges containing `v`.
    ///
    /// # Panics
    /// Panics if `v >= num_data()`.
    #[inline]
    pub fn data_neighbors(&self, v: DataId) -> &[QueryId] {
        let start = self.data_offsets[v as usize] as usize;
        let end = self.data_offsets[v as usize + 1] as usize;
        &self.data_adjacency[start..end]
    }

    /// Degree of query vertex `q` (size of hyperedge `q`).
    #[inline]
    pub fn query_degree(&self, q: QueryId) -> usize {
        self.query_neighbors(q).len()
    }

    /// Degree of data vertex `v` (number of hyperedges containing `v`).
    #[inline]
    pub fn data_degree(&self, v: DataId) -> usize {
        self.data_neighbors(v).len()
    }

    /// Weight of data vertex `v`; 1 unless explicit weights were supplied.
    #[inline]
    pub fn data_weight(&self, v: DataId) -> u32 {
        match &self.data_weights {
            Some(w) => w[v as usize],
            None => 1,
        }
    }

    /// Total weight of all data vertices.
    pub fn total_data_weight(&self) -> u64 {
        match &self.data_weights {
            Some(w) => w.iter().map(|&x| x as u64).sum(),
            None => self.num_data() as u64,
        }
    }

    /// Whether explicit data-vertex weights are attached.
    pub fn has_weights(&self) -> bool {
        self.data_weights.is_some()
    }

    /// Iterator over all query ids.
    pub fn queries(&self) -> impl Iterator<Item = QueryId> + '_ {
        0..self.num_queries() as QueryId
    }

    /// Iterator over all data ids.
    pub fn data_vertices(&self) -> impl Iterator<Item = DataId> + '_ {
        0..self.num_data() as DataId
    }

    /// Iterator over every bipartite edge as `(query, data)` pairs, in query order.
    pub fn edges(&self) -> impl Iterator<Item = (QueryId, DataId)> + '_ {
        self.queries()
            .flat_map(move |q| self.query_neighbors(q).iter().map(move |&v| (q, v)))
    }

    /// Maximum query degree (largest hyperedge), 0 for an empty graph.
    pub fn max_query_degree(&self) -> usize {
        self.queries()
            .map(|q| self.query_degree(q))
            .max()
            .unwrap_or(0)
    }

    /// Maximum data degree, 0 for an empty graph.
    pub fn max_data_degree(&self) -> usize {
        self.data_vertices()
            .map(|v| self.data_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average query degree (average hyperedge size).
    pub fn avg_query_degree(&self) -> f64 {
        if self.num_queries() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_queries() as f64
        }
    }

    /// Average data degree.
    pub fn avg_data_degree(&self) -> f64 {
        if self.num_data() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_data() as f64
        }
    }

    /// Attaches explicit data-vertex weights, replacing any existing weights.
    ///
    /// # Errors
    /// Returns [`GraphError::PartitionLengthMismatch`] if `weights.len() != num_data()`.
    pub fn with_data_weights(mut self, weights: Vec<u32>) -> Result<Self> {
        if weights.len() != self.num_data() {
            return Err(GraphError::PartitionLengthMismatch {
                got: weights.len(),
                expected: self.num_data(),
            });
        }
        self.data_weights = Some(Section::from(weights));
        Ok(self)
    }

    /// Returns the sub-bipartite-graph induced by the given subset of data vertices, together
    /// with the mapping from new (dense) data ids back to the original ids.
    ///
    /// Queries that end up with fewer than `min_query_degree` remaining data neighbors are
    /// dropped (the paper removes queries of degree ≤ 1 since their fanout is fixed). The
    /// subgraph re-numbers both sides densely.
    pub fn induced_subgraph(
        &self,
        data_subset: &[DataId],
        min_query_degree: usize,
    ) -> (BipartiteGraph, Vec<DataId>) {
        let mut new_id = vec![u32::MAX; self.num_data()];
        let mut original: Vec<DataId> = Vec::with_capacity(data_subset.len());
        for &v in data_subset {
            if new_id[v as usize] == u32::MAX {
                new_id[v as usize] = original.len() as u32;
                original.push(v);
            }
        }

        let mut builder =
            crate::builder::GraphBuilder::with_capacity(self.num_queries() / 2, original.len());
        let mut pins: Vec<DataId> = Vec::new();
        for q in self.queries() {
            pins.clear();
            pins.extend(
                self.query_neighbors(q)
                    .iter()
                    .filter(|&&v| new_id[v as usize] != u32::MAX)
                    .map(|&v| new_id[v as usize]),
            );
            if pins.len() >= min_query_degree {
                builder.add_query_slice(&pins);
            }
        }
        if let Some(weights) = &self.data_weights {
            let sub_weights: Vec<u32> = original.iter().map(|&v| weights[v as usize]).collect();
            builder.set_data_weights(sub_weights);
        }
        // Make sure isolated data vertices of the subset are still represented.
        builder.ensure_data_count(original.len());
        let graph = builder
            .build()
            .expect("induced subgraph construction cannot produce out-of-range ids");
        (graph, original)
    }

    /// Produces a copy of the graph with all queries of degree strictly less than `min_degree`
    /// removed (data vertices are kept, so ids remain stable).
    pub fn filter_small_queries(&self, min_degree: usize) -> BipartiteGraph {
        let mut builder =
            crate::builder::GraphBuilder::with_capacity(self.num_queries(), self.num_data());
        for q in self.queries() {
            let pins = self.query_neighbors(q);
            if pins.len() >= min_degree {
                builder.add_query_slice(pins);
            }
        }
        builder.ensure_data_count(self.num_data());
        if let Some(w) = &self.data_weights {
            builder.set_data_weights(w.to_vec());
        }
        builder.build().expect("filtering preserves id validity")
    }

    /// Heap bytes owned by this graph. Useful for the scalability analyses.
    ///
    /// Borrowed (memory-mapped) sections own no heap and report 0 here — their file-backed
    /// footprint is [`BipartiteGraph::mapped_bytes`]. For a fully owned graph this is the
    /// complete CSR footprint, as before.
    pub fn memory_bytes(&self) -> usize {
        self.query_offsets.owned_bytes()
            + self.data_offsets.owned_bytes()
            + self.query_adjacency.owned_bytes()
            + self.data_adjacency.owned_bytes()
            + self.data_weights.as_ref().map_or(0, Section::owned_bytes)
    }

    /// File-backed bytes viewed through memory-mapped sections (0 for a fully owned graph).
    pub fn mapped_bytes(&self) -> usize {
        self.query_offsets.mapped_bytes()
            + self.data_offsets.mapped_bytes()
            + self.query_adjacency.mapped_bytes()
            + self.data_adjacency.mapped_bytes()
            + self.data_weights.as_ref().map_or(0, Section::mapped_bytes)
    }

    /// Whether any section borrows from a memory-mapped `.shpb` file.
    pub fn is_mapped(&self) -> bool {
        self.query_offsets.is_mapped()
            || self.data_offsets.is_mapped()
            || self.query_adjacency.is_mapped()
            || self.data_adjacency.is_mapped()
            || self.data_weights.as_ref().is_some_and(|w| w.is_mapped())
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    /// Builds the Figure-1 example from the paper (0-based ids).
    fn figure1() -> crate::BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = figure1();
        assert_eq!(g.num_queries(), 3);
        assert_eq!(g.num_data(), 6);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.total_data_weight(), 6);
        assert!(!g.has_weights());
    }

    #[test]
    fn adjacency_is_consistent_in_both_directions() {
        let g = figure1();
        // Each (q, v) pair present in query adjacency must appear in data adjacency and
        // vice versa.
        for (q, v) in g.edges() {
            assert!(
                g.data_neighbors(v).contains(&q),
                "edge ({q},{v}) missing from data side"
            );
        }
        let total_from_data: usize = g.data_vertices().map(|v| g.data_degree(v)).sum();
        assert_eq!(total_from_data, g.num_edges());
    }

    #[test]
    fn degrees_and_averages() {
        let g = figure1();
        assert_eq!(g.query_degree(0), 3);
        assert_eq!(g.query_degree(1), 4);
        assert_eq!(g.query_degree(2), 3);
        assert_eq!(g.max_query_degree(), 4);
        assert_eq!(g.data_degree(0), 2);
        assert_eq!(g.data_degree(4), 1);
        assert_eq!(g.max_data_degree(), 2);
        assert!((g.avg_query_degree() - 10.0 / 3.0).abs() < 1e-12);
        assert!((g.avg_data_degree() - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn weights_roundtrip() {
        let g = figure1().with_data_weights(vec![1, 2, 3, 4, 5, 6]).unwrap();
        assert!(g.has_weights());
        assert_eq!(g.data_weight(3), 4);
        assert_eq!(g.total_data_weight(), 21);
    }

    #[test]
    fn weights_length_mismatch_is_rejected() {
        let err = figure1().with_data_weights(vec![1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("length 3"));
    }

    #[test]
    fn induced_subgraph_keeps_only_selected_data() {
        let g = figure1();
        // Keep data vertices {0,1,2,3} -> queries become {0,1} (deg 2 and 4) and {3} (deg 1,
        // dropped with min degree 2).
        let (sub, original) = g.induced_subgraph(&[0, 1, 2, 3], 2);
        assert_eq!(original, vec![0, 1, 2, 3]);
        assert_eq!(sub.num_data(), 4);
        assert_eq!(sub.num_queries(), 2);
        assert_eq!(sub.query_neighbors(0), &[0, 1]);
        assert_eq!(sub.query_neighbors(1), &[0, 1, 2, 3]);
    }

    #[test]
    fn induced_subgraph_renumbers_densely() {
        let g = figure1();
        let (sub, original) = g.induced_subgraph(&[5, 3, 4], 2);
        assert_eq!(original, vec![5, 3, 4]);
        assert_eq!(sub.num_data(), 3);
        // Queries 0 and 1 keep only one pin each and are dropped; only query 2 = {3,4,5}
        // survives, with pins renumbered to {0,1,2}.
        assert_eq!(sub.num_queries(), 1);
        let mut all_pins: Vec<u32> = sub.query_neighbors(0).to_vec();
        all_pins.sort_unstable();
        assert_eq!(all_pins, vec![0, 1, 2]);
    }

    #[test]
    fn filter_small_queries_removes_singletons() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1]);
        b.add_query([2u32]);
        b.add_query([0u32, 2, 3]);
        let g = b.build().unwrap();
        let filtered = g.filter_small_queries(2);
        assert_eq!(filtered.num_queries(), 2);
        assert_eq!(filtered.num_data(), 4);
        assert_eq!(filtered.num_edges(), 5);
    }

    #[test]
    fn memory_bytes_is_positive_and_scales() {
        let g = figure1();
        let small = g.memory_bytes();
        assert!(small > 0);
        let mut b = GraphBuilder::new();
        for q in 0..100u32 {
            b.add_query([q, q + 1, q + 2]);
        }
        let big = b.build().unwrap().memory_bytes();
        assert!(big > small);
    }

    #[test]
    fn edges_iterator_matches_num_edges() {
        let g = figure1();
        assert_eq!(g.edges().count(), g.num_edges());
    }
}
