//! Incremental construction of [`BipartiteGraph`]s on a flat pin arena.
//!
//! The builder is the single funnel every ingestion path goes through — text parsers, the
//! binary `.shpb` reader's conformance oracle, the dataset generators, and the subgraph
//! extractors. Its hot path is allocation-shaped accordingly: hyperedges live in **one flat
//! `Vec<DataId>` arena plus an offsets vector** (no per-query `Vec`), `(query, data)` edge
//! pairs stream into a flat edge arena, and [`GraphBuilder::build`] assembles both CSR
//! directions with a two-pass counting sort whose data→query transpose can run on the real
//! thread pool ([`GraphBuilder::with_workers`]).
//!
//! The pre-arena build — one `Vec<DataId>` per hyperedge, sequential CSR assembly — is
//! retained verbatim behind [`BuildKernel::Legacy`] as a conformance oracle: for any sequence
//! of `add_query`/`add_edge` calls, both kernels produce **bit-identical** graphs at every
//! worker count (locked in by `tests/parallel_conformance.rs` and the `graph_ingest` bench).

use crate::bipartite::{BipartiteGraph, DataId, QueryId};
use crate::error::{GraphError, Result};

/// Selects the CSR assembly implementation of [`GraphBuilder::build`].
///
/// `Flat` is the production kernel; `Legacy` keeps the original per-query-`Vec` build as a
/// bit-identical conformance oracle (the ingestion analogue of `GainKernel::LegacyHashMap` in
/// `shp-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildKernel {
    /// Flat arena + two-pass counting sort, transpose parallelizable over the thread pool.
    #[default]
    Flat,
    /// One `Vec<DataId>` per hyperedge, sequential CSR assembly — the conformance oracle.
    Legacy,
}

/// Builds a [`BipartiteGraph`] from hyperedges (queries) added one at a time and/or a stream
/// of `(query, data)` edge pairs.
///
/// The builder stores hyperedges as supplied, deduplicates pins inside each hyperedge, and
/// on [`GraphBuilder::build`] produces CSR adjacency in both directions. Data-vertex ids are
/// taken literally: adding a query containing data id `v` implies the graph has at least
/// `v + 1` data vertices. Likewise [`GraphBuilder::add_edge`] takes query ids literally
/// (query ids with no edges become empty hyperedges); pins from both ingestion shapes
/// targeting the same query id are merged at build time.
///
/// # Example
///
/// ```
/// use shp_hypergraph::GraphBuilder;
///
/// let mut builder = GraphBuilder::new();
/// builder.add_query([0, 1, 2]);
/// builder.add_query([2, 3]);
/// let graph = builder.build().unwrap();
/// assert_eq!(graph.num_queries(), 2);
/// assert_eq!(graph.num_data(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    /// Flat arena of pins of all hyperedges added through `add_query*` (Flat kernel).
    pins: Vec<DataId>,
    /// Arena offsets: `offsets[q]..offsets[q+1]` are the pins of query `q`; starts at `[0]`.
    offsets: Vec<u64>,
    /// Hyperedges of the Legacy kernel (one `Vec` per query, the pre-arena representation).
    legacy_queries: Vec<Vec<DataId>>,
    /// Flat arena of `(query, data)` pairs added through `add_edge`/`add_edges`.
    edges: Vec<(QueryId, DataId)>,
    /// Largest edge-mode query id seen plus one.
    edge_num_queries: usize,
    /// Largest data id seen plus one.
    num_data: usize,
    /// Optional explicit data weights.
    data_weights: Option<Vec<u32>>,
    /// Whether duplicate pins within a hyperedge should be removed (default true).
    dedup_pins: bool,
    /// CSR assembly implementation.
    kernel: BuildKernel,
    /// Worker threads used by the Flat kernel's CSR passes.
    workers: usize,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        // Not derived: the flat arena's invariant is that `offsets` starts as `[0]`.
        GraphBuilder::new()
    }
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder {
            pins: Vec::new(),
            offsets: vec![0],
            legacy_queries: Vec::new(),
            edges: Vec::new(),
            edge_num_queries: 0,
            num_data: 0,
            data_weights: None,
            dedup_pins: true,
            kernel: BuildKernel::Flat,
            workers: 1,
        }
    }

    /// Creates an empty builder with capacity hints: the offsets vector reserves
    /// `num_queries + 1` slots up front and the final graph has at least `num_data` data
    /// vertices. Use [`GraphBuilder::reserve_pins`] when the total pin count is also known.
    pub fn with_capacity(num_queries: usize, num_data: usize) -> Self {
        let mut builder = GraphBuilder::new();
        builder.offsets.reserve(num_queries);
        builder.num_data = num_data;
        builder
    }

    /// Reserves room for at least `additional` more pins in the flat arena. Readers that
    /// know the exact pin count from a header or a completed parallel parse use this to make
    /// arena growth a single allocation. A no-op under [`BuildKernel::Legacy`]: the oracle
    /// deliberately keeps the original per-hyperedge allocation profile.
    pub fn reserve_pins(&mut self, additional: usize) {
        if self.kernel == BuildKernel::Flat {
            self.pins.reserve(additional);
        }
    }

    /// Reserves room for at least `additional` more `(query, data)` edge pairs.
    pub fn reserve_edges(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Disables in-hyperedge pin deduplication (useful when the caller guarantees uniqueness
    /// and wants to avoid the sort).
    pub fn without_dedup(mut self) -> Self {
        self.dedup_pins = false;
        self
    }

    /// Selects the CSR assembly kernel. Must be called before any hyperedge or edge is added
    /// (the two kernels store hyperedges differently).
    ///
    /// # Panics
    /// Panics if hyperedges or edges were already added.
    pub fn with_kernel(mut self, kernel: BuildKernel) -> Self {
        assert!(
            self.offsets.len() == 1 && self.legacy_queries.is_empty() && self.edges.is_empty(),
            "the build kernel must be selected before adding hyperedges"
        );
        self.kernel = kernel;
        self
    }

    /// Sets the number of worker threads the Flat kernel's CSR passes may use (default 1).
    /// The built graph is bit-identical for every worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Adds one query (hyperedge) with the given data-vertex pins. Returns the id assigned to
    /// the new query.
    pub fn add_query<I>(&mut self, pins: I) -> QueryId
    where
        I: IntoIterator<Item = DataId>,
    {
        match self.kernel {
            BuildKernel::Flat => {
                let start = self.pins.len();
                self.pins.extend(pins);
                self.finish_arena_query(start)
            }
            BuildKernel::Legacy => {
                let pins: Vec<DataId> = pins.into_iter().collect();
                self.push_legacy_query(pins)
            }
        }
    }

    /// Adds one query from a pin slice, appending straight into the flat arena without the
    /// `IntoIterator` indirection — the fast path for hot callers (generators, parsers) that
    /// accumulate pins in a reusable scratch buffer.
    pub fn add_query_slice(&mut self, pins: &[DataId]) -> QueryId {
        match self.kernel {
            BuildKernel::Flat => {
                let start = self.pins.len();
                self.pins.extend_from_slice(pins);
                self.finish_arena_query(start)
            }
            BuildKernel::Legacy => self.push_legacy_query(pins.to_vec()),
        }
    }

    /// Canonicalizes the pins appended since `start` (sort + dedup unless disabled), tracks
    /// the data-vertex count, and seals the hyperedge.
    fn finish_arena_query(&mut self, start: usize) -> QueryId {
        if self.dedup_pins {
            let tail = &mut self.pins[start..];
            tail.sort_unstable();
            // In-place dedup of the tail (Vec::dedup only covers the whole vector).
            let mut write = start;
            for read in start..self.pins.len() {
                if write == start || self.pins[read] != self.pins[write - 1] {
                    self.pins[write] = self.pins[read];
                    write += 1;
                }
            }
            self.pins.truncate(write);
            // Sorted tail: the maximum pin is the last one.
            if let Some(&last) = self.pins.last() {
                if self.pins.len() > start && (last as usize) >= self.num_data {
                    self.num_data = last as usize + 1;
                }
            }
        } else {
            for &v in &self.pins[start..] {
                if (v as usize) >= self.num_data {
                    self.num_data = v as usize + 1;
                }
            }
        }
        let id = (self.offsets.len() - 1) as QueryId;
        self.offsets.push(self.pins.len() as u64);
        id
    }

    /// The original (pre-arena) `add_query` body, verbatim: collect, sort, dedup, push one
    /// `Vec` per hyperedge.
    fn push_legacy_query(&mut self, mut pins: Vec<DataId>) -> QueryId {
        if self.dedup_pins {
            pins.sort_unstable();
            pins.dedup();
        }
        for &v in &pins {
            if (v as usize) >= self.num_data {
                self.num_data = v as usize + 1;
            }
        }
        let id = self.legacy_queries.len() as QueryId;
        self.legacy_queries.push(pins);
        id
    }

    /// Adds one `(query, data)` edge pair. Query ids are taken literally — query ids that
    /// never appear become empty hyperedges, and the final query count is at least `q + 1`.
    pub fn add_edge(&mut self, q: QueryId, v: DataId) {
        if (q as usize) >= self.edge_num_queries {
            self.edge_num_queries = q as usize + 1;
        }
        if (v as usize) >= self.num_data {
            self.num_data = v as usize + 1;
        }
        self.edges.push((q, v));
    }

    /// Streams a batch of `(query, data)` edge pairs into the edge arena.
    pub fn add_edges<I>(&mut self, edges: I)
    where
        I: IntoIterator<Item = (QueryId, DataId)>,
    {
        for (q, v) in edges {
            self.add_edge(q, v);
        }
    }

    /// Ensures that the built graph has at least `n` data vertices even if some of them are
    /// isolated (not referenced by any query).
    pub fn ensure_data_count(&mut self, n: usize) {
        if n > self.num_data {
            self.num_data = n;
        }
    }

    /// Attaches explicit data-vertex weights; the vector length must match the final data
    /// count at `build()` time.
    pub fn set_data_weights(&mut self, weights: Vec<u32>) {
        self.ensure_data_count(weights.len());
        self.data_weights = Some(weights);
    }

    /// Number of queries added so far (hyperedges plus the span implied by edge-mode ids).
    pub fn num_queries(&self) -> usize {
        let arena = match self.kernel {
            BuildKernel::Flat => self.offsets.len() - 1,
            BuildKernel::Legacy => self.legacy_queries.len(),
        };
        arena.max(self.edge_num_queries)
    }

    /// Number of data vertices implied so far.
    pub fn num_data(&self) -> usize {
        self.num_data
    }

    /// Total number of pins added so far (hyperedge pins after in-hyperedge dedup, plus raw
    /// edge pairs — edge pairs are deduplicated only at build time).
    pub fn num_pins(&self) -> usize {
        let arena = match self.kernel {
            BuildKernel::Flat => self.pins.len(),
            BuildKernel::Legacy => self.legacy_queries.iter().map(Vec::len).sum(),
        };
        arena + self.edges.len()
    }

    /// Finalizes the builder into an immutable [`BipartiteGraph`].
    ///
    /// # Errors
    /// Returns [`GraphError::PartitionLengthMismatch`] if explicit weights were supplied whose
    /// length differs from the final number of data vertices.
    pub fn build(self) -> Result<BipartiteGraph> {
        let _span = shp_telemetry::Span::enter("ingest/csr_build");
        if let Some(w) = &self.data_weights {
            if w.len() != self.num_data {
                return Err(GraphError::PartitionLengthMismatch {
                    got: w.len(),
                    expected: self.num_data,
                });
            }
        }
        match self.kernel {
            BuildKernel::Flat => self.build_flat(),
            BuildKernel::Legacy => self.build_legacy(),
        }
    }

    /// Flat kernel: the arena already *is* the query-side CSR when no edge pairs were added;
    /// otherwise one counting sort merges both arenas. The data side is always a two-pass
    /// counting sort (degree histogram → prefix sum → scatter), parallelized over `workers`.
    fn build_flat(self) -> Result<BipartiteGraph> {
        let arena_queries = self.offsets.len() - 1;
        let num_queries = arena_queries.max(self.edge_num_queries);
        let num_data = self.num_data;
        let workers = self.workers;

        let (query_offsets, query_adjacency) = if self.edges.is_empty() {
            // Zero-copy: hyperedges were canonicalized at add time, so the arena is final.
            let mut offsets = self.offsets;
            offsets.resize(num_queries + 1, *offsets.last().expect("starts at [0]"));
            (offsets, self.pins)
        } else {
            merge_arena_and_edges(
                num_queries,
                &self.offsets,
                &self.pins,
                &self.edges,
                self.dedup_pins,
                workers,
            )
        };

        let (data_offsets, data_adjacency) = transpose(
            num_queries,
            num_data,
            &query_offsets,
            &query_adjacency,
            workers,
        );

        Ok(BipartiteGraph::from_csr(
            query_offsets,
            query_adjacency,
            data_offsets,
            data_adjacency,
            self.data_weights,
        ))
    }

    /// Legacy kernel: the original build, verbatim — per-query `Vec`s concatenated
    /// sequentially, then a sequential counting sort for the data side.
    fn build_legacy(self) -> Result<BipartiteGraph> {
        let mut queries = self.legacy_queries;
        let num_queries = queries.len().max(self.edge_num_queries);
        queries.resize(num_queries, Vec::new());
        if !self.edges.is_empty() {
            let mut touched = vec![false; num_queries];
            for &(q, v) in &self.edges {
                queries[q as usize].push(v);
                touched[q as usize] = true;
            }
            if self.dedup_pins {
                for (q, pins) in queries.iter_mut().enumerate() {
                    if touched[q] {
                        pins.sort_unstable();
                        pins.dedup();
                    }
                }
            }
        }
        let num_data = self.num_data;

        // Query-side CSR.
        let mut query_offsets: Vec<u64> = Vec::with_capacity(num_queries + 1);
        query_offsets.push(0);
        let total_pins: usize = queries.iter().map(|q| q.len()).sum();
        let mut query_adjacency: Vec<DataId> = Vec::with_capacity(total_pins);
        for pins in &queries {
            query_adjacency.extend_from_slice(pins);
            query_offsets.push(query_adjacency.len() as u64);
        }

        // Data-side CSR via counting sort over the query adjacency.
        let mut data_degree = vec![0u64; num_data];
        for &v in &query_adjacency {
            data_degree[v as usize] += 1;
        }
        let mut data_offsets = vec![0u64; num_data + 1];
        for v in 0..num_data {
            data_offsets[v + 1] = data_offsets[v] + data_degree[v];
        }
        let mut cursor = data_offsets.clone();
        let mut data_adjacency = vec![0 as QueryId; total_pins];
        for (q, pins) in queries.iter().enumerate() {
            for &v in pins {
                let pos = cursor[v as usize];
                data_adjacency[pos as usize] = q as QueryId;
                cursor[v as usize] = pos + 1;
            }
        }

        Ok(BipartiteGraph::from_csr(
            query_offsets,
            query_adjacency,
            data_offsets,
            data_adjacency,
            self.data_weights,
        ))
    }

    /// Convenience constructor: builds a graph from a slice of hyperedges.
    pub fn from_hyperedges<I, P>(hyperedges: I) -> Result<BipartiteGraph>
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = DataId>,
    {
        let mut builder = GraphBuilder::new();
        for pins in hyperedges {
            builder.add_query(pins);
        }
        builder.build()
    }

    /// Convenience constructor: builds a graph from `(query, data)` edge pairs. Query ids are
    /// taken literally (queries with no edges become empty hyperedges).
    pub fn from_edge_list(edges: &[(QueryId, DataId)]) -> Result<BipartiteGraph> {
        let mut builder = GraphBuilder::new();
        builder.reserve_edges(edges.len());
        builder.add_edges(edges.iter().copied());
        builder.build()
    }
}

/// Counting sort by query id over the hyperedge arena plus the edge arena: per-query degree
/// histogram → prefix sum → scatter (arena pins first, then edge pins in insertion order),
/// then per-query canonicalization (sort + dedup) of every query that received edge pins.
fn merge_arena_and_edges(
    num_queries: usize,
    offsets: &[u64],
    pins: &[DataId],
    edges: &[(QueryId, DataId)],
    dedup_pins: bool,
    workers: usize,
) -> (Vec<u64>, Vec<DataId>) {
    let arena_queries = offsets.len() - 1;
    let mut degree = vec![0u64; num_queries];
    for q in 0..arena_queries {
        degree[q] = offsets[q + 1] - offsets[q];
    }
    let mut touched = vec![false; num_queries];
    for &(q, _) in edges {
        degree[q as usize] += 1;
        touched[q as usize] = true;
    }
    let mut query_offsets = vec![0u64; num_queries + 1];
    for q in 0..num_queries {
        query_offsets[q + 1] = query_offsets[q] + degree[q];
    }
    let total = *query_offsets.last().expect("offsets are non-empty") as usize;
    let mut adjacency = vec![0 as DataId; total];
    let mut cursor: Vec<u64> = query_offsets[..num_queries].to_vec();
    for q in 0..arena_queries {
        let span = &pins[offsets[q] as usize..offsets[q + 1] as usize];
        let at = cursor[q] as usize;
        adjacency[at..at + span.len()].copy_from_slice(span);
        cursor[q] += span.len() as u64;
    }
    for &(q, v) in edges {
        let at = cursor[q as usize] as usize;
        adjacency[at] = v;
        cursor[q as usize] += 1;
    }

    if dedup_pins {
        // Sort the touched queries' spans in place, in parallel over query ranges (each part
        // owns a consecutive adjacency slice aligned on query boundaries)...
        let query_ranges = rayon::pool::chunk_ranges(num_queries, workers);
        if query_ranges.len() > 1 && adjacency.len() >= 1 << 14 {
            let part_sizes: Vec<usize> = query_ranges
                .iter()
                .map(|r| (query_offsets[r.end] - query_offsets[r.start]) as usize)
                .collect();
            rayon::pool::for_each_part_mut(&mut adjacency, &part_sizes, |part, slice| {
                let range = &query_ranges[part];
                let base = query_offsets[range.start];
                for q in range.clone() {
                    if touched[q] {
                        let lo = (query_offsets[q] - base) as usize;
                        let hi = (query_offsets[q + 1] - base) as usize;
                        slice[lo..hi].sort_unstable();
                    }
                }
            });
        } else {
            for q in 0..num_queries {
                if touched[q] {
                    let lo = query_offsets[q] as usize;
                    let hi = query_offsets[q + 1] as usize;
                    adjacency[lo..hi].sort_unstable();
                }
            }
        }
        // ...then compact duplicates in one sequential left-to-right pass (the write cursor
        // never overtakes the read cursor), rebuilding the offsets.
        let mut write = 0usize;
        let mut new_offsets = vec![0u64; num_queries + 1];
        for q in 0..num_queries {
            let lo = query_offsets[q] as usize;
            let hi = query_offsets[q + 1] as usize;
            let row_start = write;
            for read in lo..hi {
                if write == row_start || adjacency[read] != adjacency[write - 1] {
                    adjacency[write] = adjacency[read];
                    write += 1;
                }
            }
            new_offsets[q + 1] = write as u64;
        }
        adjacency.truncate(write);
        (new_offsets, adjacency)
    } else {
        (query_offsets, adjacency)
    }
}

/// Builds the data→query CSR transpose of a query→data CSR with a two-pass counting sort.
/// With `workers > 1`, the degree histogram merges per-chunk histograms in chunk order and the
/// scatter partitions the **output** by data-id range — each worker scans the shared query
/// adjacency and writes only the rows of its own range, so workers share no mutable state and
/// the result is bit-identical to the sequential scatter.
///
/// Cost note: partitioning the output means every worker re-reads the whole (shared,
/// cache-friendly) query adjacency — `O(workers × pins)` reads for `O(pins)` partitioned
/// writes. The read-optimal alternative (partition the *input* and scatter through a
/// chunk×vertex offset matrix) needs scatter-writes to disjoint but non-contiguous slots,
/// which safe Rust cannot hand to workers without per-worker output buffers and a merge
/// pass; under `forbid(unsafe_code)` the output-partitioned form is the better trade until
/// profiling on real multi-core hardware says otherwise.
fn transpose(
    num_queries: usize,
    num_data: usize,
    query_offsets: &[u64],
    query_adjacency: &[DataId],
    workers: usize,
) -> (Vec<u64>, Vec<QueryId>) {
    let total = query_adjacency.len();

    // Pass 1: data-degree histogram.
    let mut degree: Vec<u64> = if workers > 1 && total >= 1 << 14 {
        let partials = rayon::pool::run_chunks(total, workers, |range| {
            let mut local = vec![0u64; num_data];
            for &v in &query_adjacency[range] {
                local[v as usize] += 1;
            }
            local
        });
        let mut merged = vec![0u64; num_data];
        for partial in partials {
            for (slot, add) in merged.iter_mut().zip(partial) {
                *slot += add;
            }
        }
        merged
    } else {
        let mut local = vec![0u64; num_data];
        for &v in query_adjacency {
            local[v as usize] += 1;
        }
        local
    };

    // Prefix sum.
    let mut data_offsets = vec![0u64; num_data + 1];
    for v in 0..num_data {
        data_offsets[v + 1] = data_offsets[v] + degree[v];
    }

    // Pass 2: scatter, in ascending query order within every data vertex.
    let mut data_adjacency = vec![0 as QueryId; total];
    let data_ranges = rayon::pool::chunk_ranges(num_data, workers);
    if data_ranges.len() > 1 && total >= 1 << 14 {
        let part_sizes: Vec<usize> = data_ranges
            .iter()
            .map(|r| (data_offsets[r.end] - data_offsets[r.start]) as usize)
            .collect();
        rayon::pool::for_each_part_mut(&mut data_adjacency, &part_sizes, |part, out| {
            let range = &data_ranges[part];
            let base = data_offsets[range.start];
            let mut cursor: Vec<u64> = data_offsets[range.start..range.end]
                .iter()
                .map(|&o| o - base)
                .collect();
            let lo = range.start as u64;
            let hi = range.end as u64;
            for q in 0..num_queries {
                let span =
                    &query_adjacency[query_offsets[q] as usize..query_offsets[q + 1] as usize];
                for &v in span {
                    if (v as u64) >= lo && (v as u64) < hi {
                        let local = (v as usize) - range.start;
                        out[cursor[local] as usize] = q as QueryId;
                        cursor[local] += 1;
                    }
                }
            }
        });
    } else {
        // Reuse the histogram vector as the scatter cursor.
        degree.copy_from_slice(&data_offsets[..num_data]);
        let cursor = &mut degree;
        for q in 0..num_queries {
            let span = &query_adjacency[query_offsets[q] as usize..query_offsets[q + 1] as usize];
            for &v in span {
                let pos = cursor[v as usize];
                data_adjacency[pos as usize] = q as QueryId;
                cursor[v as usize] = pos + 1;
            }
        }
    }
    (data_offsets, data_adjacency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_queries(), 0);
        assert_eq!(g.num_data(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn default_is_equivalent_to_new() {
        let mut b = GraphBuilder::default();
        assert_eq!(b.num_queries(), 0);
        b.add_query([0u32, 1]);
        let g = b.build().unwrap();
        assert_eq!(g.num_queries(), 1);
        assert_eq!(g.num_data(), 2);
    }

    #[test]
    fn duplicate_pins_are_removed() {
        let mut b = GraphBuilder::new();
        b.add_query([1u32, 1, 2, 2, 2]);
        let g = b.build().unwrap();
        assert_eq!(g.query_neighbors(0), &[1, 2]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn without_dedup_keeps_duplicates() {
        let mut b = GraphBuilder::new().without_dedup();
        b.add_query([1u32, 1, 2]);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn ensure_data_count_creates_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1]);
        b.ensure_data_count(10);
        let g = b.build().unwrap();
        assert_eq!(g.num_data(), 10);
        assert_eq!(g.data_degree(9), 0);
    }

    #[test]
    fn weights_must_match_data_count() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 2]);
        b.set_data_weights(vec![5, 5]); // ensure_data_count keeps 3 from the query
        assert!(b.build().is_err());
    }

    #[test]
    fn from_hyperedges_matches_incremental() {
        let g1 = GraphBuilder::from_hyperedges(vec![vec![0u32, 1], vec![1, 2, 3]]).unwrap();
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1]);
        b.add_query([1u32, 2, 3]);
        let g2 = b.build().unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn from_edge_list_groups_by_query() {
        let g = GraphBuilder::from_edge_list(&[(0, 5), (1, 2), (0, 3), (2, 0)]).unwrap();
        assert_eq!(g.num_queries(), 3);
        assert_eq!(g.query_neighbors(0), &[3, 5]);
        assert_eq!(g.query_neighbors(1), &[2]);
        assert_eq!(g.query_neighbors(2), &[0]);
        assert_eq!(g.num_data(), 6);
    }

    #[test]
    fn builder_counts_are_tracked() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.num_queries(), 0);
        b.add_query([0u32, 4]);
        b.add_query([1u32]);
        assert_eq!(b.num_queries(), 2);
        assert_eq!(b.num_data(), 5);
        assert_eq!(b.num_pins(), 3);
    }

    #[test]
    fn data_side_adjacency_is_sorted_by_query_id() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1]);
        b.add_query([0u32, 2]);
        b.add_query([0u32, 1, 2]);
        let g = b.build().unwrap();
        // Counting sort emits queries in insertion order, which is ascending query id.
        assert_eq!(g.data_neighbors(0), &[0, 1, 2]);
        assert_eq!(g.data_neighbors(1), &[0, 2]);
        assert_eq!(g.data_neighbors(2), &[1, 2]);
    }

    #[test]
    fn add_query_slice_matches_add_query() {
        let mut a = GraphBuilder::new();
        let mut b = GraphBuilder::new();
        for pins in [[5u32, 3, 3, 0].as_slice(), &[2, 2], &[7]] {
            a.add_query(pins.iter().copied());
            b.add_query_slice(pins);
        }
        assert_eq!(a.build().unwrap(), b.build().unwrap());
    }

    #[test]
    fn edge_mode_and_query_mode_pins_merge_per_query() {
        // Query 0 gets pins from both shapes; query 2 only from edges; query 1 only arena.
        let mut b = GraphBuilder::new();
        b.add_query([4u32, 1]);
        b.add_query([3u32]);
        b.add_edge(0, 2);
        b.add_edge(2, 0);
        b.add_edge(0, 1); // duplicate with the arena pin — deduplicated at build
        let g = b.build().unwrap();
        assert_eq!(g.num_queries(), 3);
        assert_eq!(g.query_neighbors(0), &[1, 2, 4]);
        assert_eq!(g.query_neighbors(1), &[3]);
        assert_eq!(g.query_neighbors(2), &[0]);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn edge_mode_without_dedup_keeps_insertion_order_after_arena_pins() {
        let mut b = GraphBuilder::new().without_dedup();
        b.add_query([4u32, 1]);
        b.add_edge(0, 4);
        b.add_edge(0, 0);
        let g = b.build().unwrap();
        assert_eq!(g.query_neighbors(0), &[4, 1, 4, 0]);
    }

    #[test]
    fn legacy_kernel_is_bit_identical_to_flat_for_all_ingestion_shapes() {
        let hyperedges: Vec<Vec<u32>> = vec![vec![9, 2, 2, 0], vec![5], vec![1, 8, 3, 3]];
        let edges: Vec<(u32, u32)> = vec![(5, 1), (0, 9), (0, 4), (3, 3), (5, 1), (5, 0)];
        for dedup in [true, false] {
            for workers in [1usize, 2, 4, 8] {
                let mut flat = GraphBuilder::new().with_workers(workers);
                let mut legacy = GraphBuilder::new().with_kernel(BuildKernel::Legacy);
                if !dedup {
                    flat = flat.without_dedup();
                    legacy = legacy.without_dedup();
                }
                for pins in &hyperedges {
                    flat.add_query_slice(pins);
                    legacy.add_query_slice(pins);
                }
                flat.add_edges(edges.iter().copied());
                legacy.add_edges(edges.iter().copied());
                flat.set_data_weights((0..10).collect());
                legacy.set_data_weights((0..10).collect());
                assert_eq!(
                    flat.build().unwrap(),
                    legacy.build().unwrap(),
                    "dedup={dedup} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_transpose_matches_sequential_on_a_large_graph() {
        // Large enough to clear the parallel threshold (2^14 pins).
        let pins_of = |seed: u64, q: u64| -> Vec<u32> {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(q);
            (0..6)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % 2_000) as u32
                })
                .collect()
        };
        let mut baseline = GraphBuilder::new().with_workers(1);
        let mut parallel = GraphBuilder::new().with_workers(4);
        for q in 0..4_000u64 {
            baseline.add_query(pins_of(7, q));
            parallel.add_query(pins_of(7, q));
        }
        assert_eq!(baseline.build().unwrap(), parallel.build().unwrap());
    }

    #[test]
    #[should_panic(expected = "kernel must be selected before")]
    fn kernel_cannot_change_after_adding_queries() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32]);
        let _ = b.with_kernel(BuildKernel::Legacy);
    }

    #[test]
    #[should_panic(expected = "kernel must be selected before")]
    fn kernel_cannot_change_after_adding_an_empty_query() {
        // An empty hyperedge leaves the pin arena empty but has already been assigned an id;
        // switching kernels afterwards would silently drop it.
        let mut b = GraphBuilder::new();
        b.add_query(std::iter::empty::<u32>());
        let _ = b.with_kernel(BuildKernel::Legacy);
    }

    #[test]
    fn capacity_hints_do_not_change_results() {
        let mut hinted = GraphBuilder::with_capacity(3, 8);
        hinted.reserve_pins(6);
        hinted.reserve_edges(2);
        let mut plain = GraphBuilder::new();
        for b in [&mut hinted, &mut plain] {
            b.add_query([0u32, 7]);
            b.add_query([1u32, 2, 3]);
            b.add_edge(2, 5);
        }
        plain.ensure_data_count(8);
        assert_eq!(hinted.build().unwrap(), plain.build().unwrap());
    }
}
