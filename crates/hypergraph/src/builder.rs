//! Incremental construction of [`BipartiteGraph`]s.

use crate::bipartite::{BipartiteGraph, DataId, QueryId};
use crate::error::{GraphError, Result};

/// Builds a [`BipartiteGraph`] from hyperedges (queries) added one at a time.
///
/// The builder stores hyperedges as supplied, deduplicates pins inside each hyperedge, and
/// on [`GraphBuilder::build`] produces CSR adjacency in both directions. Data-vertex ids are
/// taken literally: adding a query containing data id `v` implies the graph has at least
/// `v + 1` data vertices.
///
/// # Example
///
/// ```
/// use shp_hypergraph::GraphBuilder;
///
/// let mut builder = GraphBuilder::new();
/// builder.add_query([0, 1, 2]);
/// builder.add_query([2, 3]);
/// let graph = builder.build().unwrap();
/// assert_eq!(graph.num_queries(), 2);
/// assert_eq!(graph.num_data(), 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    /// Pins of each hyperedge added so far.
    queries: Vec<Vec<DataId>>,
    /// Largest data id seen plus one.
    num_data: usize,
    /// Optional explicit data weights.
    data_weights: Option<Vec<u32>>,
    /// Whether duplicate pins within a hyperedge should be removed (default true).
    dedup_pins: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder {
            queries: Vec::new(),
            num_data: 0,
            data_weights: None,
            dedup_pins: true,
        }
    }

    /// Creates an empty builder with capacity hints.
    pub fn with_capacity(num_queries: usize, num_data: usize) -> Self {
        GraphBuilder {
            queries: Vec::with_capacity(num_queries),
            num_data,
            data_weights: None,
            dedup_pins: true,
        }
    }

    /// Disables in-hyperedge pin deduplication (useful when the caller guarantees uniqueness
    /// and wants to avoid the sort).
    pub fn without_dedup(mut self) -> Self {
        self.dedup_pins = false;
        self
    }

    /// Adds one query (hyperedge) with the given data-vertex pins. Returns the id assigned to
    /// the new query.
    pub fn add_query<I>(&mut self, pins: I) -> QueryId
    where
        I: IntoIterator<Item = DataId>,
    {
        let mut pins: Vec<DataId> = pins.into_iter().collect();
        if self.dedup_pins {
            pins.sort_unstable();
            pins.dedup();
        }
        for &v in &pins {
            if (v as usize) >= self.num_data {
                self.num_data = v as usize + 1;
            }
        }
        let id = self.queries.len() as QueryId;
        self.queries.push(pins);
        id
    }

    /// Ensures that the built graph has at least `n` data vertices even if some of them are
    /// isolated (not referenced by any query).
    pub fn ensure_data_count(&mut self, n: usize) {
        if n > self.num_data {
            self.num_data = n;
        }
    }

    /// Attaches explicit data-vertex weights; the vector length must match the final data
    /// count at `build()` time.
    pub fn set_data_weights(&mut self, weights: Vec<u32>) {
        self.ensure_data_count(weights.len());
        self.data_weights = Some(weights);
    }

    /// Number of queries added so far.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of data vertices implied so far.
    pub fn num_data(&self) -> usize {
        self.num_data
    }

    /// Total number of pins added so far.
    pub fn num_pins(&self) -> usize {
        self.queries.iter().map(|q| q.len()).sum()
    }

    /// Finalizes the builder into an immutable [`BipartiteGraph`].
    ///
    /// # Errors
    /// Returns [`GraphError::PartitionLengthMismatch`] if explicit weights were supplied whose
    /// length differs from the final number of data vertices.
    pub fn build(self) -> Result<BipartiteGraph> {
        let num_queries = self.queries.len();
        let num_data = self.num_data;
        if let Some(w) = &self.data_weights {
            if w.len() != num_data {
                return Err(GraphError::PartitionLengthMismatch {
                    got: w.len(),
                    expected: num_data,
                });
            }
        }

        // Query-side CSR.
        let mut query_offsets: Vec<u64> = Vec::with_capacity(num_queries + 1);
        query_offsets.push(0);
        let total_pins: usize = self.queries.iter().map(|q| q.len()).sum();
        let mut query_adjacency: Vec<DataId> = Vec::with_capacity(total_pins);
        for pins in &self.queries {
            query_adjacency.extend_from_slice(pins);
            query_offsets.push(query_adjacency.len() as u64);
        }

        // Data-side CSR via counting sort over the query adjacency.
        let mut data_degree = vec![0u64; num_data];
        for &v in &query_adjacency {
            data_degree[v as usize] += 1;
        }
        let mut data_offsets = vec![0u64; num_data + 1];
        for v in 0..num_data {
            data_offsets[v + 1] = data_offsets[v] + data_degree[v];
        }
        let mut cursor = data_offsets.clone();
        let mut data_adjacency = vec![0 as QueryId; total_pins];
        for (q, pins) in self.queries.iter().enumerate() {
            for &v in pins {
                let pos = cursor[v as usize];
                data_adjacency[pos as usize] = q as QueryId;
                cursor[v as usize] = pos + 1;
            }
        }

        Ok(BipartiteGraph::from_csr(
            query_offsets,
            query_adjacency,
            data_offsets,
            data_adjacency,
            self.data_weights,
        ))
    }

    /// Convenience constructor: builds a graph from a slice of hyperedges.
    pub fn from_hyperedges<I, P>(hyperedges: I) -> Result<BipartiteGraph>
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = DataId>,
    {
        let mut builder = GraphBuilder::new();
        for pins in hyperedges {
            builder.add_query(pins);
        }
        builder.build()
    }

    /// Convenience constructor: builds a graph from `(query, data)` edge pairs. Query ids are
    /// taken literally (queries with no edges become empty hyperedges).
    pub fn from_edge_list(edges: &[(QueryId, DataId)]) -> Result<BipartiteGraph> {
        let num_queries = edges
            .iter()
            .map(|&(q, _)| q as usize + 1)
            .max()
            .unwrap_or(0);
        let mut pins: Vec<Vec<DataId>> = vec![Vec::new(); num_queries];
        for &(q, v) in edges {
            pins[q as usize].push(v);
        }
        let mut builder = GraphBuilder::with_capacity(num_queries, 0);
        for p in pins {
            builder.add_query(p);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_queries(), 0);
        assert_eq!(g.num_data(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_pins_are_removed() {
        let mut b = GraphBuilder::new();
        b.add_query([1u32, 1, 2, 2, 2]);
        let g = b.build().unwrap();
        assert_eq!(g.query_neighbors(0), &[1, 2]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn without_dedup_keeps_duplicates() {
        let mut b = GraphBuilder::new().without_dedup();
        b.add_query([1u32, 1, 2]);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn ensure_data_count_creates_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1]);
        b.ensure_data_count(10);
        let g = b.build().unwrap();
        assert_eq!(g.num_data(), 10);
        assert_eq!(g.data_degree(9), 0);
    }

    #[test]
    fn weights_must_match_data_count() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 2]);
        b.set_data_weights(vec![5, 5]); // ensure_data_count keeps 3 from the query
        assert!(b.build().is_err());
    }

    #[test]
    fn from_hyperedges_matches_incremental() {
        let g1 = GraphBuilder::from_hyperedges(vec![vec![0u32, 1], vec![1, 2, 3]]).unwrap();
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1]);
        b.add_query([1u32, 2, 3]);
        let g2 = b.build().unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn from_edge_list_groups_by_query() {
        let g = GraphBuilder::from_edge_list(&[(0, 5), (1, 2), (0, 3), (2, 0)]).unwrap();
        assert_eq!(g.num_queries(), 3);
        assert_eq!(g.query_neighbors(0), &[3, 5]);
        assert_eq!(g.query_neighbors(1), &[2]);
        assert_eq!(g.query_neighbors(2), &[0]);
        assert_eq!(g.num_data(), 6);
    }

    #[test]
    fn builder_counts_are_tracked() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.num_queries(), 0);
        b.add_query([0u32, 4]);
        b.add_query([1u32]);
        assert_eq!(b.num_queries(), 2);
        assert_eq!(b.num_data(), 5);
        assert_eq!(b.num_pins(), 3);
    }

    #[test]
    fn data_side_adjacency_is_sorted_by_query_id() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1]);
        b.add_query([0u32, 2]);
        b.add_query([0u32, 1, 2]);
        let g = b.build().unwrap();
        // Counting sort emits queries in insertion order, which is ascending query id.
        assert_eq!(g.data_neighbors(0), &[0, 1, 2]);
        assert_eq!(g.data_neighbors(1), &[0, 2]);
        assert_eq!(g.data_neighbors(2), &[1, 2]);
    }
}
