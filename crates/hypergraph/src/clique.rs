//! The clique-net graph of Lemma 2.
//!
//! For a bipartite graph `G = (Q ∪ D, E)` the clique-net graph is the weighted unipartite
//! graph on the data vertices where the weight of edge `(u, v)` is the number of queries that
//! contain both `u` and `v`. Lemma 2 of the SHP paper shows that optimizing p-fanout with
//! `p → 0` is equivalent to minimizing weighted edge-cut on this graph; the classical
//! clique-net heuristic materializes it (with sampling to bound the quadratic blow-up) and
//! runs a graph partitioner on it.
//!
//! The SHP algorithm never needs the materialized graph (it optimizes the p→0 objective
//! directly), but the baseline multilevel partitioner and several tests and benchmarks do.

use crate::bipartite::{BipartiteGraph, DataId};
use std::collections::HashMap;

/// A weighted unipartite graph over data vertices in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueNetGraph {
    /// CSR offsets, length `num_vertices + 1`.
    offsets: Vec<u64>,
    /// Neighbor ids, concatenated.
    neighbors: Vec<DataId>,
    /// Edge weights, parallel to `neighbors`.
    weights: Vec<u32>,
}

impl CliqueNetGraph {
    /// Builds the clique-net graph of `graph`, sequentially.
    ///
    /// Hyperedges larger than `max_hyperedge_size` are skipped (the standard sampling guard
    /// against the `Ω(n²)` blow-up described in Section 3.1); pass `usize::MAX` to include all
    /// hyperedges.
    pub fn build(graph: &BipartiteGraph, max_hyperedge_size: usize) -> Self {
        Self::build_with_workers(graph, max_hyperedge_size, 1)
    }

    /// Builds the clique-net graph over `workers` threads.
    ///
    /// The pair accumulation is parallelized over the *smaller endpoint*: worker `w` owns a
    /// contiguous range of data vertices and, for each owned vertex `a`, counts the co-pins
    /// `b > a` across `a`'s queries. Every unordered pair is therefore counted by exactly one
    /// worker with no shared state, the per-vertex accumulators are sorted, and the CSR is
    /// laid out from the chunk-ordered accumulator list — so the result is bit-identical to
    /// the sequential build for every worker count.
    pub fn build_with_workers(
        graph: &BipartiteGraph,
        max_hyperedge_size: usize,
        workers: usize,
    ) -> Self {
        let n = graph.num_data();
        let adj: Vec<Vec<(DataId, u32)>> = rayon::pool::map_index(n, workers, |a| {
            let a = a as DataId;
            let mut m: HashMap<DataId, u32> = HashMap::new();
            for &q in graph.data_neighbors(a) {
                let pins = graph.query_neighbors(q);
                if pins.len() < 2 || pins.len() > max_hyperedge_size {
                    continue;
                }
                for &b in pins {
                    if b > a {
                        *m.entry(b).or_insert(0) += 1;
                    }
                }
            }
            // Sort the accumulator: HashMap iteration order is randomized per instance, and
            // the CSR layout (hence neighbor iteration order, hence downstream tie-breaking)
            // must be a pure function of the input graph.
            let mut entries: Vec<(DataId, u32)> = m.into_iter().collect();
            entries.sort_unstable_by_key(|&(b, _)| b);
            entries
        });

        // Symmetrize into CSR.
        let mut degree = vec![0u64; n];
        for (a, nbrs) in adj.iter().enumerate() {
            for &(b, _) in nbrs {
                degree[a] += 1;
                degree[b as usize] += 1;
            }
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let total = offsets[n] as usize;
        let mut neighbors = vec![0 as DataId; total];
        let mut weights = vec![0u32; total];
        let mut cursor: Vec<u64> = offsets.clone();
        for (a, nbrs) in adj.iter().enumerate() {
            for &(b, w) in nbrs {
                let pa = cursor[a] as usize;
                neighbors[pa] = b;
                weights[pa] = w;
                cursor[a] += 1;
                let pb = cursor[b as usize] as usize;
                neighbors[pb] = a as DataId;
                weights[pb] = w;
                cursor[b as usize] += 1;
            }
        }
        CliqueNetGraph {
            offsets,
            neighbors,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) neighbor entries; every undirected edge appears twice.
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of undirected weighted edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Neighbors of vertex `v` with their weights.
    pub fn neighbors(&self, v: DataId) -> impl Iterator<Item = (DataId, u32)> + '_ {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        self.neighbors[start..end]
            .iter()
            .copied()
            .zip(self.weights[start..end].iter().copied())
    }

    /// Weighted degree of vertex `v` (sum of incident edge weights).
    pub fn weighted_degree(&self, v: DataId) -> u64 {
        self.neighbors(v).map(|(_, w)| w as u64).sum()
    }

    /// Total weight over all undirected edges.
    pub fn total_edge_weight(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum::<u64>() / 2
    }

    /// Weighted edge-cut of a bucket assignment over this graph.
    ///
    /// # Panics
    /// Panics if `assignment.len() != num_vertices()`.
    pub fn edge_cut(&self, assignment: &[u32]) -> u64 {
        assert_eq!(assignment.len(), self.num_vertices());
        let mut cut = 0u64;
        for v in 0..self.num_vertices() as DataId {
            for (u, w) in self.neighbors(v) {
                if u > v && assignment[u as usize] != assignment[v as usize] {
                    cut += w as u64;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn figure1() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        b.build().unwrap()
    }

    #[test]
    fn clique_weights_count_shared_queries() {
        let g = figure1();
        let c = CliqueNetGraph::build(&g, usize::MAX);
        assert_eq!(c.num_vertices(), 6);
        // Vertices 0 and 1 share two queries.
        let w01 = c.neighbors(0).find(|&(u, _)| u == 1).map(|(_, w)| w);
        assert_eq!(w01, Some(2));
        // Vertices 0 and 4 share none.
        assert!(c.neighbors(0).all(|(u, _)| u != 4));
        // Each undirected edge appears once from each side with the same weight.
        let w10 = c.neighbors(1).find(|&(u, _)| u == 0).map(|(_, w)| w);
        assert_eq!(w10, Some(2));
    }

    #[test]
    fn total_edge_weight_equals_sum_of_query_pairs() {
        let g = figure1();
        let c = CliqueNetGraph::build(&g, usize::MAX);
        // Sum over queries of C(|N(q)|, 2): C(3,2)+C(4,2)+C(3,2) = 3+6+3 = 12.
        assert_eq!(c.total_edge_weight(), 12);
    }

    #[test]
    fn max_hyperedge_size_filters_large_edges() {
        let g = figure1();
        let c = CliqueNetGraph::build(&g, 3);
        // The size-4 query is skipped: remaining weight = 3 + 3 = 6.
        assert_eq!(c.total_edge_weight(), 6);
    }

    #[test]
    fn edge_cut_matches_weighted_edge_cut_metric() {
        let g = figure1();
        let c = CliqueNetGraph::build(&g, usize::MAX);
        let assignment = vec![0u32, 0, 0, 1, 1, 1];
        let p = crate::Partition::from_assignment(&g, 2, assignment.clone()).unwrap();
        assert_eq!(
            c.edge_cut(&assignment),
            crate::metrics::weighted_edge_cut(&g, &p)
        );
    }

    #[test]
    fn weighted_degree_sums_incident_weights() {
        let g = figure1();
        let c = CliqueNetGraph::build(&g, usize::MAX);
        // Vertex 0: neighbors 1 (w2), 5 (w1), 2 (w1), 3 (w1) -> total 5.
        assert_eq!(c.weighted_degree(0), 5);
    }

    #[test]
    fn parallel_build_is_identical_for_every_worker_count() {
        // A few hundred vertices with overlapping queries so many pairs repeat.
        let mut b = GraphBuilder::new();
        for q in 0..400u32 {
            let base = (q * 7) % 300;
            b.add_query([base, (base + 1) % 300, (base + 13) % 300, (base + 29) % 300]);
        }
        let g = b.build().unwrap();
        let sequential = CliqueNetGraph::build(&g, usize::MAX);
        for workers in [1usize, 2, 4, 8] {
            let parallel = CliqueNetGraph::build_with_workers(&g, usize::MAX, workers);
            assert_eq!(parallel, sequential, "workers={workers}");
        }
        // The hyperedge-size guard must also be applied identically.
        let filtered = CliqueNetGraph::build(&g, 3);
        assert_eq!(CliqueNetGraph::build_with_workers(&g, 3, 4), filtered);
    }

    #[test]
    fn empty_graph_produces_empty_clique_net() {
        let g = GraphBuilder::new().build().unwrap();
        let c = CliqueNetGraph::build(&g, usize::MAX);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.total_edge_weight(), 0);
    }
}
