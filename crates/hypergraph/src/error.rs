//! Error type shared by graph construction, IO, and partition validation.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced while building, reading, writing, or validating graphs and partitions.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a query vertex id outside the declared range.
    QueryOutOfRange {
        /// Offending query id.
        query: u32,
        /// Number of query vertices in the graph.
        num_queries: u32,
    },
    /// An edge referenced a data vertex id outside the declared range.
    DataOutOfRange {
        /// Offending data id.
        data: u32,
        /// Number of data vertices in the graph.
        num_data: u32,
    },
    /// A partition vector had the wrong length for the graph it is paired with.
    PartitionLengthMismatch {
        /// Length of the supplied assignment vector.
        got: usize,
        /// Number of data vertices expected.
        expected: usize,
    },
    /// A bucket id was not smaller than the declared number of buckets.
    BucketOutOfRange {
        /// Offending bucket id.
        bucket: u32,
        /// Declared number of buckets.
        num_buckets: u32,
    },
    /// The requested number of buckets is invalid (must be at least 1).
    InvalidBucketCount(u32),
    /// The requested imbalance ratio is invalid (must be finite and non-negative).
    InvalidImbalance(f64),
    /// A text file could not be parsed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A binary `.shpb` container was malformed: bad magic, header checksum mismatch,
    /// truncated or oversized sections, or CSR arrays that do not describe a graph.
    Binary {
        /// Human-readable description of the problem.
        message: String,
    },
    /// A binary `.shpb` container was written by a newer format version than this reader
    /// understands.
    UnsupportedVersion {
        /// Version found in the container header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// An underlying IO failure.
    Io(std::io::Error),
    /// The graph is empty where a non-empty graph is required.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::QueryOutOfRange { query, num_queries } => write!(
                f,
                "query vertex id {query} out of range (graph has {num_queries} query vertices)"
            ),
            GraphError::DataOutOfRange { data, num_data } => write!(
                f,
                "data vertex id {data} out of range (graph has {num_data} data vertices)"
            ),
            GraphError::PartitionLengthMismatch { got, expected } => write!(
                f,
                "partition assignment has length {got} but the graph has {expected} data vertices"
            ),
            GraphError::BucketOutOfRange {
                bucket,
                num_buckets,
            } => {
                write!(f, "bucket id {bucket} out of range (k = {num_buckets})")
            }
            GraphError::InvalidBucketCount(k) => {
                write!(f, "invalid bucket count {k}: must be at least 1")
            }
            GraphError::InvalidImbalance(eps) => {
                write!(f, "invalid imbalance ratio {eps}: must be finite and >= 0")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Binary { message } => {
                write!(f, "invalid shpb container: {message}")
            }
            GraphError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported shpb version {found} (this build reads versions up to {supported})"
            ),
            GraphError::Io(err) => write!(f, "io error: {err}"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (
                GraphError::QueryOutOfRange {
                    query: 7,
                    num_queries: 3,
                },
                "query vertex id 7",
            ),
            (
                GraphError::DataOutOfRange {
                    data: 9,
                    num_data: 2,
                },
                "data vertex id 9",
            ),
            (
                GraphError::PartitionLengthMismatch {
                    got: 5,
                    expected: 6,
                },
                "length 5",
            ),
            (
                GraphError::BucketOutOfRange {
                    bucket: 8,
                    num_buckets: 4,
                },
                "bucket id 8",
            ),
            (GraphError::InvalidBucketCount(0), "invalid bucket count 0"),
            (
                GraphError::InvalidImbalance(-0.5),
                "invalid imbalance ratio",
            ),
            (
                GraphError::Parse {
                    line: 3,
                    message: "bad token".into(),
                },
                "line 3",
            ),
            (
                GraphError::Binary {
                    message: "checksum mismatch".into(),
                },
                "checksum mismatch",
            ),
            (
                GraphError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (GraphError::EmptyGraph, "non-empty"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_error_is_wrapped_and_sourced() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err = GraphError::from(io);
        assert!(err.to_string().contains("io error"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
