//! A hyperedge-centric view of the bipartite representation.
//!
//! The SHP paper treats the two representations as entirely equivalent (Figure 1b/1c); this
//! module provides the hypergraph vocabulary (vertices, hyperedges, pins) as a thin wrapper
//! over [`BipartiteGraph`] so callers coming from the hypergraph-partitioning literature can
//! use familiar terminology.

use crate::bipartite::{BipartiteGraph, DataId, QueryId};
use crate::builder::GraphBuilder;
use crate::error::Result;

/// A hypergraph: vertices are data vertices, hyperedges are queries.
///
/// # Example
///
/// ```
/// use shp_hypergraph::Hypergraph;
///
/// let h = Hypergraph::from_hyperedges(vec![vec![0, 1, 2], vec![2, 3]]).unwrap();
/// assert_eq!(h.num_vertices(), 4);
/// assert_eq!(h.num_hyperedges(), 2);
/// assert_eq!(h.pins(0), &[0, 1, 2]);
/// assert_eq!(h.incident_hyperedges(2), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    graph: BipartiteGraph,
}

impl Hypergraph {
    /// Wraps an existing bipartite graph as a hypergraph.
    pub fn from_bipartite(graph: BipartiteGraph) -> Self {
        Hypergraph { graph }
    }

    /// Builds a hypergraph from a list of hyperedges (each a list of vertex ids).
    pub fn from_hyperedges<I, P>(hyperedges: I) -> Result<Self>
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = DataId>,
    {
        Ok(Hypergraph {
            graph: GraphBuilder::from_hyperedges(hyperedges)?,
        })
    }

    /// The underlying bipartite graph.
    pub fn as_bipartite(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Consumes the view, returning the underlying bipartite graph.
    pub fn into_bipartite(self) -> BipartiteGraph {
        self.graph
    }

    /// Number of hypergraph vertices, `|D|`.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_data()
    }

    /// Number of hyperedges, `|Q|`.
    pub fn num_hyperedges(&self) -> usize {
        self.graph.num_queries()
    }

    /// Total number of pins (sum of hyperedge sizes), `|E|`.
    pub fn num_pins(&self) -> usize {
        self.graph.num_edges()
    }

    /// The pins (vertices) of hyperedge `e`.
    pub fn pins(&self, e: QueryId) -> &[DataId] {
        self.graph.query_neighbors(e)
    }

    /// The hyperedges incident to vertex `v`.
    pub fn incident_hyperedges(&self, v: DataId) -> &[QueryId] {
        self.graph.data_neighbors(v)
    }

    /// Size of hyperedge `e`.
    pub fn hyperedge_size(&self, e: QueryId) -> usize {
        self.graph.query_degree(e)
    }

    /// Degree of vertex `v` (number of incident hyperedges).
    pub fn vertex_degree(&self, v: DataId) -> usize {
        self.graph.data_degree(v)
    }

    /// Iterator over hyperedge ids.
    pub fn hyperedges(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.graph.queries()
    }

    /// Iterator over vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = DataId> + '_ {
        self.graph.data_vertices()
    }
}

impl From<BipartiteGraph> for Hypergraph {
    fn from(graph: BipartiteGraph) -> Self {
        Hypergraph::from_bipartite(graph)
    }
}

impl From<Hypergraph> for BipartiteGraph {
    fn from(h: Hypergraph) -> Self {
        h.into_bipartite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypergraph_view_matches_bipartite() {
        let h =
            Hypergraph::from_hyperedges(vec![vec![0u32, 1, 5], vec![0, 1, 2, 3], vec![3, 4, 5]])
                .unwrap();
        assert_eq!(h.num_vertices(), 6);
        assert_eq!(h.num_hyperedges(), 3);
        assert_eq!(h.num_pins(), 10);
        assert_eq!(h.hyperedge_size(1), 4);
        assert_eq!(h.vertex_degree(5), 2);
        assert_eq!(h.pins(2), &[3, 4, 5]);
        assert_eq!(h.incident_hyperedges(0), &[0, 1]);
        assert_eq!(h.hyperedges().count(), 3);
        assert_eq!(h.vertices().count(), 6);
    }

    #[test]
    fn conversions_roundtrip() {
        let h = Hypergraph::from_hyperedges(vec![vec![0u32, 1], vec![1, 2]]).unwrap();
        let g: BipartiteGraph = h.clone().into();
        let h2: Hypergraph = g.into();
        assert_eq!(h, h2);
        assert_eq!(h.as_bipartite().num_edges(), 4);
    }
}
