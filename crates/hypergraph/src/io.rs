//! Plain-text readers and writers for graphs and partitions.
//!
//! Three formats are supported:
//!
//! * **Bipartite edge list** — one `query_id<TAB>data_id` pair per line, `#` comments allowed.
//!   This mirrors the SNAP edge-list format the paper's datasets are distributed in.
//! * **hMetis hypergraph format** — the de-facto standard exchanged between hypergraph
//!   partitioners (hMetis, PaToH, Mondriaan, Parkway, Zoltan): a header line
//!   `num_hyperedges num_vertices`, then one line of 1-based vertex ids per hyperedge.
//! * **Partition files** — one bucket id per line, line `i` holding the bucket of data
//!   vertex `i`; the format the open-sourced SHP job and the other partitioners emit.

use crate::bipartite::BipartiteGraph;
use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::partition::{BucketId, Partition};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a bipartite edge list (`query<TAB or space>data` per line) from a reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<BipartiteGraph> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let q = parse_u32(parts.next(), idx + 1, "query id")?;
        let d = parse_u32(parts.next(), idx + 1, "data id")?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: "expected exactly two columns".into(),
            });
        }
        edges.push((q, d));
    }
    GraphBuilder::from_edge_list(&edges)
}

/// Reads a bipartite edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a bipartite edge list to a writer.
pub fn write_edge_list<W: Write>(graph: &BipartiteGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# bipartite edge list: query_id\tdata_id")?;
    for (q, v) in graph.edges() {
        writeln!(w, "{q}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a bipartite edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &BipartiteGraph, path: P) -> Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

/// Reads a hypergraph in (unweighted) hMetis format from a reader.
///
/// The format is: a header `|Q| |D|`, followed by `|Q|` lines each listing the 1-based data
/// vertex ids of one hyperedge.
pub fn read_hmetis<R: Read>(reader: R) -> Result<BipartiteGraph> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Find the header line (skip comments starting with '%').
    let (header_line_no, header) = loop {
        match lines.next() {
            Some((idx, line)) => {
                let line = line?;
                let t = line.trim().to_string();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (idx + 1, t);
            }
            None => return Err(GraphError::EmptyGraph),
        }
    };
    let mut header_parts = header.split_whitespace();
    let num_hyperedges =
        parse_u32(header_parts.next(), header_line_no, "hyperedge count")? as usize;
    let num_vertices = parse_u32(header_parts.next(), header_line_no, "vertex count")? as usize;

    let mut builder = GraphBuilder::with_capacity(num_hyperedges, num_vertices);
    let mut read_edges = 0usize;
    for (idx, line) in lines {
        if read_edges == num_hyperedges {
            break;
        }
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut pins = Vec::new();
        for token in t.split_whitespace() {
            let one_based: u32 = token.parse().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid vertex id {token:?}"),
            })?;
            if one_based == 0 || one_based as usize > num_vertices {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    message: format!("vertex id {one_based} outside 1..={num_vertices}"),
                });
            }
            pins.push(one_based - 1);
        }
        builder.add_query(pins);
        read_edges += 1;
    }
    if read_edges != num_hyperedges {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("expected {num_hyperedges} hyperedges, found {read_edges}"),
        });
    }
    builder.ensure_data_count(num_vertices);
    builder.build()
}

/// Reads an hMetis hypergraph from a file path.
pub fn read_hmetis_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    read_hmetis(std::fs::File::open(path)?)
}

/// Writes a hypergraph in hMetis format.
pub fn write_hmetis<W: Write>(graph: &BipartiteGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{} {}", graph.num_queries(), graph.num_data())?;
    for q in graph.queries() {
        let line: Vec<String> = graph
            .query_neighbors(q)
            .iter()
            .map(|&v| (v + 1).to_string())
            .collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a hypergraph in hMetis format to a file path.
pub fn write_hmetis_file<P: AsRef<Path>>(graph: &BipartiteGraph, path: P) -> Result<()> {
    write_hmetis(graph, std::fs::File::create(path)?)
}

/// Reads a partition file (one bucket id per line) and pairs it with a graph.
///
/// Every entry is validated as it is read: a bucket id `>= k`, an entry beyond the graph's
/// data-vertex count, or a file ending before every data vertex has a bucket all produce a
/// line-numbered [`GraphError::Parse`] instead of a partition that silently disagrees with
/// the graph.
pub fn read_partition<R: Read>(graph: &BipartiteGraph, k: u32, reader: R) -> Result<Partition> {
    if k == 0 {
        return Err(GraphError::InvalidBucketCount(k));
    }
    let reader = BufReader::new(reader);
    let expected = graph.num_data();
    let mut assignment: Vec<BucketId> = Vec::with_capacity(expected);
    let mut last_line = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        last_line = idx + 1;
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if assignment.len() == expected {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: format!(
                    "unexpected extra entry {t:?}: the graph has only {expected} data vertices"
                ),
            });
        }
        let b: u32 = t.parse().map_err(|_| GraphError::Parse {
            line: idx + 1,
            message: format!("invalid bucket id {t:?}"),
        })?;
        if b >= k {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: format!("bucket id {b} out of range (declared bucket count k = {k})"),
            });
        }
        assignment.push(b);
    }
    if assignment.len() != expected {
        return Err(GraphError::Parse {
            line: last_line + 1,
            message: format!(
                "truncated partition file: found {} entries but the graph has {expected} data vertices",
                assignment.len()
            ),
        });
    }
    Partition::from_assignment(graph, k, assignment)
}

/// Reads a partition file from a path.
pub fn read_partition_file<P: AsRef<Path>>(
    graph: &BipartiteGraph,
    k: u32,
    path: P,
) -> Result<Partition> {
    read_partition(graph, k, std::fs::File::open(path)?)
}

/// Writes a partition as one bucket id per line.
pub fn write_partition<W: Write>(partition: &Partition, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for &b in partition.assignment() {
        writeln!(w, "{b}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a partition file to a path.
pub fn write_partition_file<P: AsRef<Path>>(partition: &Partition, path: P) -> Result<()> {
    write_partition(partition, std::fs::File::create(path)?)
}

fn parse_u32(token: Option<&str>, line: usize, what: &str) -> Result<u32> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    token.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what}: {token:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn figure1() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        b.build().unwrap()
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = figure1();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n0\t2\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_queries(), 2);
        assert_eq!(g.num_data(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn edge_list_rejects_malformed_lines() {
        assert!(read_edge_list("0".as_bytes()).is_err());
        assert!(read_edge_list("0 1 2".as_bytes()).is_err());
        assert!(read_edge_list("a b".as_bytes()).is_err());
    }

    #[test]
    fn hmetis_roundtrip() {
        let g = figure1();
        let mut buf = Vec::new();
        write_hmetis(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("3 6\n"));
        let g2 = read_hmetis(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn hmetis_rejects_out_of_range_and_short_files() {
        // Vertex id 0 is invalid in the 1-based format.
        assert!(read_hmetis("1 3\n0 1\n".as_bytes()).is_err());
        // Vertex id above the declared count.
        assert!(read_hmetis("1 3\n1 4\n".as_bytes()).is_err());
        // Fewer hyperedge lines than declared.
        assert!(read_hmetis("2 3\n1 2\n".as_bytes()).is_err());
        // Completely empty file.
        assert!(read_hmetis("".as_bytes()).is_err());
    }

    #[test]
    fn hmetis_skips_percent_comments() {
        let g = read_hmetis("% header comment\n2 3\n1 2\n% between\n2 3\n".as_bytes()).unwrap();
        assert_eq!(g.num_queries(), 2);
        assert_eq!(g.query_neighbors(1), &[1, 2]);
    }

    #[test]
    fn partition_roundtrip() {
        let g = figure1();
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let mut buf = Vec::new();
        write_partition(&p, &mut buf).unwrap();
        let p2 = read_partition(&g, 2, &buf[..]).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn partition_read_validates_length_and_range() {
        let g = figure1();
        assert!(read_partition(&g, 2, "0\n1\n".as_bytes()).is_err());
        assert!(read_partition(&g, 2, "0\n0\n0\n1\n1\n7\n".as_bytes()).is_err());
        assert!(read_partition(&g, 2, "0\nx\n0\n1\n1\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn partition_read_errors_carry_line_numbers() {
        let g = figure1(); // 6 data vertices

        // Out-of-range bucket id on line 6 (k = 2 declares buckets 0 and 1).
        match read_partition(&g, 2, "0\n0\n0\n1\n1\n7\n".as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 6);
                assert!(message.contains("bucket id 7"), "{message}");
                assert!(message.contains("k = 2"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }

        // Truncated file: only 2 of 6 entries, reported just past the last line read.
        match read_partition(&g, 2, "# header\n0\n1\n".as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("truncated"), "{message}");
                assert!(message.contains("found 2"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }

        // Overlong file: a 7th entry for a 6-vertex graph is rejected at its line.
        match read_partition(&g, 2, "0\n0\n0\n1\n1\n1\n0\n".as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 7);
                assert!(message.contains("extra entry"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }

        // Zero buckets are rejected up front.
        assert!(matches!(
            read_partition(&g, 0, "0\n".as_bytes()),
            Err(GraphError::InvalidBucketCount(0))
        ));

        // Comments and blank lines do not count as entries.
        let p = read_partition(&g, 2, "# c\n0\n\n0\n0\n1\n1\n1\n".as_bytes()).unwrap();
        assert_eq!(p.assignment(), &[0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn file_based_roundtrip() {
        let dir = std::env::temp_dir().join(format!("shp-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = figure1();
        let graph_path = dir.join("graph.hgr");
        let part_path = dir.join("graph.part");
        write_hmetis_file(&g, &graph_path).unwrap();
        let g2 = read_hmetis_file(&graph_path).unwrap();
        assert_eq!(g, g2);
        let p = Partition::from_assignment(&g, 3, vec![0, 1, 2, 0, 1, 2]).unwrap();
        write_partition_file(&p, &part_path).unwrap();
        let p2 = read_partition_file(&g, 3, &part_path).unwrap();
        assert_eq!(p, p2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
