//! Readers and writers for graphs and partitions.
//!
//! Four formats are supported:
//!
//! * **Bipartite edge list** — one `query_id<TAB>data_id` pair per line, `#` comments allowed.
//!   This mirrors the SNAP edge-list format the paper's datasets are distributed in.
//! * **hMetis hypergraph format** — the de-facto standard exchanged between hypergraph
//!   partitioners (hMetis, PaToH, Mondriaan, Parkway, Zoltan): a header line
//!   `num_hyperedges num_vertices`, then one line of 1-based vertex ids per hyperedge.
//! * **`.shpb` compact binary** — a checksummed little-endian container holding the CSR
//!   arrays verbatim (see [`shpb`]), an order of magnitude faster to load than text.
//! * **Partition files** — one bucket id per line, line `i` holding the bucket of data
//!   vertex `i`; the format the open-sourced SHP job and the other partitioners emit.
//!
//! # The ingestion hot path
//!
//! The text readers are zero-copy: the input is loaded into one byte buffer and scanned in
//! place (no per-line `String`, no UTF-8 validation, a hand-rolled decimal parser), streaming
//! records straight into the flat-arena [`GraphBuilder`]. The `_with` variants additionally
//! split the buffer **at line boundaries** into chunks parsed on real threads and merged in
//! chunk order — the parsed graph *and* the line numbers of [`GraphError::Parse`] are
//! bit-identical for every worker count (`tests/parallel_conformance.rs` locks this in).
//!
//! The original readers are retained as [`read_edge_list_legacy`] / [`read_hmetis_legacy`]:
//! they are the conformance oracles the `graph_ingest` bench and the test suite diff the new
//! pipeline against, exactly like `GainKernel::LegacyHashMap` in `shp-core`.
//!
//! [`GraphFormat`] resolves a graph file's format from its extension, falling back to
//! content sniffing (`.shpb` magic, comment style); [`read_graph_file`] composes detection
//! and parsing for callers that accept "any graph file", like the CLI subcommands.

mod scan;
pub mod shpb;
pub mod stream;

pub use shpb::{
    map_shpb_file, parse_shpb_bytes, read_shpb, read_shpb_file, write_shpb, write_shpb_file,
    SHPB_VERSION,
};
pub use stream::{stream_shpb_file, stream_shpb_file_with, QueryStream, StreamStats};

use crate::bipartite::BipartiteGraph;
use crate::builder::{BuildKernel, GraphBuilder};
use crate::error::{GraphError, Result};
use crate::partition::{BucketId, Partition};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

// ---------------------------------------------------------------------------------------------
// Format detection
// ---------------------------------------------------------------------------------------------

/// A graph file format, resolvable from a name, a file extension, or file contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// Plain-text bipartite edge list (`query data` per line).
    EdgeList,
    /// hMetis hypergraph text format.
    Hmetis,
    /// `.shpb` compact binary container.
    Shpb,
}

impl GraphFormat {
    /// Resolves a format from a user-supplied name (CLI `--from`/`--to` values).
    pub fn from_name(name: &str) -> Option<GraphFormat> {
        match name.to_ascii_lowercase().as_str() {
            "edgelist" | "edge-list" | "edges" | "txt" | "tsv" => Some(GraphFormat::EdgeList),
            "hmetis" | "hgr" => Some(GraphFormat::Hmetis),
            "shpb" | "binary" | "bin" => Some(GraphFormat::Shpb),
            _ => None,
        }
    }

    /// Resolves a format from a path's extension: `.shpb` → binary; `.hgr`, `.hmetis`,
    /// `.graph` → hMetis; `.txt`, `.tsv`, `.edges`, `.edgelist`, `.el` → edge list.
    pub fn from_extension<P: AsRef<Path>>(path: P) -> Option<GraphFormat> {
        let extension = path.as_ref().extension()?.to_str()?.to_ascii_lowercase();
        match extension.as_str() {
            "shpb" => Some(GraphFormat::Shpb),
            "hgr" | "hmetis" | "graph" => Some(GraphFormat::Hmetis),
            "txt" | "tsv" | "edges" | "edgelist" | "el" => Some(GraphFormat::EdgeList),
            _ => None,
        }
    }

    /// Guesses a format from file contents: the `.shpb` magic wins, a first non-blank byte of
    /// `#` means an edge list, anything else (including `%` comments) is read as hMetis —
    /// the two text formats are otherwise ambiguous, and hMetis is the workspace's primary
    /// interchange format.
    pub fn sniff(bytes: &[u8]) -> GraphFormat {
        if bytes.starts_with(&shpb::MAGIC) {
            return GraphFormat::Shpb;
        }
        match bytes.iter().find(|b| !b.is_ascii_whitespace()) {
            Some(b'#') => GraphFormat::EdgeList,
            _ => GraphFormat::Hmetis,
        }
    }

    /// Full detection for an input file: extension first, then content sniffing.
    pub fn detect<P: AsRef<Path>>(path: P, bytes: &[u8]) -> GraphFormat {
        GraphFormat::from_extension(path).unwrap_or_else(|| GraphFormat::sniff(bytes))
    }

    /// Canonical lowercase name (the values accepted by [`GraphFormat::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            GraphFormat::EdgeList => "edgelist",
            GraphFormat::Hmetis => "hmetis",
            GraphFormat::Shpb => "shpb",
        }
    }
}

/// Reads a graph file of any supported format, detected from the extension or the contents.
pub fn read_graph_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    read_graph_file_with(path, 1)
}

/// Like [`read_graph_file`], parsing text formats with up to `workers` threads.
pub fn read_graph_file_with<P: AsRef<Path>>(path: P, workers: usize) -> Result<BipartiteGraph> {
    let span = shp_telemetry::Span::enter("ingest/read_graph");
    let bytes = std::fs::read(&path)?;
    if shp_telemetry::enabled() {
        shp_telemetry::global()
            .counter("ingest/bytes_read")
            .add(bytes.len() as u64);
    }
    let (format, child) = match GraphFormat::detect(&path, &bytes) {
        GraphFormat::EdgeList => (GraphFormat::EdgeList, "parse_edge_list"),
        GraphFormat::Hmetis => (GraphFormat::Hmetis, "parse_hmetis"),
        GraphFormat::Shpb => (GraphFormat::Shpb, "parse_shpb"),
    };
    let _parse_span = span.child(child);
    match format {
        GraphFormat::EdgeList => parse_edge_list_bytes(&bytes, workers),
        GraphFormat::Hmetis => parse_hmetis_bytes(&bytes, workers),
        GraphFormat::Shpb => parse_shpb_bytes(&bytes),
    }
}

/// Writes a graph to a file in the given format.
pub fn write_graph_file<P: AsRef<Path>>(
    graph: &BipartiteGraph,
    path: P,
    format: GraphFormat,
) -> Result<()> {
    let _span = shp_telemetry::Span::enter("ingest/write_graph");
    match format {
        GraphFormat::EdgeList => write_edge_list_file(graph, &path),
        GraphFormat::Hmetis => write_hmetis_file(graph, &path),
        GraphFormat::Shpb => write_shpb_file(graph, &path),
    }?;
    if shp_telemetry::enabled() {
        if let Ok(meta) = std::fs::metadata(&path) {
            shp_telemetry::global()
                .counter("ingest/bytes_written")
                .add(meta.len());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------------------------
// Edge lists
// ---------------------------------------------------------------------------------------------

/// Reads a bipartite edge list (`query<TAB or space>data` per line) from a reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<BipartiteGraph> {
    read_edge_list_with(reader, 1)
}

/// Like [`read_edge_list`], parsing with up to `workers` threads. The result (including
/// parse-error line numbers) is identical for every worker count.
pub fn read_edge_list_with<R: Read>(mut reader: R, workers: usize) -> Result<BipartiteGraph> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_edge_list_bytes(&bytes, workers)
}

/// Parses an in-memory edge list with up to `workers` threads.
pub fn parse_edge_list_bytes(bytes: &[u8], workers: usize) -> Result<BipartiteGraph> {
    let workers = workers.max(1);
    let mut builder = GraphBuilder::new().with_workers(workers);
    if workers == 1 {
        // `"123\t45678\n"` is ~10 bytes per edge; reserving at a denser estimate keeps the
        // arena to one grow in the worst case instead of O(log n).
        builder.reserve_edges(bytes.len() / 10 + 4);
        scan::scan_edge_records(bytes, |q, v| builder.add_edge(q, v)).map_err(|e| {
            GraphError::Parse {
                line: e.line,
                message: e.message,
            }
        })?;
    } else {
        let chunks = scan::line_aligned_chunks(bytes, workers);
        let parsed = rayon::pool::map_vec(chunks, workers, |_, range| {
            let slice = &bytes[range];
            let mut edges: Vec<(u32, u32)> = Vec::with_capacity(slice.len() / 10 + 4);
            scan::scan_edge_records(slice, |q, v| edges.push((q, v))).map(|lines| (lines, edges))
        });
        let total: usize = parsed
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|(_, edges)| edges.len())
            .sum();
        builder.reserve_edges(total);
        let mut line_offset = 0usize;
        for chunk in parsed {
            match chunk {
                Ok((lines, edges)) => {
                    line_offset += lines;
                    builder.add_edges(edges);
                }
                Err(e) => {
                    return Err(GraphError::Parse {
                        line: line_offset + e.line,
                        message: e.message,
                    })
                }
            }
        }
    }
    builder.build()
}

/// The original per-line edge-list reader, retained verbatim as the conformance oracle for
/// the zero-copy pipeline (per-line `String`s, `str::parse`, and the [`BuildKernel::Legacy`]
/// per-query-`Vec` CSR build).
pub fn read_edge_list_legacy<R: Read>(reader: R) -> Result<BipartiteGraph> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let q = parse_u32(parts.next(), idx + 1, "query id")?;
        let d = parse_u32(parts.next(), idx + 1, "data id")?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: "expected exactly two columns".into(),
            });
        }
        edges.push((q, d));
    }
    let mut builder = GraphBuilder::new().with_kernel(BuildKernel::Legacy);
    builder.add_edges(edges);
    builder.build()
}

/// Reads a bipartite edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    read_edge_list_file_with(path, 1)
}

/// Reads a bipartite edge list from a file path with up to `workers` parse threads.
pub fn read_edge_list_file_with<P: AsRef<Path>>(path: P, workers: usize) -> Result<BipartiteGraph> {
    parse_edge_list_bytes(&std::fs::read(path)?, workers)
}

/// Writes a bipartite edge list to a writer.
pub fn write_edge_list<W: Write>(graph: &BipartiteGraph, writer: W) -> Result<()> {
    let mut w = ByteWriter::new(writer);
    w.text(b"# bipartite edge list: query_id\tdata_id\n")?;
    for (q, v) in graph.edges() {
        w.decimal(q);
        w.byte(b'\t');
        w.decimal(v);
        w.byte(b'\n');
        w.maybe_flush()?;
    }
    w.finish()
}

/// Writes a bipartite edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &BipartiteGraph, path: P) -> Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

// ---------------------------------------------------------------------------------------------
// hMetis
// ---------------------------------------------------------------------------------------------

/// Reads a hypergraph in (unweighted) hMetis format from a reader.
///
/// The format is: a header `|Q| |D|`, followed by `|Q|` lines each listing the 1-based data
/// vertex ids of one hyperedge.
pub fn read_hmetis<R: Read>(reader: R) -> Result<BipartiteGraph> {
    read_hmetis_with(reader, 1)
}

/// Like [`read_hmetis`], parsing with up to `workers` threads. The result (including
/// parse-error line numbers) is identical for every worker count.
pub fn read_hmetis_with<R: Read>(mut reader: R, workers: usize) -> Result<BipartiteGraph> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_hmetis_bytes(&bytes, workers)
}

/// Parses an in-memory hMetis document with up to `workers` threads.
pub fn parse_hmetis_bytes(bytes: &[u8], workers: usize) -> Result<BipartiteGraph> {
    let workers = workers.max(1);

    // Find the header record (skipping comments) sequentially.
    let mut records = scan::Records::new(bytes);
    let mut header = None;
    for (line, raw) in records.by_ref() {
        let record = raw.trim_ascii();
        if record.is_empty() || record[0] == b'%' {
            continue;
        }
        header = Some((line, record));
        break;
    }
    let Some((header_line, header)) = header else {
        return Err(GraphError::EmptyGraph);
    };
    let mut tokens = scan::Tokens::new(header);
    let num_hyperedges = parse_u32_token(tokens.next(), header_line, "hyperedge count")? as usize;
    let num_vertices = parse_u32_token(tokens.next(), header_line, "vertex count")? as usize;

    // Scan the body (everything after the header line), in parallel for workers > 1.
    let body = &bytes[records.pos()..];
    let chunks: Vec<scan::HedgeChunk> = if workers == 1 {
        vec![scan::scan_hmetis_records(body, num_vertices)]
    } else {
        let ranges = scan::line_aligned_chunks(body, workers);
        rayon::pool::map_vec(ranges, workers, |_, range| {
            scan::scan_hmetis_records(&body[range], num_vertices)
        })
    };

    // Merge in chunk order, consuming exactly the declared number of hyperedges: records —
    // and even scan errors — past that count are ignored, like the legacy reader's
    // early-stop. The offsets reservation is clamped by what the body could possibly hold
    // (a record is at least two bytes), so a corrupt header count cannot trigger an
    // enormous allocation — the short file then fails the "expected N hyperedges" check.
    let plausible_records = num_hyperedges.min(body.len() / 2 + 1);
    let mut builder =
        GraphBuilder::with_capacity(plausible_records, num_vertices).with_workers(workers);
    builder.reserve_pins(chunks.iter().map(|c| c.pins.len()).sum());
    let mut read_edges = 0usize;
    let mut line_offset = header_line;
    'merge: for chunk in &chunks {
        let mut at = 0usize;
        for &len in &chunk.lens {
            if read_edges == num_hyperedges {
                break 'merge;
            }
            builder.add_query_slice(&chunk.pins[at..at + len as usize]);
            at += len as usize;
            read_edges += 1;
        }
        if read_edges == num_hyperedges {
            break;
        }
        if let Some(error) = &chunk.error {
            return Err(GraphError::Parse {
                line: line_offset + error.line,
                message: error.message.clone(),
            });
        }
        line_offset += chunk.lines;
    }
    if read_edges != num_hyperedges {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("expected {num_hyperedges} hyperedges, found {read_edges}"),
        });
    }
    builder.ensure_data_count(num_vertices);
    builder.build()
}

/// The original per-line hMetis reader, retained as the conformance oracle (with the
/// gratuitous `trim().to_string()` allocation in its comment-skipping loop fixed).
pub fn read_hmetis_legacy<R: Read>(reader: R) -> Result<BipartiteGraph> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Find the header line (skip comments starting with '%').
    let (header_line_no, header) = loop {
        match lines.next() {
            Some((idx, line)) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (idx + 1, line);
            }
            None => return Err(GraphError::EmptyGraph),
        }
    };
    let mut header_parts = header.split_whitespace();
    let num_hyperedges =
        parse_u32(header_parts.next(), header_line_no, "hyperedge count")? as usize;
    let num_vertices = parse_u32(header_parts.next(), header_line_no, "vertex count")? as usize;

    let mut builder =
        GraphBuilder::with_capacity(num_hyperedges, num_vertices).with_kernel(BuildKernel::Legacy);
    let mut read_edges = 0usize;
    for (idx, line) in lines {
        if read_edges == num_hyperedges {
            break;
        }
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut pins = Vec::new();
        for token in t.split_whitespace() {
            let one_based: u32 = token.parse().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("invalid vertex id {token:?}"),
            })?;
            if one_based == 0 || one_based as usize > num_vertices {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    message: format!("vertex id {one_based} outside 1..={num_vertices}"),
                });
            }
            pins.push(one_based - 1);
        }
        builder.add_query(pins);
        read_edges += 1;
    }
    if read_edges != num_hyperedges {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("expected {num_hyperedges} hyperedges, found {read_edges}"),
        });
    }
    builder.ensure_data_count(num_vertices);
    builder.build()
}

/// Reads an hMetis hypergraph from a file path.
pub fn read_hmetis_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    read_hmetis_file_with(path, 1)
}

/// Reads an hMetis hypergraph from a file path with up to `workers` parse threads.
pub fn read_hmetis_file_with<P: AsRef<Path>>(path: P, workers: usize) -> Result<BipartiteGraph> {
    parse_hmetis_bytes(&std::fs::read(path)?, workers)
}

/// Writes a hypergraph in hMetis format.
pub fn write_hmetis<W: Write>(graph: &BipartiteGraph, writer: W) -> Result<()> {
    let mut w = ByteWriter::new(writer);
    w.decimal(graph.num_queries() as u32);
    w.byte(b' ');
    w.decimal(graph.num_data() as u32);
    w.byte(b'\n');
    for q in graph.queries() {
        let mut first = true;
        for &v in graph.query_neighbors(q) {
            if !first {
                w.byte(b' ');
            }
            first = false;
            w.decimal(v + 1);
        }
        w.byte(b'\n');
        w.maybe_flush()?;
    }
    w.finish()
}

/// Writes a hypergraph in hMetis format to a file path.
pub fn write_hmetis_file<P: AsRef<Path>>(graph: &BipartiteGraph, path: P) -> Result<()> {
    write_hmetis(graph, std::fs::File::create(path)?)
}

// ---------------------------------------------------------------------------------------------
// Partition files
// ---------------------------------------------------------------------------------------------

/// Reads a partition file (one bucket id per line) and pairs it with a graph.
///
/// Every entry is validated as it is read: a bucket id `>= k`, an entry beyond the graph's
/// data-vertex count, or a file ending before every data vertex has a bucket all produce a
/// line-numbered [`GraphError::Parse`] instead of a partition that silently disagrees with
/// the graph.
pub fn read_partition<R: Read>(graph: &BipartiteGraph, k: u32, mut reader: R) -> Result<Partition> {
    if k == 0 {
        return Err(GraphError::InvalidBucketCount(k));
    }
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let expected = graph.num_data();
    let mut assignment: Vec<BucketId> = Vec::with_capacity(expected);
    let records = scan::Records::new(&bytes);
    let mut last_line = 0usize;
    for (line, raw) in records {
        let t = raw.trim_ascii();
        last_line = line;
        if t.is_empty() || t[0] == b'#' {
            continue;
        }
        if assignment.len() == expected {
            return Err(GraphError::Parse {
                line,
                message: format!(
                    "unexpected extra entry {}: the graph has only {expected} data vertices",
                    scan::token_display(t)
                ),
            });
        }
        let b = scan::parse_u32_digits(t).ok_or_else(|| GraphError::Parse {
            line,
            message: format!("invalid bucket id {}", scan::token_display(t)),
        })?;
        if b >= k {
            return Err(GraphError::Parse {
                line,
                message: format!("bucket id {b} out of range (declared bucket count k = {k})"),
            });
        }
        assignment.push(b);
    }
    if assignment.len() != expected {
        return Err(GraphError::Parse {
            line: last_line + 1,
            message: format!(
                "truncated partition file: found {} entries but the graph has {expected} data vertices",
                assignment.len()
            ),
        });
    }
    Partition::from_assignment(graph, k, assignment)
}

/// Reads a partition file from a path.
pub fn read_partition_file<P: AsRef<Path>>(
    graph: &BipartiteGraph,
    k: u32,
    path: P,
) -> Result<Partition> {
    read_partition(graph, k, std::fs::File::open(path)?)
}

/// Writes a partition as one bucket id per line.
pub fn write_partition<W: Write>(partition: &Partition, writer: W) -> Result<()> {
    let mut w = ByteWriter::new(writer);
    for &b in partition.assignment() {
        w.decimal(b);
        w.byte(b'\n');
        w.maybe_flush()?;
    }
    w.finish()
}

/// Writes a partition file to a path.
pub fn write_partition_file<P: AsRef<Path>>(partition: &Partition, path: P) -> Result<()> {
    write_partition(partition, std::fs::File::create(path)?)
}

// ---------------------------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------------------------

/// A buffered text emitter rendering integers through a reusable byte buffer (itoa-style):
/// one `write_all` per 64 KiB instead of one `fmt::Write` round trip per line.
struct ByteWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
}

const WRITER_FLUSH: usize = 64 << 10;

impl<W: Write> ByteWriter<W> {
    fn new(inner: W) -> Self {
        ByteWriter {
            inner,
            buf: Vec::with_capacity(WRITER_FLUSH + 32),
        }
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn text(&mut self, text: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(text);
        self.maybe_flush()
    }

    /// Renders `v` in decimal straight into the buffer.
    #[inline]
    fn decimal(&mut self, mut v: u32) {
        let mut digits = [0u8; 10];
        let mut at = digits.len();
        loop {
            at -= 1;
            digits[at] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.buf.extend_from_slice(&digits[at..]);
    }

    #[inline]
    fn maybe_flush(&mut self) -> Result<()> {
        if self.buf.len() >= WRITER_FLUSH {
            self.inner.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    fn finish(mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.inner.write_all(&self.buf)?;
        }
        self.inner.flush()?;
        Ok(())
    }
}

/// Parses a string token (legacy readers), with the original error wording.
fn parse_u32(token: Option<&str>, line: usize, what: &str) -> Result<u32> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    token.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what}: {token:?}"),
    })
}

/// Parses a byte token (zero-copy readers), with the same error wording as [`parse_u32`].
fn parse_u32_token(token: Option<&[u8]>, line: usize, what: &str) -> Result<u32> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    scan::parse_u32_digits(token).ok_or_else(|| GraphError::Parse {
        line,
        message: format!("invalid {what}: {}", scan::token_display(token)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn figure1() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        b.build().unwrap()
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = figure1();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n0\t2\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_queries(), 2);
        assert_eq!(g.num_data(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn edge_list_rejects_malformed_lines() {
        assert!(read_edge_list("0".as_bytes()).is_err());
        assert!(read_edge_list("0 1 2".as_bytes()).is_err());
        assert!(read_edge_list("a b".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_matches_legacy_reader_for_every_worker_count() {
        let mut text = String::from("# header\n");
        for q in 0..500u32 {
            for v in 0..(q % 7 + 1) {
                text.push_str(&format!("{q}\t{}\n", (q * 31 + v * 17) % 211));
            }
        }
        let legacy = read_edge_list_legacy(text.as_bytes()).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let parsed = read_edge_list_with(text.as_bytes(), workers).unwrap();
            assert_eq!(parsed, legacy, "workers={workers}");
        }
    }

    #[test]
    fn edge_list_errors_match_legacy_lines_for_every_worker_count() {
        let mut text = String::new();
        for q in 0..300u32 {
            text.push_str(&format!("{q} {}\n", q % 97));
        }
        text.push_str("17 banana\n"); // line 301
        for q in 0..50u32 {
            text.push_str(&format!("{q} 1\n"));
        }
        let legacy = read_edge_list_legacy(text.as_bytes()).unwrap_err();
        let GraphError::Parse {
            line: legacy_line,
            message: legacy_message,
        } = legacy
        else {
            panic!("expected a parse error");
        };
        assert_eq!(legacy_line, 301);
        for workers in [1usize, 2, 4, 8] {
            match parse_edge_list_bytes(text.as_bytes(), workers) {
                Err(GraphError::Parse { line, message }) => {
                    assert_eq!(line, legacy_line, "workers={workers}");
                    assert_eq!(message, legacy_message, "workers={workers}");
                }
                other => panic!("workers={workers}: expected a parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn hmetis_roundtrip() {
        let g = figure1();
        let mut buf = Vec::new();
        write_hmetis(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("3 6\n"));
        let g2 = read_hmetis(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn hmetis_rejects_out_of_range_and_short_files() {
        // Vertex id 0 is invalid in the 1-based format.
        assert!(read_hmetis("1 3\n0 1\n".as_bytes()).is_err());
        // Vertex id above the declared count.
        assert!(read_hmetis("1 3\n1 4\n".as_bytes()).is_err());
        // Fewer hyperedge lines than declared.
        assert!(read_hmetis("2 3\n1 2\n".as_bytes()).is_err());
        // Completely empty file.
        assert!(read_hmetis("".as_bytes()).is_err());
    }

    #[test]
    fn hmetis_corrupt_header_counts_fail_without_huge_allocations() {
        // A tiny file declaring u32::MAX hyperedges must produce a parse error, not a
        // multi-gigabyte capacity reservation.
        for workers in [1usize, 4] {
            match parse_hmetis_bytes(b"4294967295 1\n1\n", workers) {
                Err(GraphError::Parse { message, .. }) => {
                    assert!(message.contains("expected 4294967295"), "{message}");
                }
                other => panic!("expected a parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn hmetis_skips_percent_comments() {
        let g = read_hmetis("% header comment\n2 3\n1 2\n% between\n2 3\n".as_bytes()).unwrap();
        assert_eq!(g.num_queries(), 2);
        assert_eq!(g.query_neighbors(1), &[1, 2]);
    }

    #[test]
    fn hmetis_ignores_trailing_lines_like_legacy() {
        // Garbage after the declared hyperedges must be ignored by both readers.
        let text = "2 3\n1 2\n2 3\nthis is not a hyperedge\n";
        let legacy = read_hmetis_legacy(text.as_bytes()).unwrap();
        for workers in [1usize, 2, 4, 8] {
            assert_eq!(
                parse_hmetis_bytes(text.as_bytes(), workers).unwrap(),
                legacy,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn hmetis_matches_legacy_reader_for_every_worker_count() {
        let g = figure1();
        let mut buf = Vec::new();
        write_hmetis(&g, &mut buf).unwrap();
        let legacy = read_hmetis_legacy(&buf[..]).unwrap();
        for workers in [1usize, 2, 4, 8] {
            assert_eq!(
                parse_hmetis_bytes(&buf, workers).unwrap(),
                legacy,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn hmetis_errors_match_legacy_lines_for_every_worker_count() {
        let mut text = String::from("% comment\n200 50\n");
        for q in 0..150u32 {
            text.push_str(&format!("{} {}\n", q % 50 + 1, (q * 7) % 50 + 1));
        }
        text.push_str("3 99\n"); // line 153: vertex 99 outside 1..=50
        for _ in 0..60 {
            text.push_str("1 2\n");
        }
        let GraphError::Parse {
            line: legacy_line,
            message: legacy_message,
        } = read_hmetis_legacy(text.as_bytes()).unwrap_err()
        else {
            panic!("expected a parse error");
        };
        assert_eq!(legacy_line, 153);
        for workers in [1usize, 2, 4, 8] {
            match parse_hmetis_bytes(text.as_bytes(), workers) {
                Err(GraphError::Parse { line, message }) => {
                    assert_eq!(line, legacy_line, "workers={workers}");
                    assert_eq!(message, legacy_message, "workers={workers}");
                }
                other => panic!("workers={workers}: expected a parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn writers_match_the_formatting_machinery_byte_for_byte() {
        use std::io::Write as _;
        let g = figure1();

        let mut fast = Vec::new();
        write_edge_list(&g, &mut fast).unwrap();
        let mut slow = Vec::new();
        writeln!(slow, "# bipartite edge list: query_id\tdata_id").unwrap();
        for (q, v) in g.edges() {
            writeln!(slow, "{q}\t{v}").unwrap();
        }
        assert_eq!(fast, slow);

        let mut fast = Vec::new();
        write_hmetis(&g, &mut fast).unwrap();
        let mut slow = Vec::new();
        writeln!(slow, "{} {}", g.num_queries(), g.num_data()).unwrap();
        for q in g.queries() {
            let line: Vec<String> = g
                .query_neighbors(q)
                .iter()
                .map(|&v| (v + 1).to_string())
                .collect();
            writeln!(slow, "{}", line.join(" ")).unwrap();
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn format_detection_by_extension_magic_and_comment_style() {
        assert_eq!(
            GraphFormat::from_extension("a/b.shpb"),
            Some(GraphFormat::Shpb)
        );
        assert_eq!(
            GraphFormat::from_extension("a/b.hgr"),
            Some(GraphFormat::Hmetis)
        );
        assert_eq!(
            GraphFormat::from_extension("a/b.edges"),
            Some(GraphFormat::EdgeList)
        );
        assert_eq!(GraphFormat::from_extension("a/b.dat"), None);
        assert_eq!(GraphFormat::from_extension("noext"), None);

        assert_eq!(
            GraphFormat::sniff(b"SHPB\x01\x00\x00\x00"),
            GraphFormat::Shpb
        );
        assert_eq!(
            GraphFormat::sniff(b"# an edge list\n0 1\n"),
            GraphFormat::EdgeList
        );
        assert_eq!(
            GraphFormat::sniff(b"% hmetis comment\n1 2\n"),
            GraphFormat::Hmetis
        );
        assert_eq!(GraphFormat::sniff(b"3 6\n1 2 6\n"), GraphFormat::Hmetis);

        // Extension wins over contents.
        assert_eq!(
            GraphFormat::detect("g.txt", b"3 6\n1 2 6\n"),
            GraphFormat::EdgeList
        );
        // No (or unknown) extension falls back to sniffing.
        assert_eq!(
            GraphFormat::detect("g.dat", b"SHPB rest"),
            GraphFormat::Shpb
        );

        for format in [
            GraphFormat::EdgeList,
            GraphFormat::Hmetis,
            GraphFormat::Shpb,
        ] {
            assert_eq!(GraphFormat::from_name(format.name()), Some(format));
        }
        assert_eq!(GraphFormat::from_name("csv"), None);
    }

    #[test]
    fn read_graph_file_autodetects_all_three_formats() {
        let dir = std::env::temp_dir().join(format!("shp-io-detect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = figure1();

        let hgr = dir.join("g.hgr");
        write_graph_file(&g, &hgr, GraphFormat::Hmetis).unwrap();
        assert_eq!(read_graph_file(&hgr).unwrap(), g);

        let txt = dir.join("g.txt");
        write_graph_file(&g, &txt, GraphFormat::EdgeList).unwrap();
        assert_eq!(read_graph_file(&txt).unwrap(), g);

        let bin = dir.join("g.shpb");
        write_graph_file(&g, &bin, GraphFormat::Shpb).unwrap();
        assert_eq!(read_graph_file(&bin).unwrap(), g);

        // Contents-based detection: binary container behind an unknown extension.
        let disguised = dir.join("g.dat");
        write_graph_file(&g, &disguised, GraphFormat::Shpb).unwrap();
        assert_eq!(read_graph_file_with(&disguised, 4).unwrap(), g);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partition_roundtrip() {
        let g = figure1();
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let mut buf = Vec::new();
        write_partition(&p, &mut buf).unwrap();
        let p2 = read_partition(&g, 2, &buf[..]).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn partition_read_validates_length_and_range() {
        let g = figure1();
        assert!(read_partition(&g, 2, "0\n1\n".as_bytes()).is_err());
        assert!(read_partition(&g, 2, "0\n0\n0\n1\n1\n7\n".as_bytes()).is_err());
        assert!(read_partition(&g, 2, "0\nx\n0\n1\n1\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn partition_read_errors_carry_line_numbers() {
        let g = figure1(); // 6 data vertices

        // Out-of-range bucket id on line 6 (k = 2 declares buckets 0 and 1).
        match read_partition(&g, 2, "0\n0\n0\n1\n1\n7\n".as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 6);
                assert!(message.contains("bucket id 7"), "{message}");
                assert!(message.contains("k = 2"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }

        // Truncated file: only 2 of 6 entries, reported just past the last line read.
        match read_partition(&g, 2, "# header\n0\n1\n".as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("truncated"), "{message}");
                assert!(message.contains("found 2"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }

        // Overlong file: a 7th entry for a 6-vertex graph is rejected at its line.
        match read_partition(&g, 2, "0\n0\n0\n1\n1\n1\n0\n".as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 7);
                assert!(message.contains("extra entry"), "{message}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }

        // Zero buckets are rejected up front.
        assert!(matches!(
            read_partition(&g, 0, "0\n".as_bytes()),
            Err(GraphError::InvalidBucketCount(0))
        ));

        // Comments and blank lines do not count as entries.
        let p = read_partition(&g, 2, "# c\n0\n\n0\n0\n1\n1\n1\n".as_bytes()).unwrap();
        assert_eq!(p.assignment(), &[0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn file_based_roundtrip() {
        let dir = std::env::temp_dir().join(format!("shp-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = figure1();
        let graph_path = dir.join("graph.hgr");
        let part_path = dir.join("graph.part");
        write_hmetis_file(&g, &graph_path).unwrap();
        let g2 = read_hmetis_file(&graph_path).unwrap();
        assert_eq!(g, g2);
        let p = Partition::from_assignment(&g, 3, vec![0, 1, 2, 0, 1, 2]).unwrap();
        write_partition_file(&p, &part_path).unwrap();
        let p2 = read_partition_file(&g, 3, &part_path).unwrap();
        assert_eq!(p, p2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
