//! Zero-copy byte scanning for the text readers.
//!
//! The readers load a file into one byte buffer and scan `\n`-delimited records **in place**:
//! no per-line `String`, no UTF-8 validation, and a hand-rolled decimal parser instead of
//! `str::parse`. For parallel parsing the buffer is split at line boundaries into chunks
//! ([`line_aligned_chunks`]); each chunk is scanned independently with chunk-relative line
//! numbers, and the caller merges results **in chunk order**, so both the parsed graph and
//! the line numbers of [`crate::GraphError::Parse`] are identical for every worker count.
//!
//! Line numbering matches `BufRead::lines` exactly: records are the `\n`-separated segments
//! of the buffer, a trailing newline does not open a phantom final record, and a `\r` left by
//! CRLF input is stripped with the surrounding ASCII whitespace.
//!
//! The decimal parser accepts plain digit runs only. `str::parse::<u32>` — which the legacy
//! oracle readers still use — additionally accepts a leading `+`; the strictness is
//! intentional (none of the supported formats emit signed ids).

use std::ops::Range;

/// One scan failure, with a **1-based line number relative to the scanned slice**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScanError {
    /// 1-based line within the scanned slice.
    pub line: usize,
    /// Human-readable message, matching the legacy readers' wording.
    pub message: String,
}

/// Iterator over the `\n`-delimited records of a byte slice with 1-based line numbers.
pub(crate) struct Records<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Records<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Records {
            bytes,
            pos: 0,
            line: 0,
        }
    }

    /// Byte position just past the most recently returned record's newline.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Number of records returned so far (equals the total line count once exhausted).
    pub(crate) fn lines(&self) -> usize {
        self.line
    }
}

impl<'a> Iterator for Records<'a> {
    type Item = (usize, &'a [u8]);

    fn next(&mut self) -> Option<(usize, &'a [u8])> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        self.line += 1;
        let rest = &self.bytes[self.pos..];
        match rest.iter().position(|&b| b == b'\n') {
            Some(i) => {
                self.pos += i + 1;
                Some((self.line, &rest[..i]))
            }
            None => {
                self.pos = self.bytes.len();
                Some((self.line, rest))
            }
        }
    }
}

/// Iterator over ASCII-whitespace-separated tokens of a record.
pub(crate) struct Tokens<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tokens<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Tokens { bytes, pos: 0 }
    }
}

impl<'a> Iterator for Tokens<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= self.bytes.len() {
            return None;
        }
        let start = self.pos;
        while self.pos < self.bytes.len() && !self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        Some(&self.bytes[start..self.pos])
    }
}

/// Parses a plain run of ASCII digits as `u32`, rejecting empty input, non-digits, and
/// overflow.
#[inline]
pub(crate) fn parse_u32_digits(token: &[u8]) -> Option<u32> {
    if token.is_empty() {
        return None;
    }
    let mut value: u64 = 0;
    for &b in token {
        let digit = b.wrapping_sub(b'0');
        if digit > 9 {
            return None;
        }
        value = value * 10 + u64::from(digit);
        if value > u64::from(u32::MAX) {
            return None;
        }
    }
    Some(value as u32)
}

/// Renders a byte token the way the legacy readers rendered the `&str` token in error
/// messages (`{token:?}`); identical output for valid UTF-8.
pub(crate) fn token_display(token: &[u8]) -> String {
    format!("{:?}", String::from_utf8_lossy(token))
}

/// Splits `bytes` into at most `workers` contiguous ranges whose boundaries sit just **after
/// a newline**, so no record spans two chunks and per-chunk line counts sum to the total.
pub(crate) fn line_aligned_chunks(bytes: &[u8], workers: usize) -> Vec<Range<usize>> {
    let approx = rayon::pool::chunk_ranges(bytes.len(), workers.max(1));
    if approx.len() <= 1 {
        return approx;
    }
    let mut cuts: Vec<usize> = Vec::with_capacity(approx.len() + 1);
    cuts.push(0);
    for range in approx.iter().take(approx.len() - 1) {
        let target = range.end.max(*cuts.last().expect("cuts is non-empty"));
        let cut = match bytes[target..].iter().position(|&b| b == b'\n') {
            Some(i) => target + i + 1,
            None => bytes.len(),
        };
        cuts.push(cut);
    }
    cuts.push(bytes.len());
    cuts.dedup();
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Scans edge-list records (`query data` per line, `#` comments), calling `emit` per edge.
/// Returns the number of lines scanned, or the first error with a chunk-relative line.
pub(crate) fn scan_edge_records<F: FnMut(u32, u32)>(
    bytes: &[u8],
    mut emit: F,
) -> std::result::Result<usize, ScanError> {
    let mut records = Records::new(bytes);
    for (line, raw) in records.by_ref() {
        let record = raw.trim_ascii();
        if record.is_empty() || record[0] == b'#' {
            continue;
        }
        let mut tokens = Tokens::new(record);
        let q = expect_u32(tokens.next(), line, "query id")?;
        let v = expect_u32(tokens.next(), line, "data id")?;
        if tokens.next().is_some() {
            return Err(ScanError {
                line,
                message: "expected exactly two columns".into(),
            });
        }
        emit(q, v);
    }
    Ok(records.lines())
}

fn expect_u32(
    token: Option<&[u8]>,
    line: usize,
    what: &str,
) -> std::result::Result<u32, ScanError> {
    let token = token.ok_or_else(|| ScanError {
        line,
        message: format!("missing {what}"),
    })?;
    parse_u32_digits(token).ok_or_else(|| ScanError {
        line,
        message: format!("invalid {what}: {}", token_display(token)),
    })
}

/// The outcome of scanning one chunk of hMetis hyperedge records: a flat pin arena plus
/// per-record lengths, with partial results retained up to the first error (the merge phase
/// decides whether an error past the declared hyperedge count even matters).
pub(crate) struct HedgeChunk {
    /// Lines scanned before stopping (all of them on success, up to the error otherwise).
    pub lines: usize,
    /// Pins per record, in record order.
    pub lens: Vec<u32>,
    /// Concatenated 0-based pins of all complete records.
    pub pins: Vec<u32>,
    /// First scan failure, if any (chunk-relative line).
    pub error: Option<ScanError>,
}

/// Scans hMetis hyperedge records (one line of 1-based vertex ids per hyperedge, `%`
/// comments), validating every id against `num_vertices`.
pub(crate) fn scan_hmetis_records(bytes: &[u8], num_vertices: usize) -> HedgeChunk {
    let mut chunk = HedgeChunk {
        lines: 0,
        lens: Vec::new(),
        pins: Vec::new(),
        error: None,
    };
    let mut records = Records::new(bytes);
    for (line, raw) in records.by_ref() {
        chunk.lines = line;
        let record = raw.trim_ascii();
        if record.is_empty() || record[0] == b'%' {
            continue;
        }
        let record_start = chunk.pins.len();
        for token in Tokens::new(record) {
            let Some(one_based) = parse_u32_digits(token) else {
                chunk.pins.truncate(record_start);
                chunk.error = Some(ScanError {
                    line,
                    message: format!("invalid vertex id {}", token_display(token)),
                });
                return chunk;
            };
            if one_based == 0 || one_based as usize > num_vertices {
                chunk.pins.truncate(record_start);
                chunk.error = Some(ScanError {
                    line,
                    message: format!("vertex id {one_based} outside 1..={num_vertices}"),
                });
                return chunk;
            }
            chunk.pins.push(one_based - 1);
        }
        chunk.lens.push((chunk.pins.len() - record_start) as u32);
    }
    chunk.lines = records.lines();
    chunk
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_number_lines_like_bufread_lines() {
        let collect = |input: &str| -> Vec<(usize, String)> {
            Records::new(input.as_bytes())
                .map(|(l, r)| (l, String::from_utf8_lossy(r).into_owned()))
                .collect()
        };
        assert_eq!(
            collect("a\nb\n"),
            vec![(1, "a".into()), (2, "b".into())],
            "trailing newline must not open a phantom record"
        );
        assert_eq!(
            collect("a\n\nb"),
            vec![(1, "a".into()), (2, String::new()), (3, "b".into())]
        );
        assert_eq!(collect(""), Vec::<(usize, String)>::new());
    }

    #[test]
    fn tokens_split_on_any_ascii_whitespace() {
        let tokens: Vec<&[u8]> = Tokens::new(b"  12\t 7 \r").collect();
        assert_eq!(tokens, vec![b"12".as_slice(), b"7".as_slice()]);
    }

    #[test]
    fn digit_parser_matches_str_parse_on_digit_runs() {
        for case in ["0", "7", "4294967295", "001"] {
            assert_eq!(
                parse_u32_digits(case.as_bytes()),
                case.parse::<u32>().ok(),
                "{case}"
            );
        }
        for bad in ["", "4294967296", "12a", "-1", "+5", " 5"] {
            assert_eq!(parse_u32_digits(bad.as_bytes()), None, "{bad:?}");
        }
    }

    #[test]
    fn line_aligned_chunks_cover_exactly_and_cut_after_newlines() {
        let text: String = (0..997).map(|i| format!("{i} {}\n", i * 3)).collect();
        let bytes = text.as_bytes();
        for workers in [1usize, 2, 3, 4, 8, 64] {
            let chunks = line_aligned_chunks(bytes, workers);
            let mut expected_start = 0;
            for range in &chunks {
                assert_eq!(range.start, expected_start, "workers={workers}");
                assert!(range.start == 0 || bytes[range.start - 1] == b'\n');
                expected_start = range.end;
            }
            assert_eq!(expected_start, bytes.len(), "workers={workers}");
            let total_lines: usize = chunks
                .iter()
                .map(|r| {
                    let mut records = Records::new(&bytes[r.clone()]);
                    while records.next().is_some() {}
                    records.lines()
                })
                .sum();
            assert_eq!(total_lines, 997, "workers={workers}");
        }
    }

    #[test]
    fn line_aligned_chunks_survive_one_giant_line() {
        let mut text = String::from("# ");
        text.push_str(&"x".repeat(10_000));
        text.push('\n');
        text.push_str("1 2\n");
        let chunks = line_aligned_chunks(text.as_bytes(), 8);
        assert!(!chunks.is_empty());
        assert_eq!(chunks.last().unwrap().end, text.len());
    }

    #[test]
    fn edge_scan_reports_chunk_relative_lines() {
        let mut edges = Vec::new();
        let err = scan_edge_records(b"1 2\nbad token\n", |q, v| edges.push((q, v)))
            .expect_err("second line is malformed");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("invalid query id"), "{}", err.message);
        assert_eq!(edges, vec![(1, 2)]);
    }

    #[test]
    fn hmetis_scan_retains_partial_records_before_an_error() {
        let chunk = scan_hmetis_records(b"1 2\n% c\n3 9\n1\n", 5);
        let error = chunk.error.expect("vertex 9 is out of range");
        assert_eq!(error.line, 3);
        assert!(error.message.contains("outside 1..=5"), "{}", error.message);
        // The complete first record survives; the partially scanned third does not.
        assert_eq!(chunk.lens, vec![2]);
        assert_eq!(chunk.pins, vec![0, 1]);
    }
}
