//! `.shpb` — the compact binary graph container.
//!
//! A little-endian sectioned format holding exactly the in-memory CSR representation of a
//! [`BipartiteGraph`], so loading one is a size check plus a handful of bulk array decodes —
//! no tokenizing, no dedup, no counting sort. Warm starts (`shp replay`/`serve`/`partition`
//! on a `.shpb` input) skip parsing entirely.
//!
//! # Layout (version 2)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"SHPB"` |
//! | 4      | 4    | `u32` format version (currently 2) |
//! | 8      | 8    | `u64` number of query vertices `Q` |
//! | 16     | 8    | `u64` number of data vertices `D` |
//! | 24     | 8    | `u64` number of pins (bipartite edges) `P` |
//! | 32     | 4    | `u32` flags (bit 0: data weights present) |
//! | 36     | 4    | `u32` reserved (zero) |
//! | 40     | 8    | `u64` FNV-1a checksum of bytes 0..40 |
//! | 48     | 8·(Q+1) | query CSR offsets (`u64`) |
//! |        | 4·P  | query adjacency (`u32` data ids) |
//! |        | 8·(D+1) | data CSR offsets (`u64`) |
//! |        | 4·P  | data adjacency (`u32` query ids) |
//! |        | 4·D  | data weights (`u32`), only when flag bit 0 is set |
//! |        | 8    | `u64` [`BodyHasher`] checksum of all section bytes (version ≥ 2) |
//!
//! Version 2 (this revision) appends an 8-byte body-checksum trailer after the sections: a
//! fast four-lane multiply-xor hash of every section byte, computed streamingly by the
//! writers. Placing it at the *end* keeps every section at its version-1 offset, so version-1
//! containers remain readable (they simply have no trailer). The trailer is what lets the
//! memory-mapped open below detect any body corruption in one sequential pass instead of the
//! copying reader's full structural re-validation.
//!
//! Every failure mode is a typed error: corrupt or truncated containers produce
//! [`GraphError::Binary`], a newer format version produces [`GraphError::UnsupportedVersion`].
//! The copying reader validates the structural CSR contract before constructing the graph:
//! offsets monotonic and consistent with `P`, adjacency ids in range, the two directions
//! degree-consistent, and every data vertex's query list in ascending query order (the order
//! the builder's counting sort always emits) — then checks the body trailer. The one property
//! deliberately *not* checked is the ordering of pins **within** a query: graphs built with
//! [`crate::GraphBuilder::without_dedup`] legitimately carry unsorted or duplicate pins, and
//! the container round-trips them verbatim.
//!
//! # Memory-mapped opens and why the borrowed views are sound
//!
//! [`map_shpb_file`] maps the container read-only and serves the graph API straight from the
//! on-disk bytes (zero-copy; a section falls back to a decoded heap copy only when its file
//! offset is misaligned for its element type — in this layout that is exactly the `u64` data
//! offsets when `P` is odd — or on a big-endian host). Validation at open time is:
//!
//! 1. the 48-byte header: magic, version, flag bits, FNV-1a header checksum;
//! 2. the exact file length implied by the header (`Q`/`D`/`P`/flags), so every section
//!    window is in bounds *before* any view is created;
//! 3. both offset arrays in full (`O(Q + D)`): start at 0, monotonic, end at `P`;
//! 4. for version ≥ 2, the body-checksum trailer — one sequential `O(file)` hash pass that
//!    rejects any flipped byte anywhere in the sections. Version-1 containers have no
//!    trailer, so the mapped open falls back to the copying reader's full structural
//!    validation (adjacency ranges, cross-direction degrees, row order) on the mapped bytes.
//!
//! What the v2 mapped open deliberately does **not** re-derive is the cross-direction degree
//! and row-order contract — the checksum already proves the bytes are exactly what a writer
//! (which only serializes structurally valid graphs) produced. The memory-safety argument
//! does not rest on that: all slicing of the mapped region derives from the offset arrays
//! validated in step 3 plus the exact-size check in step 2, so no view can dangle; adjacency
//! entries are plain `u32` *data* for which every bit pattern is valid, and every use of them
//! as an index downstream is bounds-checked by Rust. A forged file with a matching trailer
//! can therefore at worst produce a clean panic or a wrong partition — never an out-of-bounds
//! read. (See `crate::storage` for the mapping-lifetime half of the argument.)

use crate::bipartite::BipartiteGraph;
use crate::error::{GraphError, Result};
use crate::storage::{MmapRegion, Section};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every `.shpb` container.
pub(crate) const MAGIC: [u8; 4] = *b"SHPB";

/// Current (highest readable) format version.
pub const SHPB_VERSION: u32 = 2;

/// First version carrying the 8-byte body-checksum trailer after the sections.
const FIRST_TRAILER_VERSION: u32 = 2;

pub(crate) const HEADER_LEN: usize = 48;
const TRAILER_LEN: usize = 8;
const FLAG_WEIGHTS: u32 = 1;
pub(crate) const STAGING_FLUSH: usize = 64 << 10;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::Binary {
        message: message.into(),
    }
}

/// Streaming hash producing the version-2 body-checksum trailer.
///
/// Four independent xor-multiply lanes absorb the input as little-endian `u64` words
/// round-robin (so consecutive words have no data dependency and the compiler can keep all
/// four multiplies in flight), a byte buffer bridges chunk boundaries that are not 8-aligned,
/// and finalization folds the lanes and the total length FNV-style. Roughly an order of
/// magnitude faster than byte-at-a-time FNV-1a — the point, since the mapped open hashes the
/// whole file. Not cryptographic: it detects accidental corruption, not forgery (the module
/// docs explain why forgery still cannot break memory safety).
#[derive(Debug, Clone)]
pub(crate) struct BodyHasher {
    lanes: [u64; 4],
    words: u64,
    pending: [u8; 8],
    pending_len: usize,
    total: u64,
}

impl BodyHasher {
    const LANE_SEEDS: [u64; 4] = [
        0x243f_6a88_85a3_08d3,
        0x1319_8a2e_0370_7344,
        0xa409_3822_299f_31d0,
        0x082e_fa98_ec4e_6c89,
    ];

    pub(crate) fn new() -> Self {
        BodyHasher {
            lanes: Self::LANE_SEEDS,
            words: 0,
            pending: [0; 8],
            pending_len: 0,
            total: 0,
        }
    }

    pub(crate) fn update(&mut self, mut bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        if self.pending_len > 0 {
            let take = (8 - self.pending_len).min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 8 {
                return;
            }
            let word = u64::from_le_bytes(self.pending);
            self.absorb(word);
            self.pending_len = 0;
        }
        // Fast path: 32-byte blocks. Each block advances the word count by 4, so the lane
        // each of its words lands in is fixed for the whole loop — the four xor-multiply
        // chains stay in registers with no per-word bookkeeping, and the math is *identical*
        // to absorbing the words one at a time (word `i` still feeds lane `i mod 4`).
        let lane_base = (self.words & 3) as usize;
        let mut lanes = [
            self.lanes[lane_base],
            self.lanes[(lane_base + 1) & 3],
            self.lanes[(lane_base + 2) & 3],
            self.lanes[(lane_base + 3) & 3],
        ];
        let mut blocks = bytes.chunks_exact(32);
        for block in &mut blocks {
            for (k, lane) in lanes.iter_mut().enumerate() {
                let word = u64::from_le_bytes(
                    block[k * 8..k * 8 + 8].try_into().expect("word is 8 bytes"),
                );
                *lane = (*lane ^ word).wrapping_mul(0x2545_f491_4f6c_dd1d);
            }
            self.words += 4;
        }
        for (k, lane) in lanes.into_iter().enumerate() {
            self.lanes[(lane_base + k) & 3] = lane;
        }
        let mut chunks = blocks.remainder().chunks_exact(8);
        for chunk in &mut chunks {
            self.absorb(u64::from_le_bytes(
                chunk.try_into().expect("chunk is 8 bytes"),
            ));
        }
        let rest = chunks.remainder();
        self.pending[..rest.len()].copy_from_slice(rest);
        self.pending_len = rest.len();
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        let lane = (self.words & 3) as usize;
        self.lanes[lane] = (self.lanes[lane] ^ word).wrapping_mul(0x2545_f491_4f6c_dd1d);
        self.words += 1;
    }

    pub(crate) fn finish(mut self) -> u64 {
        if self.pending_len > 0 {
            self.pending[self.pending_len..].fill(0);
            let word = u64::from_le_bytes(self.pending);
            self.absorb(word);
        }
        let mut hash = self.total ^ 0x9e37_79b9_7f4a_7c15;
        for lane in self.lanes {
            hash = (hash ^ lane).wrapping_mul(0x0000_0100_0000_01b3);
            hash ^= hash >> 32;
        }
        hash
    }
}

/// Encodes the 48-byte header (including its FNV-1a checksum) for the given dimensions.
pub(crate) fn encode_header(
    num_queries: u64,
    num_data: u64,
    num_pins: u64,
    has_weights: bool,
    version: u32,
) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4..8].copy_from_slice(&version.to_le_bytes());
    header[8..16].copy_from_slice(&num_queries.to_le_bytes());
    header[16..24].copy_from_slice(&num_data.to_le_bytes());
    header[24..32].copy_from_slice(&num_pins.to_le_bytes());
    let flags = if has_weights { FLAG_WEIGHTS } else { 0 };
    header[32..36].copy_from_slice(&flags.to_le_bytes());
    // bytes 36..40 are the reserved field, zero.
    let checksum = fnv1a64(&header[..40]);
    header[40..48].copy_from_slice(&checksum.to_le_bytes());
    header
}

/// Writes a graph as a `.shpb` container (current version, with the body trailer).
pub fn write_shpb<W: Write>(graph: &BipartiteGraph, writer: W) -> Result<()> {
    write_shpb_versioned(graph, writer, SHPB_VERSION)
}

/// Writes the container at an explicit format version (version 1 omits the trailer); kept
/// internal so tests can produce genuine v1 files for the back-compat paths.
fn write_shpb_versioned<W: Write>(
    graph: &BipartiteGraph,
    mut writer: W,
    version: u32,
) -> Result<()> {
    let (query_offsets, query_adjacency, data_offsets, data_adjacency, weights) = graph.raw_csr();

    writer.write_all(&encode_header(
        graph.num_queries() as u64,
        graph.num_data() as u64,
        graph.num_edges() as u64,
        weights.is_some(),
        version,
    ))?;

    let mut hasher = BodyHasher::new();
    let mut staging: Vec<u8> = Vec::with_capacity(STAGING_FLUSH + 16);
    write_section(
        &mut writer,
        &mut hasher,
        &mut staging,
        query_offsets,
        u64::to_le_bytes,
    )?;
    write_section(
        &mut writer,
        &mut hasher,
        &mut staging,
        query_adjacency,
        u32::to_le_bytes,
    )?;
    write_section(
        &mut writer,
        &mut hasher,
        &mut staging,
        data_offsets,
        u64::to_le_bytes,
    )?;
    write_section(
        &mut writer,
        &mut hasher,
        &mut staging,
        data_adjacency,
        u32::to_le_bytes,
    )?;
    if let Some(w) = weights {
        write_section(&mut writer, &mut hasher, &mut staging, w, u32::to_le_bytes)?;
    }
    if !staging.is_empty() {
        hasher.update(&staging);
        writer.write_all(&staging)?;
    }
    if version >= FIRST_TRAILER_VERSION {
        writer.write_all(&hasher.finish().to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Appends one array section to the staging buffer element-wise, flushing (to both the writer
/// and the body hasher) every 64 KiB.
fn write_section<W: Write, T: Copy, const N: usize>(
    writer: &mut W,
    hasher: &mut BodyHasher,
    staging: &mut Vec<u8>,
    values: &[T],
    encode: impl Fn(T) -> [u8; N],
) -> std::io::Result<()> {
    for &v in values {
        staging.extend_from_slice(&encode(v));
        if staging.len() >= STAGING_FLUSH {
            hasher.update(staging);
            writer.write_all(staging)?;
            staging.clear();
        }
    }
    Ok(())
}

/// Writes a `.shpb` container to a file path.
pub fn write_shpb_file<P: AsRef<Path>>(graph: &BipartiteGraph, path: P) -> Result<()> {
    write_shpb(graph, std::io::BufWriter::new(std::fs::File::create(path)?))
}

/// Reads a graph from a `.shpb` container.
pub fn read_shpb<R: Read>(mut reader: R) -> Result<BipartiteGraph> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_shpb_bytes(&bytes)
}

/// Reads a `.shpb` container from a file path.
pub fn read_shpb_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    parse_shpb_bytes(&std::fs::read(path)?)
}

/// The decoded and checksum-verified 48-byte header, with the exact file length already
/// checked against the dimensions it declares (so every section window is in bounds).
#[derive(Debug, Clone, Copy)]
struct Header {
    version: u32,
    num_queries: usize,
    num_data: usize,
    num_pins: usize,
    has_weights: bool,
    /// Total size of the section bytes (everything between header and trailer).
    section_bytes: usize,
}

impl Header {
    fn trailer_len(&self) -> usize {
        if self.version >= FIRST_TRAILER_VERSION {
            TRAILER_LEN
        } else {
            0
        }
    }
}

/// Parses the header and checks `total_len` (the full container size) matches it exactly.
/// Shared by the copying reader and the mapped open, so both reject the same corruptions with
/// the same typed errors before touching any section.
fn parse_and_check_header(bytes: &[u8], total_len: usize) -> Result<Header> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "truncated header: {} bytes, need {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(corrupt(format!(
            "bad magic {:?} (expected {:?})",
            &bytes[..4],
            MAGIC
        )));
    }
    let version = read_u32(bytes, 4);
    if version > SHPB_VERSION {
        return Err(GraphError::UnsupportedVersion {
            found: version,
            supported: SHPB_VERSION,
        });
    }
    if version == 0 {
        return Err(corrupt("invalid format version 0"));
    }
    let stored_checksum = read_u64(bytes, 40);
    let computed = fnv1a64(&bytes[..40]);
    if stored_checksum != computed {
        return Err(corrupt(format!(
            "header checksum mismatch: stored {stored_checksum:#018x}, computed {computed:#018x}"
        )));
    }
    let num_queries = read_u64(bytes, 8);
    let num_data = read_u64(bytes, 16);
    let num_pins = read_u64(bytes, 24);
    let flags = read_u32(bytes, 32);
    if flags & !FLAG_WEIGHTS != 0 {
        return Err(corrupt(format!("unknown flag bits {flags:#010x}")));
    }
    let has_weights = flags & FLAG_WEIGHTS != 0;

    // Validate the declared body size before allocating anything: a corrupt count must fail
    // with a typed error, not an enormous allocation.
    let trailer = if version >= FIRST_TRAILER_VERSION {
        TRAILER_LEN as u128
    } else {
        0
    };
    let expected_body: u128 = (num_queries as u128 + 1) * 8
        + num_pins as u128 * 4
        + (num_data as u128 + 1) * 8
        + num_pins as u128 * 4
        + if has_weights { num_data as u128 * 4 } else { 0 }
        + trailer;
    let actual_body = (total_len - HEADER_LEN) as u128;
    if actual_body < expected_body {
        return Err(corrupt(format!(
            "truncated body: {actual_body} bytes, header declares {expected_body}"
        )));
    }
    if actual_body > expected_body {
        return Err(corrupt(format!(
            "trailing garbage: {actual_body} body bytes, header declares {expected_body}"
        )));
    }
    Ok(Header {
        version,
        num_queries: num_queries as usize,
        num_data: num_data as usize,
        num_pins: num_pins as usize,
        has_weights,
        section_bytes: (expected_body - trailer) as usize,
    })
}

/// Verifies the version-2 body-checksum trailer over the section bytes of `bytes`.
fn verify_body_trailer(bytes: &[u8], header: &Header) -> Result<()> {
    let stored = read_u64(bytes, HEADER_LEN + header.section_bytes);
    let mut hasher = BodyHasher::new();
    hasher.update(&bytes[HEADER_LEN..HEADER_LEN + header.section_bytes]);
    let computed = hasher.finish();
    if stored != computed {
        return Err(corrupt(format!(
            "body checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    Ok(())
}

/// Decodes and fully validates a `.shpb` container held in memory.
pub fn parse_shpb_bytes(bytes: &[u8]) -> Result<BipartiteGraph> {
    let header = parse_and_check_header(bytes, bytes.len())?;
    let num_queries = header.num_queries;
    let num_data = header.num_data;
    let num_pins = header.num_pins;

    let mut pos = HEADER_LEN;
    let query_offsets = take_u64s(bytes, &mut pos, num_queries + 1);
    let query_adjacency = take_u32s(bytes, &mut pos, num_pins);
    let data_offsets = take_u64s(bytes, &mut pos, num_data + 1);
    let data_adjacency = take_u32s(bytes, &mut pos, num_pins);
    let data_weights = header
        .has_weights
        .then(|| take_u32s(bytes, &mut pos, num_data));
    debug_assert_eq!(pos + header.trailer_len(), bytes.len());

    validate_offsets(&query_offsets, num_pins, "query")?;
    validate_offsets(&data_offsets, num_pins, "data")?;
    validate_adjacency(&query_adjacency, num_data, "query adjacency", "data")?;
    validate_adjacency(&data_adjacency, num_queries, "data adjacency", "query")?;
    validate_cross_consistency(
        &query_offsets,
        &query_adjacency,
        &data_offsets,
        &data_adjacency,
    )?;
    if header.version >= FIRST_TRAILER_VERSION {
        verify_body_trailer(bytes, &header)?;
    }

    Ok(BipartiteGraph::from_csr(
        query_offsets,
        query_adjacency,
        data_offsets,
        data_adjacency,
        data_weights,
    ))
}

/// Cross-checks the two adjacency directions: the data-side degrees implied by the query
/// adjacency must equal the data offsets (and symmetrically), so the container cannot smuggle
/// in two inconsistent edge sets; and every data vertex's query list must be in the ascending
/// query order the builder's counting sort always emits, so out-of-order corruption that
/// happens to preserve degrees is still rejected.
fn validate_cross_consistency(
    query_offsets: &[u64],
    query_adjacency: &[u32],
    data_offsets: &[u64],
    data_adjacency: &[u32],
) -> Result<()> {
    let num_queries = query_offsets.len() - 1;
    let num_data = data_offsets.len() - 1;
    let mut data_degree = vec![0u64; num_data];
    for &v in query_adjacency {
        data_degree[v as usize] += 1;
    }
    for v in 0..num_data {
        if data_offsets[v + 1] - data_offsets[v] != data_degree[v] {
            return Err(corrupt(format!(
                "data vertex {v} has degree {} in the query adjacency but {} in the data offsets",
                data_degree[v],
                data_offsets[v + 1] - data_offsets[v]
            )));
        }
    }
    let mut query_degree = vec![0u64; num_queries];
    for v in 0..num_data {
        let row = &data_adjacency[data_offsets[v] as usize..data_offsets[v + 1] as usize];
        let mut previous = 0u32;
        for &q in row {
            if q < previous {
                return Err(corrupt(format!(
                    "data vertex {v}'s query list is not in ascending query order"
                )));
            }
            previous = q;
            query_degree[q as usize] += 1;
        }
    }
    for q in 0..num_queries {
        if query_offsets[q + 1] - query_offsets[q] != query_degree[q] {
            return Err(corrupt(format!(
                "query {q} has degree {} in the data adjacency but {} in the query offsets",
                query_degree[q],
                query_offsets[q + 1] - query_offsets[q]
            )));
        }
    }
    Ok(())
}

/// Opens a `.shpb` container as a memory-mapped, zero-copy [`BipartiteGraph`].
///
/// The returned graph serves the normal accessor API from borrowed views of the on-disk
/// bytes: the heap footprint ([`BipartiteGraph::memory_bytes`]) stays near zero and graph
/// size is bounded by disk, not RAM. Open-time validation and the safety argument are
/// documented at the module level; the short version is that the header, exact file size, and
/// both offset arrays are always validated, and body integrity comes from the version-2
/// checksum trailer (version-1 files, which have no trailer, get the copying reader's full
/// structural validation instead — still without copying the sections).
///
/// # Errors
/// Everything [`read_shpb_file`] rejects is rejected here with the same typed errors.
pub fn map_shpb_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    let region = Arc::new(MmapRegion::map_file(path.as_ref())?);
    map_shpb_region(region)
}

fn map_shpb_region(region: Arc<MmapRegion>) -> Result<BipartiteGraph> {
    let bytes = region.bytes();
    let header = parse_and_check_header(bytes, bytes.len())?;
    let num_queries = header.num_queries;
    let num_data = header.num_data;
    let num_pins = header.num_pins;

    // Section windows. The exact-size check above proved all of them in bounds, so the
    // constructors cannot panic; each one borrows zero-copy or decode-copies on misalignment.
    let mut pos = HEADER_LEN;
    let mut window = |elems: usize, width: usize| {
        let at = pos;
        pos += elems * width;
        at
    };
    let query_offsets =
        Section::<u64>::from_region(&region, window(num_queries + 1, 8), num_queries + 1);
    let query_adjacency = Section::<u32>::from_region(&region, window(num_pins, 4), num_pins);
    let data_offsets = Section::<u64>::from_region(&region, window(num_data + 1, 8), num_data + 1);
    let data_adjacency = Section::<u32>::from_region(&region, window(num_pins, 4), num_pins);
    let data_weights = header
        .has_weights
        .then(|| Section::<u32>::from_region(&region, window(num_data, 4), num_data));

    validate_offsets(&query_offsets, num_pins, "query")?;
    validate_offsets(&data_offsets, num_pins, "data")?;
    if header.version >= FIRST_TRAILER_VERSION {
        // One sequential hash pass proves the section bytes are exactly what a writer
        // produced; the structural cross-checks below would be redundant.
        verify_body_trailer(region.bytes(), &header)?;
    } else {
        // Version-1 containers carry no trailer: fall back to full structural validation on
        // the mapped bytes (the documented slow path for old files).
        validate_adjacency(&query_adjacency, num_data, "query adjacency", "data")?;
        validate_adjacency(&data_adjacency, num_queries, "data adjacency", "query")?;
        validate_cross_consistency(
            &query_offsets,
            &query_adjacency,
            &data_offsets,
            &data_adjacency,
        )?;
    }

    Ok(BipartiteGraph::from_sections(
        query_offsets,
        query_adjacency,
        data_offsets,
        data_adjacency,
        data_weights,
    ))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn take_u64s(bytes: &[u8], pos: &mut usize, count: usize) -> Vec<u64> {
    let slice = &bytes[*pos..*pos + count * 8];
    *pos += count * 8;
    slice
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

fn take_u32s(bytes: &[u8], pos: &mut usize, count: usize) -> Vec<u32> {
    let slice = &bytes[*pos..*pos + count * 4];
    *pos += count * 4;
    slice
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect()
}

fn validate_offsets(offsets: &[u64], num_pins: usize, side: &str) -> Result<()> {
    if offsets.first() != Some(&0) {
        return Err(corrupt(format!("{side} offsets do not start at 0")));
    }
    if offsets.windows(2).any(|w| w[1] < w[0]) {
        return Err(corrupt(format!("{side} offsets are not monotonic")));
    }
    let last = *offsets.last().expect("offsets are non-empty");
    if last != num_pins as u64 {
        return Err(corrupt(format!(
            "{side} offsets end at {last} but the header declares {num_pins} pins"
        )));
    }
    Ok(())
}

fn validate_adjacency(adjacency: &[u32], bound: usize, what: &str, target: &str) -> Result<()> {
    for &id in adjacency {
        if id as usize >= bound {
            return Err(corrupt(format!(
                "{what} references {target} vertex {id} out of range (count {bound})"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn figure1() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        b.build().unwrap()
    }

    fn encode(graph: &BipartiteGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_shpb(graph, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_graph_and_weights() {
        let plain = figure1();
        assert_eq!(parse_shpb_bytes(&encode(&plain)).unwrap(), plain);

        let weighted = figure1().with_data_weights(vec![1, 2, 3, 4, 5, 6]).unwrap();
        let decoded = parse_shpb_bytes(&encode(&weighted)).unwrap();
        assert_eq!(decoded, weighted);
        assert!(decoded.has_weights());
        assert_eq!(decoded.data_weight(5), 6);
    }

    #[test]
    fn roundtrip_of_the_empty_graph() {
        let empty = GraphBuilder::new().build().unwrap();
        assert_eq!(parse_shpb_bytes(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn writing_is_deterministic() {
        assert_eq!(encode(&figure1()), encode(&figure1()));
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let full = encode(&figure1());
        for len in 0..full.len() {
            let err =
                parse_shpb_bytes(&full[..len]).expect_err("every proper prefix must be rejected");
            assert!(
                matches!(err, GraphError::Binary { .. }),
                "prefix of {len} bytes produced {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&figure1());
        bytes.push(0);
        assert!(matches!(
            parse_shpb_bytes(&bytes),
            Err(GraphError::Binary { .. })
        ));
    }

    #[test]
    fn header_corruption_fails_the_checksum() {
        let clean = encode(&figure1());
        // Flip one bit in every header byte that participates in the checksum (skipping the
        // magic and version, which have their own errors).
        for at in 8..40 {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x01;
            let err = parse_shpb_bytes(&bytes).expect_err("corrupt header must be rejected");
            assert!(
                err.to_string().contains("checksum"),
                "byte {at}: expected a checksum failure, got {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_future_version_are_typed() {
        let clean = encode(&figure1());

        let mut wrong_magic = clean.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            parse_shpb_bytes(&wrong_magic),
            Err(GraphError::Binary { .. })
        ));

        let mut future = clean.clone();
        future[4..8].copy_from_slice(&(SHPB_VERSION + 1).to_le_bytes());
        // Keep the header checksum valid so the version check is what fires.
        let checksum = fnv1a64(&future[..40]);
        future[40..48].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            parse_shpb_bytes(&future),
            Err(GraphError::UnsupportedVersion { found, supported })
                if found == SHPB_VERSION + 1 && supported == SHPB_VERSION
        ));
    }

    #[test]
    fn body_corruption_is_caught_by_csr_validation() {
        let clean = encode(&figure1());
        // Corrupt a query adjacency entry to an out-of-range data id.
        let adjacency_start = HEADER_LEN + (3 + 1) * 8;
        let mut bytes = clean.clone();
        bytes[adjacency_start..adjacency_start + 4].copy_from_slice(&999u32.to_le_bytes());
        let err = parse_shpb_bytes(&bytes).expect_err("out-of-range id must be rejected");
        assert!(err.to_string().contains("out of range"), "{err}");

        // Rewrite one pin to an in-range but wrong data id (query 0's pins [0, 1, 5] become
        // [0, 1, 0]): every id stays in range, but the per-vertex degrees no longer match the
        // data offsets.
        let mut rewritten = clean.clone();
        let third_pin = adjacency_start + 8;
        rewritten[third_pin..third_pin + 4].copy_from_slice(&0u32.to_le_bytes());
        let err = parse_shpb_bytes(&rewritten).expect_err("degree mismatch must be rejected");
        assert!(err.to_string().contains("degree"), "{err}");

        // Swap the two queries inside data vertex 0's list ([0, 1] -> [1, 0]): every degree
        // is preserved, so only the ascending-order check can catch it.
        let data_adjacency_start = HEADER_LEN + (3 + 1) * 8 + 10 * 4 + (6 + 1) * 8;
        let mut disordered = clean.clone();
        for i in 0..4 {
            disordered.swap(data_adjacency_start + i, data_adjacency_start + 4 + i);
        }
        let err = parse_shpb_bytes(&disordered).expect_err("row disorder must be rejected");
        assert!(err.to_string().contains("ascending"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("shp-shpb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.shpb");
        let g = figure1().with_data_weights(vec![2; 6]).unwrap();
        write_shpb_file(&g, &path).unwrap();
        assert_eq!(read_shpb_file(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Writes `bytes` to a scratch file, maps it, removes the file, returns the result.
    fn map_bytes(bytes: &[u8], tag: &str) -> Result<BipartiteGraph> {
        let path = std::env::temp_dir().join(format!(
            "shp-shpb-map-{}-{tag}-{}.shpb",
            std::process::id(),
            bytes.len()
        ));
        std::fs::write(&path, bytes).unwrap();
        let result = map_shpb_file(&path);
        std::fs::remove_file(&path).ok();
        result
    }

    #[test]
    fn mapped_open_matches_copying_reader_and_owns_no_heap() {
        let g = figure1();
        let bytes = encode(&g);
        let mapped = map_bytes(&bytes, "plain").unwrap();
        assert_eq!(mapped, g);
        assert_eq!(mapped, parse_shpb_bytes(&bytes).unwrap());
        // figure1 has an even pin count, so every section (including the u64 data offsets)
        // is aligned and borrows zero-copy when a real mapping is available.
        if mapped.is_mapped() {
            assert_eq!(mapped.memory_bytes(), 0);
            assert!(mapped.mapped_bytes() > 0);
        }
        // The normal accessors work straight off the mapped bytes.
        assert_eq!(mapped.query_neighbors(1), &[0, 1, 2, 3]);
        assert_eq!(mapped.data_neighbors(0), &[0, 1]);
    }

    #[test]
    fn mapped_open_handles_weights_and_odd_pin_counts() {
        // An odd pin count misaligns the u64 data-offsets section: the fallback copy must
        // kick in for that section and the graph must still read correctly.
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 2]);
        b.add_query([2u32, 3]);
        let g = b
            .build()
            .unwrap()
            .with_data_weights(vec![5, 6, 7, 8])
            .unwrap();
        assert_eq!(
            g.num_edges() % 2,
            1,
            "test graph must have an odd pin count"
        );
        let mapped = map_bytes(&encode(&g), "odd").unwrap();
        assert_eq!(mapped, g);
        assert_eq!(mapped.data_weight(3), 8);
        assert_eq!(mapped.total_data_weight(), 26);
    }

    #[test]
    fn v1_container_still_reads_and_maps() {
        let g = figure1().with_data_weights(vec![1, 2, 3, 4, 5, 6]).unwrap();
        let mut v1 = Vec::new();
        write_shpb_versioned(&g, &mut v1, 1).unwrap();
        assert_eq!(read_u32(&v1, 4), 1, "test must produce a genuine v1 file");
        assert_eq!(parse_shpb_bytes(&v1).unwrap(), g);
        assert_eq!(map_bytes(&v1, "v1").unwrap(), g);

        // The v1 mapped fallback still performs full structural validation.
        let adjacency_start = HEADER_LEN + (3 + 1) * 8;
        let mut corrupt_v1 = v1.clone();
        corrupt_v1[adjacency_start..adjacency_start + 4].copy_from_slice(&999u32.to_le_bytes());
        let err = map_bytes(&corrupt_v1, "v1bad").unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn weights_corruption_is_caught_by_the_body_trailer() {
        // A flipped weights byte is invisible to every structural check — only the trailer
        // can reject it, on both readers.
        let g = figure1().with_data_weights(vec![1, 2, 3, 4, 5, 6]).unwrap();
        let mut bytes = encode(&g);
        let weights_start = bytes.len() - TRAILER_LEN - 6 * 4;
        bytes[weights_start] ^= 0x10;
        let err = parse_shpb_bytes(&bytes).expect_err("copying reader must reject");
        assert!(err.to_string().contains("body checksum"), "{err}");
        let err = map_bytes(&bytes, "wflip").expect_err("mapped open must reject");
        assert!(err.to_string().contains("body checksum"), "{err}");
    }

    #[test]
    fn trailer_corruption_is_rejected() {
        let mut bytes = encode(&figure1());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(parse_shpb_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("body checksum"));
        assert!(map_bytes(&bytes, "tflip")
            .unwrap_err()
            .to_string()
            .contains("body checksum"));
    }

    #[test]
    fn body_hasher_is_chunking_invariant_and_discriminating() {
        let data: Vec<u8> = (0u32..1000).flat_map(|v| v.to_le_bytes()).collect();
        let mut whole = BodyHasher::new();
        whole.update(&data);
        let mut split = BodyHasher::new();
        // Uneven chunk sizes exercise the pending-byte bridge.
        for chunk in data.chunks(13) {
            split.update(chunk);
        }
        assert_eq!(whole.finish(), split.clone().finish());

        let mut flipped = BodyHasher::new();
        let mut copy = data.clone();
        copy[1234] ^= 0x80;
        flipped.update(&copy);
        assert_ne!(split.finish(), flipped.finish());

        let mut empty_a = BodyHasher::new();
        empty_a.update(&[]);
        let empty_b = BodyHasher::new();
        assert_eq!(empty_a.finish(), empty_b.finish());
    }

    #[test]
    fn mapped_graph_clones_and_induced_subgraphs_stay_valid() {
        let g = figure1();
        let mapped = map_bytes(&encode(&g), "clone").unwrap();
        let clone = mapped.clone();
        assert_eq!(clone, g);
        // Derived graphs are rebuilt through the builder and must be fully owned.
        let filtered = mapped.filter_small_queries(2);
        assert!(!filtered.is_mapped());
        assert_eq!(filtered, g.filter_small_queries(2));
        drop(mapped);
        drop(clone);
        assert_eq!(filtered.num_queries(), 3);
    }
}
