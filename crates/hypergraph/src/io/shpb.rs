//! `.shpb` — the compact binary graph container.
//!
//! A little-endian sectioned format holding exactly the in-memory CSR representation of a
//! [`BipartiteGraph`], so loading one is a size check plus a handful of bulk array decodes —
//! no tokenizing, no dedup, no counting sort. Warm starts (`shp replay`/`serve`/`partition`
//! on a `.shpb` input) skip parsing entirely.
//!
//! # Layout (version 1)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"SHPB"` |
//! | 4      | 4    | `u32` format version (currently 1) |
//! | 8      | 8    | `u64` number of query vertices `Q` |
//! | 16     | 8    | `u64` number of data vertices `D` |
//! | 24     | 8    | `u64` number of pins (bipartite edges) `P` |
//! | 32     | 4    | `u32` flags (bit 0: data weights present) |
//! | 36     | 4    | `u32` reserved (zero) |
//! | 40     | 8    | `u64` FNV-1a checksum of bytes 0..40 |
//! | 48     | 8·(Q+1) | query CSR offsets (`u64`) |
//! |        | 4·P  | query adjacency (`u32` data ids) |
//! |        | 8·(D+1) | data CSR offsets (`u64`) |
//! |        | 4·P  | data adjacency (`u32` query ids) |
//! |        | 4·D  | data weights (`u32`), only when flag bit 0 is set |
//!
//! Every failure mode is a typed error: corrupt or truncated containers produce
//! [`GraphError::Binary`], a newer format version produces [`GraphError::UnsupportedVersion`].
//! The reader validates the structural CSR contract before constructing the graph: offsets
//! monotonic and consistent with `P`, adjacency ids in range, the two directions
//! degree-consistent, and every data vertex's query list in ascending query order (the order
//! the builder's counting sort always emits). The one property deliberately *not* checked is
//! the ordering of pins **within** a query: graphs built with
//! [`crate::GraphBuilder::without_dedup`] legitimately carry unsorted or duplicate pins, and
//! the container round-trips them verbatim.

use crate::bipartite::BipartiteGraph;
use crate::error::{GraphError, Result};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every `.shpb` container.
pub(crate) const MAGIC: [u8; 4] = *b"SHPB";

/// Current (highest readable) format version.
pub const SHPB_VERSION: u32 = 1;

const HEADER_LEN: usize = 48;
const FLAG_WEIGHTS: u32 = 1;
const STAGING_FLUSH: usize = 64 << 10;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::Binary {
        message: message.into(),
    }
}

/// Writes a graph as a `.shpb` container.
pub fn write_shpb<W: Write>(graph: &BipartiteGraph, mut writer: W) -> Result<()> {
    let (query_offsets, query_adjacency, data_offsets, data_adjacency, weights) = graph.raw_csr();

    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&SHPB_VERSION.to_le_bytes());
    header.extend_from_slice(&(graph.num_queries() as u64).to_le_bytes());
    header.extend_from_slice(&(graph.num_data() as u64).to_le_bytes());
    header.extend_from_slice(&(graph.num_edges() as u64).to_le_bytes());
    let flags = if weights.is_some() { FLAG_WEIGHTS } else { 0 };
    header.extend_from_slice(&flags.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    header.extend_from_slice(&fnv1a64(&header).to_le_bytes());
    writer.write_all(&header)?;

    let mut staging: Vec<u8> = Vec::with_capacity(STAGING_FLUSH + 16);
    write_section(&mut writer, &mut staging, query_offsets, u64::to_le_bytes)?;
    write_section(&mut writer, &mut staging, query_adjacency, u32::to_le_bytes)?;
    write_section(&mut writer, &mut staging, data_offsets, u64::to_le_bytes)?;
    write_section(&mut writer, &mut staging, data_adjacency, u32::to_le_bytes)?;
    if let Some(w) = weights {
        write_section(&mut writer, &mut staging, w, u32::to_le_bytes)?;
    }
    if !staging.is_empty() {
        writer.write_all(&staging)?;
    }
    writer.flush()?;
    Ok(())
}

/// Appends one array section to the staging buffer element-wise, flushing every 64 KiB.
fn write_section<W: Write, T: Copy, const N: usize>(
    writer: &mut W,
    staging: &mut Vec<u8>,
    values: &[T],
    encode: impl Fn(T) -> [u8; N],
) -> std::io::Result<()> {
    for &v in values {
        staging.extend_from_slice(&encode(v));
        if staging.len() >= STAGING_FLUSH {
            writer.write_all(staging)?;
            staging.clear();
        }
    }
    Ok(())
}

/// Writes a `.shpb` container to a file path.
pub fn write_shpb_file<P: AsRef<Path>>(graph: &BipartiteGraph, path: P) -> Result<()> {
    write_shpb(graph, std::io::BufWriter::new(std::fs::File::create(path)?))
}

/// Reads a graph from a `.shpb` container.
pub fn read_shpb<R: Read>(mut reader: R) -> Result<BipartiteGraph> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_shpb_bytes(&bytes)
}

/// Reads a `.shpb` container from a file path.
pub fn read_shpb_file<P: AsRef<Path>>(path: P) -> Result<BipartiteGraph> {
    parse_shpb_bytes(&std::fs::read(path)?)
}

/// Decodes and fully validates a `.shpb` container held in memory.
pub fn parse_shpb_bytes(bytes: &[u8]) -> Result<BipartiteGraph> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "truncated header: {} bytes, need {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(corrupt(format!(
            "bad magic {:?} (expected {:?})",
            &bytes[..4],
            MAGIC
        )));
    }
    let version = read_u32(bytes, 4);
    if version > SHPB_VERSION {
        return Err(GraphError::UnsupportedVersion {
            found: version,
            supported: SHPB_VERSION,
        });
    }
    if version == 0 {
        return Err(corrupt("invalid format version 0"));
    }
    let stored_checksum = read_u64(bytes, 40);
    let computed = fnv1a64(&bytes[..40]);
    if stored_checksum != computed {
        return Err(corrupt(format!(
            "header checksum mismatch: stored {stored_checksum:#018x}, computed {computed:#018x}"
        )));
    }
    let num_queries = read_u64(bytes, 8);
    let num_data = read_u64(bytes, 16);
    let num_pins = read_u64(bytes, 24);
    let flags = read_u32(bytes, 32);
    if flags & !FLAG_WEIGHTS != 0 {
        return Err(corrupt(format!("unknown flag bits {flags:#010x}")));
    }
    let has_weights = flags & FLAG_WEIGHTS != 0;

    // Validate the declared body size before allocating anything: a corrupt count must fail
    // with a typed error, not an enormous allocation.
    let expected_body: u128 = (num_queries as u128 + 1) * 8
        + num_pins as u128 * 4
        + (num_data as u128 + 1) * 8
        + num_pins as u128 * 4
        + if has_weights { num_data as u128 * 4 } else { 0 };
    let actual_body = (bytes.len() - HEADER_LEN) as u128;
    if actual_body < expected_body {
        return Err(corrupt(format!(
            "truncated body: {actual_body} bytes, header declares {expected_body}"
        )));
    }
    if actual_body > expected_body {
        return Err(corrupt(format!(
            "trailing garbage: {actual_body} body bytes, header declares {expected_body}"
        )));
    }
    let num_queries = num_queries as usize;
    let num_data = num_data as usize;
    let num_pins = num_pins as usize;

    let mut pos = HEADER_LEN;
    let query_offsets = take_u64s(bytes, &mut pos, num_queries + 1);
    let query_adjacency = take_u32s(bytes, &mut pos, num_pins);
    let data_offsets = take_u64s(bytes, &mut pos, num_data + 1);
    let data_adjacency = take_u32s(bytes, &mut pos, num_pins);
    let data_weights = has_weights.then(|| take_u32s(bytes, &mut pos, num_data));
    debug_assert_eq!(pos, bytes.len());

    validate_offsets(&query_offsets, num_pins, "query")?;
    validate_offsets(&data_offsets, num_pins, "data")?;
    validate_adjacency(&query_adjacency, num_data, "query adjacency", "data")?;
    validate_adjacency(&data_adjacency, num_queries, "data adjacency", "query")?;

    // Cross-check the two directions: the data-side degrees implied by the query adjacency
    // must equal the data offsets (and symmetrically), so the container cannot smuggle in two
    // inconsistent edge sets.
    let mut data_degree = vec![0u64; num_data];
    for &v in &query_adjacency {
        data_degree[v as usize] += 1;
    }
    for v in 0..num_data {
        if data_offsets[v + 1] - data_offsets[v] != data_degree[v] {
            return Err(corrupt(format!(
                "data vertex {v} has degree {} in the query adjacency but {} in the data offsets",
                data_degree[v],
                data_offsets[v + 1] - data_offsets[v]
            )));
        }
    }
    // Every data vertex's query list is emitted by the builder's counting sort in ascending
    // query order — enforce that too (fused with the degree count below, one pass), so
    // out-of-order corruption that happens to preserve degrees is still rejected.
    let mut query_degree = vec![0u64; num_queries];
    for v in 0..num_data {
        let row = &data_adjacency[data_offsets[v] as usize..data_offsets[v + 1] as usize];
        let mut previous = 0u32;
        for &q in row {
            if q < previous {
                return Err(corrupt(format!(
                    "data vertex {v}'s query list is not in ascending query order"
                )));
            }
            previous = q;
            query_degree[q as usize] += 1;
        }
    }
    for q in 0..num_queries {
        if query_offsets[q + 1] - query_offsets[q] != query_degree[q] {
            return Err(corrupt(format!(
                "query {q} has degree {} in the data adjacency but {} in the query offsets",
                query_degree[q],
                query_offsets[q + 1] - query_offsets[q]
            )));
        }
    }

    Ok(BipartiteGraph::from_csr(
        query_offsets,
        query_adjacency,
        data_offsets,
        data_adjacency,
        data_weights,
    ))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn take_u64s(bytes: &[u8], pos: &mut usize, count: usize) -> Vec<u64> {
    let slice = &bytes[*pos..*pos + count * 8];
    *pos += count * 8;
    slice
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

fn take_u32s(bytes: &[u8], pos: &mut usize, count: usize) -> Vec<u32> {
    let slice = &bytes[*pos..*pos + count * 4];
    *pos += count * 4;
    slice
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect()
}

fn validate_offsets(offsets: &[u64], num_pins: usize, side: &str) -> Result<()> {
    if offsets.first() != Some(&0) {
        return Err(corrupt(format!("{side} offsets do not start at 0")));
    }
    if offsets.windows(2).any(|w| w[1] < w[0]) {
        return Err(corrupt(format!("{side} offsets are not monotonic")));
    }
    let last = *offsets.last().expect("offsets are non-empty");
    if last != num_pins as u64 {
        return Err(corrupt(format!(
            "{side} offsets end at {last} but the header declares {num_pins} pins"
        )));
    }
    Ok(())
}

fn validate_adjacency(adjacency: &[u32], bound: usize, what: &str, target: &str) -> Result<()> {
    for &id in adjacency {
        if id as usize >= bound {
            return Err(corrupt(format!(
                "{what} references {target} vertex {id} out of range (count {bound})"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn figure1() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        b.build().unwrap()
    }

    fn encode(graph: &BipartiteGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_shpb(graph, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_graph_and_weights() {
        let plain = figure1();
        assert_eq!(parse_shpb_bytes(&encode(&plain)).unwrap(), plain);

        let weighted = figure1().with_data_weights(vec![1, 2, 3, 4, 5, 6]).unwrap();
        let decoded = parse_shpb_bytes(&encode(&weighted)).unwrap();
        assert_eq!(decoded, weighted);
        assert!(decoded.has_weights());
        assert_eq!(decoded.data_weight(5), 6);
    }

    #[test]
    fn roundtrip_of_the_empty_graph() {
        let empty = GraphBuilder::new().build().unwrap();
        assert_eq!(parse_shpb_bytes(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn writing_is_deterministic() {
        assert_eq!(encode(&figure1()), encode(&figure1()));
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let full = encode(&figure1());
        for len in 0..full.len() {
            let err =
                parse_shpb_bytes(&full[..len]).expect_err("every proper prefix must be rejected");
            assert!(
                matches!(err, GraphError::Binary { .. }),
                "prefix of {len} bytes produced {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&figure1());
        bytes.push(0);
        assert!(matches!(
            parse_shpb_bytes(&bytes),
            Err(GraphError::Binary { .. })
        ));
    }

    #[test]
    fn header_corruption_fails_the_checksum() {
        let clean = encode(&figure1());
        // Flip one bit in every header byte that participates in the checksum (skipping the
        // magic and version, which have their own errors).
        for at in 8..40 {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x01;
            let err = parse_shpb_bytes(&bytes).expect_err("corrupt header must be rejected");
            assert!(
                err.to_string().contains("checksum"),
                "byte {at}: expected a checksum failure, got {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_future_version_are_typed() {
        let clean = encode(&figure1());

        let mut wrong_magic = clean.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            parse_shpb_bytes(&wrong_magic),
            Err(GraphError::Binary { .. })
        ));

        let mut future = clean.clone();
        future[4..8].copy_from_slice(&(SHPB_VERSION + 1).to_le_bytes());
        // Keep the header checksum valid so the version check is what fires.
        let checksum = fnv1a64(&future[..40]);
        future[40..48].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            parse_shpb_bytes(&future),
            Err(GraphError::UnsupportedVersion { found, supported })
                if found == SHPB_VERSION + 1 && supported == SHPB_VERSION
        ));
    }

    #[test]
    fn body_corruption_is_caught_by_csr_validation() {
        let clean = encode(&figure1());
        // Corrupt a query adjacency entry to an out-of-range data id.
        let adjacency_start = HEADER_LEN + (3 + 1) * 8;
        let mut bytes = clean.clone();
        bytes[adjacency_start..adjacency_start + 4].copy_from_slice(&999u32.to_le_bytes());
        let err = parse_shpb_bytes(&bytes).expect_err("out-of-range id must be rejected");
        assert!(err.to_string().contains("out of range"), "{err}");

        // Rewrite one pin to an in-range but wrong data id (query 0's pins [0, 1, 5] become
        // [0, 1, 0]): every id stays in range, but the per-vertex degrees no longer match the
        // data offsets.
        let mut rewritten = clean.clone();
        let third_pin = adjacency_start + 8;
        rewritten[third_pin..third_pin + 4].copy_from_slice(&0u32.to_le_bytes());
        let err = parse_shpb_bytes(&rewritten).expect_err("degree mismatch must be rejected");
        assert!(err.to_string().contains("degree"), "{err}");

        // Swap the two queries inside data vertex 0's list ([0, 1] -> [1, 0]): every degree
        // is preserved, so only the ascending-order check can catch it.
        let data_adjacency_start = HEADER_LEN + (3 + 1) * 8 + 10 * 4 + (6 + 1) * 8;
        let mut disordered = clean.clone();
        for i in 0..4 {
            disordered.swap(data_adjacency_start + i, data_adjacency_start + 4 + i);
        }
        let err = parse_shpb_bytes(&disordered).expect_err("row disorder must be rejected");
        assert!(err.to_string().contains("ascending"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("shp-shpb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.shpb");
        let g = figure1().with_data_weights(vec![2; 6]).unwrap();
        write_shpb_file(&g, &path).unwrap();
        assert_eq!(read_shpb_file(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
