//! Streaming generation of `.shpb` containers in bounded memory.
//!
//! [`stream_shpb_file`] writes a container straight from a [`QueryStream`] — a deterministic,
//! re-iterable source of hyperedges — without ever materializing the graph. Peak memory is
//! `O(D + chunk)` (one `u64` per data vertex for the degree/offset table plus one bounded
//! transpose window), independent of the pin count `P`, so a 100M-pin graph streams to disk
//! in tens of megabytes of RAM. The price is re-iterating the source: once to size the query
//! side, once to emit the query adjacency, and once per transpose window for the data side
//! (`⌈P / chunk⌉` more passes). For generators that is pure CPU re-rolled from a seed.
//!
//! The output is **byte-identical** to [`super::write_shpb`] applied to the materialized
//! graph of the same stream: pins are canonicalized exactly like
//! [`crate::GraphBuilder`] (per-query `sort_unstable` + dedup), the data side is emitted in
//! the same ascending-query counting-sort order, and the same header/trailer checksums are
//! computed streamingly. The section bytes are written in file order behind a placeholder
//! header; the real checksummed header is patched in at the end (its fields — `Q`, `D`, `P` —
//! are only known after the first pass).

use super::shpb::{corrupt, encode_header, BodyHasher, HEADER_LEN, SHPB_VERSION, STAGING_FLUSH};
use crate::bipartite::{DataId, QueryId};
use crate::error::{GraphError, Result};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// A deterministic, re-iterable source of hyperedges for the streaming writer.
///
/// Implementations must produce the **identical** query sequence (same queries, same pins,
/// same order) on every [`QueryStream::for_each_query`] call — the writer iterates the source
/// several times and cross-checks the passes, failing with a typed [`GraphError::Binary`] if
/// the stream drifts. Pins may be unsorted and contain duplicates; the writer canonicalizes
/// them exactly like [`crate::GraphBuilder`] does.
pub trait QueryStream {
    /// Iterates the stream from the beginning, invoking `emit` once per query with that
    /// query's raw pins.
    fn for_each_query(&mut self, emit: &mut dyn FnMut(&[DataId]));

    /// Lower bound on the number of data vertices, for sources whose id space is larger than
    /// the pins they happen to emit (isolated vertices). The analogue of
    /// [`crate::GraphBuilder::ensure_data_count`].
    fn min_data_count(&self) -> usize {
        0
    }
}

/// Every `Vec` of pin-`Vec`s is trivially a deterministic stream (used by tests and as the
/// adapter for in-memory sources).
impl QueryStream for Vec<Vec<DataId>> {
    fn for_each_query(&mut self, emit: &mut dyn FnMut(&[DataId])) {
        for pins in self.iter() {
            emit(pins);
        }
    }
}

/// What [`stream_shpb_file`] wrote, and what it cost in source passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of query vertices written.
    pub num_queries: u64,
    /// Number of data vertices written.
    pub num_data: u64,
    /// Number of pins written (after per-query dedup).
    pub num_pins: u64,
    /// Full passes over the query stream (2 fixed + one per transpose window).
    pub source_passes: u32,
    /// Total container bytes (header + sections + trailer).
    pub bytes_written: u64,
}

/// Default transpose-window size in pins: 4M pins = a 16 MiB `u32` window buffer.
const DEFAULT_CHUNK_PINS: usize = 4 << 20;

/// Streams a query source to a `.shpb` file in bounded memory (see the module docs).
pub fn stream_shpb_file<S: QueryStream + ?Sized>(
    source: &mut S,
    path: &Path,
) -> Result<StreamStats> {
    stream_shpb_file_with(source, path, DEFAULT_CHUNK_PINS)
}

/// Like [`stream_shpb_file`] with an explicit transpose-window size in pins (clamped to at
/// least 1). Smaller windows mean less memory and more passes over the source; the output
/// bytes are identical for every window size.
pub fn stream_shpb_file_with<S: QueryStream + ?Sized>(
    source: &mut S,
    path: &Path,
    chunk_pins: usize,
) -> Result<StreamStats> {
    let _span = shp_telemetry::Span::enter("ingest/stream_shpb");
    let chunk_pins = (chunk_pins.max(1)) as u64;
    let file = std::fs::File::create(path)?;
    let mut sink = Sink::new(std::io::BufWriter::with_capacity(256 << 10, file));
    // Placeholder header: the dimensions are unknown until the first pass has run. Patched
    // (with the real FNV-1a header checksum) after the sections and trailer are on disk.
    sink.writer.write_all(&[0u8; HEADER_LEN])?;

    // Pass 1: canonicalize every query, write the query-offsets section as a running sum,
    // and build the data-side degree histogram.
    let mut scratch: Vec<DataId> = Vec::new();
    let mut degree: Vec<u64> = Vec::new();
    let mut num_queries: u64 = 0;
    let mut running: u64 = 0;
    sink.put_u64(0);
    source.for_each_query(&mut |pins| {
        canonicalize(pins, &mut scratch);
        num_queries += 1;
        running += scratch.len() as u64;
        for &v in &scratch {
            if v as usize >= degree.len() {
                degree.resize(v as usize + 1, 0);
            }
            degree[v as usize] += 1;
        }
        sink.put_u64(running);
    });
    let num_pins = running;
    let num_data = degree.len().max(source.min_data_count());
    degree.resize(num_data, 0);

    // Pass 2: the query adjacency, cross-checked against pass 1.
    let mut queries_again: u64 = 0;
    let mut pins_again: u64 = 0;
    source.for_each_query(&mut |pins| {
        canonicalize(pins, &mut scratch);
        queries_again += 1;
        pins_again += scratch.len() as u64;
        for &v in &scratch {
            sink.put_u32(v);
        }
    });
    if queries_again != num_queries || pins_again != num_pins {
        return Err(corrupt(format!(
            "query stream is not deterministic: pass 1 saw {num_queries} queries/{num_pins} \
             pins, pass 2 saw {queries_again}/{pins_again}"
        )));
    }

    // Data offsets: prefix-sum the histogram, converting it in place into the per-vertex
    // start table the transpose windows index (`starts[v]..starts[v+1]`).
    let mut starts = degree;
    let mut acc = 0u64;
    sink.put_u64(0);
    for slot in starts.iter_mut() {
        let d = *slot;
        *slot = acc;
        acc += d;
        sink.put_u64(acc);
    }
    starts.push(acc);
    debug_assert_eq!(acc, num_pins);

    // Transpose passes: one re-iteration per window of at most `chunk_pins` pins, scattering
    // query ids into a bounded buffer. Queries arrive in ascending id order, so each data
    // vertex's query list comes out in exactly the builder's counting-sort order.
    let mut source_passes = 2u32;
    let mut buffer: Vec<QueryId> = Vec::new();
    let mut cursor: Vec<u64> = Vec::new();
    let mut lo = 0usize;
    while lo < num_data {
        let window_base = starts[lo];
        let mut hi = lo + 1;
        while hi < num_data && starts[hi + 1] - window_base <= chunk_pins {
            hi += 1;
        }
        let window_pins = (starts[hi] - window_base) as usize;
        buffer.clear();
        buffer.resize(window_pins, 0);
        cursor.clear();
        cursor.extend(starts[lo..hi].iter().map(|&s| s - window_base));
        let mut q: u64 = 0;
        let mut drifted = false;
        source.for_each_query(&mut |pins| {
            canonicalize(pins, &mut scratch);
            for &v in &scratch {
                let v = v as usize;
                if v >= lo && v < hi {
                    let pos = cursor[v - lo];
                    // A position at or past the vertex's own end means the stream emitted
                    // more pins for `v` than pass 1 counted: flag it instead of scattering
                    // out of place (the typed error below reports it).
                    if pos < starts[v + 1] - window_base {
                        buffer[pos as usize] = q as QueryId;
                        cursor[v - lo] = pos + 1;
                    } else {
                        drifted = true;
                    }
                }
            }
            q += 1;
        });
        let cursors_final = cursor
            .iter()
            .enumerate()
            .all(|(local, &c)| c == starts[lo + local + 1] - window_base);
        if drifted || q != num_queries || !cursors_final {
            return Err(corrupt(
                "query stream is not deterministic: a transpose pass disagrees with the \
                 degree histogram of pass 1",
            ));
        }
        for &qid in &buffer {
            sink.put_u32(qid);
        }
        source_passes += 1;
        lo = hi;
    }

    // Flush the sections, append the body trailer (not itself hashed), then patch the real
    // header over the placeholder.
    sink.flush_sections()?;
    let digest = sink.hasher.clone().finish();
    sink.writer.write_all(&digest.to_le_bytes())?;
    sink.writer.flush()?;
    let mut file = sink
        .writer
        .into_inner()
        .map_err(|e| GraphError::Io(e.into_error()))?;
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&encode_header(
        num_queries,
        num_data as u64,
        num_pins,
        false,
        SHPB_VERSION,
    ))?;
    file.flush()?;

    let bytes_written = HEADER_LEN as u64
        + (num_queries + 1) * 8
        + num_pins * 4
        + (num_data as u64 + 1) * 8
        + num_pins * 4
        + 8;
    Ok(StreamStats {
        num_queries,
        num_data: num_data as u64,
        num_pins,
        source_passes,
        bytes_written,
    })
}

/// Replicates [`crate::GraphBuilder`]'s per-query pin canonicalization exactly: copy, sort,
/// dedup. Byte-identity of the streamed container with the materialized one hinges on this
/// being the same transform.
#[inline]
fn canonicalize(pins: &[DataId], scratch: &mut Vec<DataId>) {
    scratch.clear();
    scratch.extend_from_slice(pins);
    scratch.sort_unstable();
    scratch.dedup();
}

/// Buffers section bytes, feeding the body hasher and the writer in 64 KiB slabs (the same
/// staging discipline as [`super::write_shpb`]). IO errors are latched and surfaced at the
/// next fallible call so the `emit` closures stay infallible.
struct Sink<W: Write> {
    writer: W,
    hasher: BodyHasher,
    staging: Vec<u8>,
    error: Option<std::io::Error>,
}

impl<W: Write> Sink<W> {
    fn new(writer: W) -> Self {
        Sink {
            writer,
            hasher: BodyHasher::new(),
            staging: Vec::with_capacity(STAGING_FLUSH + 16),
            error: None,
        }
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        self.staging.extend_from_slice(bytes);
        if self.staging.len() >= STAGING_FLUSH {
            self.hasher.update(&self.staging);
            if let Err(e) = self.writer.write_all(&self.staging) {
                self.error = Some(e);
            }
            self.staging.clear();
        }
    }

    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.put(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.put(&v.to_le_bytes());
    }

    /// Drains the staging buffer and surfaces any latched IO error.
    fn flush_sections(&mut self) -> Result<()> {
        if let Some(e) = self.error.take() {
            return Err(GraphError::Io(e));
        }
        if !self.staging.is_empty() {
            self.hasher.update(&self.staging);
            self.writer.write_all(&self.staging)?;
            self.staging.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::shpb::{map_shpb_file, parse_shpb_bytes, write_shpb};
    use super::*;
    use crate::GraphBuilder;

    fn scratch_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("shp-stream-test-{}-{tag}.shpb", std::process::id()))
    }

    /// The materialized oracle: the same queries through the builder, then `write_shpb`.
    fn materialized_bytes(queries: &[Vec<DataId>], min_data: usize) -> Vec<u8> {
        let mut b = GraphBuilder::new();
        for pins in queries {
            b.add_query_slice(pins);
        }
        b.ensure_data_count(min_data);
        let graph = b.build().unwrap();
        let mut bytes = Vec::new();
        write_shpb(&graph, &mut bytes).unwrap();
        bytes
    }

    /// Messy fixture: unsorted pins, duplicates, an empty query, a degree-1 tail vertex.
    fn fixture() -> Vec<Vec<DataId>> {
        vec![
            vec![5, 0, 5, 1],
            vec![],
            vec![2, 2, 2],
            vec![7, 3, 0],
            vec![1, 0],
        ]
    }

    #[test]
    fn streamed_output_is_byte_identical_to_materialized_write() {
        let path = scratch_path("ident");
        let mut stream = fixture();
        let stats = stream_shpb_file(&mut stream, &path).unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed, materialized_bytes(&fixture(), 0));
        assert_eq!(stats.num_queries, 5);
        assert_eq!(stats.num_data, 8);
        assert_eq!(stats.num_pins, 9); // after per-query dedup
        assert_eq!(stats.bytes_written, streamed.len() as u64);
    }

    #[test]
    fn every_window_size_produces_identical_bytes() {
        let oracle = materialized_bytes(&fixture(), 0);
        for chunk_pins in [1usize, 2, 3, 7, 1 << 20] {
            let path = scratch_path(&format!("chunk{chunk_pins}"));
            let stats = stream_shpb_file_with(&mut fixture(), &path, chunk_pins).unwrap();
            let streamed = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(streamed, oracle, "chunk_pins={chunk_pins}");
            if chunk_pins == 1 {
                // Window of one pin: at least one transpose pass per non-isolated vertex.
                assert!(stats.source_passes > 2, "{:?}", stats);
            }
        }
    }

    #[test]
    fn streamed_container_reads_and_maps_back_to_the_same_graph() {
        let path = scratch_path("read");
        stream_shpb_file(&mut fixture(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let parsed = parse_shpb_bytes(&bytes).unwrap();
        let mapped = map_shpb_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut b = GraphBuilder::new();
        for pins in fixture() {
            b.add_query_slice(&pins);
        }
        let oracle = b.build().unwrap();
        assert_eq!(parsed, oracle);
        assert_eq!(mapped, oracle);
    }

    #[test]
    fn min_data_count_adds_isolated_vertices() {
        struct Padded(Vec<Vec<DataId>>);
        impl QueryStream for Padded {
            fn for_each_query(&mut self, emit: &mut dyn FnMut(&[DataId])) {
                self.0.for_each_query(emit);
            }
            fn min_data_count(&self) -> usize {
                12
            }
        }
        let path = scratch_path("padded");
        let stats = stream_shpb_file(&mut Padded(fixture()), &path).unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(stats.num_data, 12);
        assert_eq!(streamed, materialized_bytes(&fixture(), 12));
    }

    #[test]
    fn empty_stream_writes_the_empty_container() {
        let path = scratch_path("empty");
        let stats = stream_shpb_file(&mut Vec::<Vec<DataId>>::new(), &path).unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(stats.num_queries, 0);
        assert_eq!(stats.num_data, 0);
        assert_eq!(streamed, materialized_bytes(&[], 0));
    }

    #[test]
    fn non_deterministic_streams_fail_with_typed_errors_not_panics() {
        /// Emits one more query every time it is iterated.
        struct Growing(u32);
        impl QueryStream for Growing {
            fn for_each_query(&mut self, emit: &mut dyn FnMut(&[DataId])) {
                self.0 += 1;
                for q in 0..self.0 {
                    emit(&[q, q + 1]);
                }
            }
        }
        let path = scratch_path("grow");
        let err = stream_shpb_file(&mut Growing(0), &path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, GraphError::Binary { .. }), "{err:?}");
        assert!(err.to_string().contains("not deterministic"), "{err}");

        /// Same query count, but the pins move between passes.
        struct Shifting(u32);
        impl QueryStream for Shifting {
            fn for_each_query(&mut self, emit: &mut dyn FnMut(&[DataId])) {
                self.0 += 1;
                for q in 0..4u32 {
                    emit(&[(q + self.0) % 5, (q + self.0 + 1) % 5]);
                }
            }
        }
        let path = scratch_path("shift");
        let err = stream_shpb_file(&mut Shifting(0), &path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, GraphError::Binary { .. }), "{err:?}");
    }
}
