//! # shp-hypergraph
//!
//! Data structures and quality metrics for hypergraph partitioning, shared by every other
//! crate in the Social Hash Partitioner (SHP) workspace.
//!
//! The SHP paper (Kabiljo et al., VLDB 2017) models the storage-sharding problem as a
//! *bipartite graph* `G = (Q ∪ D, E)` whose left side `Q` holds *query* vertices (one per
//! hyperedge) and whose right side `D` holds *data* vertices. Partitioning the data vertices
//! into `k` balanced buckets while minimizing the average *fanout* of the queries is exactly
//! balanced k-way hypergraph partitioning under the communication-volume / (k−1)-cut metric.
//!
//! This crate provides:
//!
//! * [`BipartiteGraph`] — a compressed sparse row (CSR) representation with adjacency in both
//!   directions (query → data and data → query), built through [`GraphBuilder`].
//! * [`Hypergraph`] — a thin hyperedge-centric view over the same storage.
//! * [`Partition`] — an assignment of data vertices to buckets with balance bookkeeping.
//! * [`metrics`] — fanout, probabilistic fanout, hyperedge cut, sum of external degrees,
//!   weighted edge cut of the clique-net graph, and imbalance.
//! * [`clique`] — construction of the clique-net (weighted unipartite) graph of Lemma 2.
//! * [`io`] — readers/writers for the bipartite edge list, hMetis, and `.shpb` compact
//!   binary graph formats plus partition files, with zero-copy parallel text parsing and
//!   format autodetection.
//! * [`stats`] — dataset statistics as reported in Table 1 of the paper.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod builder;
pub mod clique;
pub mod error;
pub mod hypergraph;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod stats;
// The storage module is the single place `unsafe` is permitted: the mmap syscalls and the
// borrowed-slice reinterpretation, with the safety argument documented there.
#[allow(unsafe_code)]
pub(crate) mod storage;

pub use bipartite::{BipartiteGraph, DataId, QueryId};
pub use builder::{BuildKernel, GraphBuilder};
pub use clique::CliqueNetGraph;
pub use error::{GraphError, Result};
pub use hypergraph::Hypergraph;
pub use metrics::{
    average_fanout, average_p_fanout, hyperedge_cut, imbalance, max_fanout, sum_external_degrees,
    weighted_edge_cut, FanoutHistogram,
};
pub use partition::{BucketId, Partition};
pub use stats::GraphStats;
