//! Partition-quality metrics: fanout, probabilistic fanout, cut metrics, imbalance.
//!
//! All metrics operate on a [`BipartiteGraph`] plus a [`Partition`] of its data vertices and
//! match the definitions of Sections 1 and 3.1 of the SHP paper.

use crate::bipartite::{BipartiteGraph, QueryId};
use crate::partition::Partition;

/// Fanout of a single query: the number of distinct buckets containing at least one of its
/// data neighbors. Queries with no neighbors have fanout 0.
pub fn query_fanout(graph: &BipartiteGraph, partition: &Partition, q: QueryId) -> u32 {
    let mut seen = vec![false; partition.num_buckets() as usize];
    let mut fanout = 0;
    for &v in graph.query_neighbors(q) {
        let b = partition.bucket_of(v) as usize;
        if !seen[b] {
            seen[b] = true;
            fanout += 1;
        }
    }
    fanout
}

/// Number of neighbors of query `q` in each bucket — the "neighbor data" `n_i(q)` of the paper.
pub fn query_neighbor_counts(
    graph: &BipartiteGraph,
    partition: &Partition,
    q: QueryId,
) -> Vec<u32> {
    let mut counts = vec![0u32; partition.num_buckets() as usize];
    for &v in graph.query_neighbors(q) {
        counts[partition.bucket_of(v) as usize] += 1;
    }
    counts
}

/// Average fanout over all queries: `fanout(P) = (1/|Q|) Σ_q fanout(P, q)`.
///
/// Returns 0 for a graph without queries.
pub fn average_fanout(graph: &BipartiteGraph, partition: &Partition) -> f64 {
    if graph.num_queries() == 0 {
        return 0.0;
    }
    let total: u64 = graph
        .queries()
        .map(|q| query_fanout(graph, partition, q) as u64)
        .sum();
    total as f64 / graph.num_queries() as f64
}

/// Maximum fanout over all queries.
pub fn max_fanout(graph: &BipartiteGraph, partition: &Partition) -> u32 {
    graph
        .queries()
        .map(|q| query_fanout(graph, partition, q))
        .max()
        .unwrap_or(0)
}

/// Probabilistic fanout of one query for probability `p`:
/// `p-fanout(q) = Σ_i (1 − (1 − p)^{n_i(q)})`.
pub fn query_p_fanout(graph: &BipartiteGraph, partition: &Partition, q: QueryId, p: f64) -> f64 {
    let counts = query_neighbor_counts(graph, partition, q);
    counts
        .iter()
        .filter(|&&n| n > 0)
        .map(|&n| 1.0 - (1.0 - p).powi(n as i32))
        .sum()
}

/// Average probabilistic fanout over all queries (the optimization objective of the paper).
pub fn average_p_fanout(graph: &BipartiteGraph, partition: &Partition, p: f64) -> f64 {
    if graph.num_queries() == 0 {
        return 0.0;
    }
    let total: f64 = graph
        .queries()
        .map(|q| query_p_fanout(graph, partition, q, p))
        .sum();
    total / graph.num_queries() as f64
}

/// Number of hyperedges (queries) spanning more than one bucket — the hyperedge-cut metric.
pub fn hyperedge_cut(graph: &BipartiteGraph, partition: &Partition) -> u64 {
    graph
        .queries()
        .filter(|&q| query_fanout(graph, partition, q) > 1)
        .count() as u64
}

/// Sum of external degrees: `Σ_q fanout(q) [fanout(q) > 1]`, i.e. communication volume plus
/// hyperedge cut (footnote 2 of the paper), computed un-normalized.
pub fn sum_external_degrees(graph: &BipartiteGraph, partition: &Partition) -> u64 {
    graph
        .queries()
        .map(|q| {
            let f = query_fanout(graph, partition, q) as u64;
            if f > 1 {
                f
            } else {
                0
            }
        })
        .sum()
}

/// Weighted edge-cut of the clique-net graph (Lemma 2): for every query and every unordered
/// pair of its data neighbors lying in different buckets, add 1.
///
/// This is `Σ_{u<v} w(u,v) [bucket(u) ≠ bucket(v)]` with `w(u,v)` = number of shared queries,
/// evaluated query-by-query in O(Σ_q |N(q)|·k) without materializing the clique graph.
pub fn weighted_edge_cut(graph: &BipartiteGraph, partition: &Partition) -> u64 {
    let mut cut = 0u64;
    for q in graph.queries() {
        let counts = query_neighbor_counts(graph, partition, q);
        let deg: u64 = counts.iter().map(|&c| c as u64).sum();
        let total_pairs = deg * deg.saturating_sub(1) / 2;
        let same_pairs: u64 = counts
            .iter()
            .map(|&c| (c as u64) * (c as u64).saturating_sub(1) / 2)
            .sum();
        cut += total_pairs - same_pairs;
    }
    cut
}

/// Realized imbalance of the partition: `max_i |V_i| / (n/k) − 1` (clamped at 0).
pub fn imbalance(partition: &Partition) -> f64 {
    partition.imbalance()
}

/// Histogram of query fanout values, used for reporting latency-vs-fanout experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutHistogram {
    /// `counts[f]` = number of queries with fanout exactly `f`.
    counts: Vec<u64>,
    /// Total number of queries observed.
    total: u64,
}

impl FanoutHistogram {
    /// Builds the histogram of fanout values for all queries of the graph.
    pub fn compute(graph: &BipartiteGraph, partition: &Partition) -> Self {
        let mut counts = vec![0u64; partition.num_buckets() as usize + 1];
        for q in graph.queries() {
            let f = query_fanout(graph, partition, q) as usize;
            counts[f] += 1;
        }
        FanoutHistogram {
            counts,
            total: graph.num_queries() as u64,
        }
    }

    /// Number of queries with fanout exactly `f` (0 when `f` exceeds the recorded range).
    pub fn count(&self, f: usize) -> u64 {
        self.counts.get(f).copied().unwrap_or(0)
    }

    /// Total number of queries recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean fanout implied by the histogram.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(f, &c)| f as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The smallest fanout value `f` such that at least `quantile` (in `[0,1]`) of the queries
    /// have fanout ≤ `f`.
    pub fn quantile(&self, quantile: f64) -> usize {
        if self.total == 0 {
            return 0;
        }
        let target = (quantile.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (f, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return f;
            }
        }
        self.counts.len() - 1
    }

    /// Largest fanout value with a non-zero count.
    pub fn max(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Partition};

    /// The Figure-1 example: queries {0,1,5}, {0,1,2,3}, {3,4,5}; partition {0,1,2} | {3,4,5}.
    fn figure1() -> (BipartiteGraph, Partition) {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        (g, p)
    }

    #[test]
    fn figure1_fanout_matches_paper() {
        // The paper states fanouts 2, 2, 1 and average (2+2+1)/3.
        let (g, p) = figure1();
        assert_eq!(query_fanout(&g, &p, 0), 2);
        assert_eq!(query_fanout(&g, &p, 1), 2);
        assert_eq!(query_fanout(&g, &p, 2), 1);
        assert!((average_fanout(&g, &p) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(max_fanout(&g, &p), 2);
    }

    #[test]
    fn neighbor_counts_match_definition() {
        let (g, p) = figure1();
        assert_eq!(query_neighbor_counts(&g, &p, 0), vec![2, 1]);
        assert_eq!(query_neighbor_counts(&g, &p, 1), vec![3, 1]);
        assert_eq!(query_neighbor_counts(&g, &p, 2), vec![0, 3]);
    }

    #[test]
    fn p_fanout_is_below_fanout_and_monotone_in_p() {
        let (g, p) = figure1();
        for q in g.queries() {
            let f = query_fanout(&g, &p, q) as f64;
            let pf_small = query_p_fanout(&g, &p, q, 0.3);
            let pf_large = query_p_fanout(&g, &p, q, 0.9);
            assert!(pf_small <= f + 1e-12);
            assert!(pf_large <= f + 1e-12);
            assert!(pf_small <= pf_large + 1e-12, "p-fanout should grow with p");
        }
    }

    #[test]
    fn p_fanout_limit_p_to_one_equals_fanout() {
        // Lemma 1: as p -> 1, p-fanout -> fanout.
        let (g, p) = figure1();
        let diff = (average_p_fanout(&g, &p, 1.0 - 1e-12) - average_fanout(&g, &p)).abs();
        assert!(diff < 1e-6, "diff = {diff}");
    }

    #[test]
    fn p_fanout_exact_value() {
        let (g, p) = figure1();
        // Query 0: n = [2,1]; p=0.5 -> (1-0.25) + (1-0.5) = 1.25
        let val = query_p_fanout(&g, &p, 0, 0.5);
        assert!((val - 1.25).abs() < 1e-12);
    }

    #[test]
    fn hyperedge_cut_and_soed() {
        let (g, p) = figure1();
        // Queries 0 and 1 are cut, query 2 is internal.
        assert_eq!(hyperedge_cut(&g, &p), 2);
        // SOED = 2 + 2 = 4 (only cut queries contribute their fanout).
        assert_eq!(sum_external_degrees(&g, &p), 4);
    }

    #[test]
    fn weighted_edge_cut_matches_bruteforce() {
        let (g, p) = figure1();
        // Brute force: for each query, count cross-bucket pairs.
        let mut expected = 0u64;
        for q in g.queries() {
            let pins = g.query_neighbors(q);
            for i in 0..pins.len() {
                for j in (i + 1)..pins.len() {
                    if p.bucket_of(pins[i]) != p.bucket_of(pins[j]) {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(weighted_edge_cut(&g, &p), expected);
        assert_eq!(expected, 2 + 3); // query0: pairs crossing = 2, query1: 3, query2: 0
    }

    #[test]
    fn all_in_one_bucket_gives_fanout_one() {
        let (g, _) = figure1();
        let p = Partition::from_assignment(&g, 2, vec![0; 6]).unwrap();
        assert!((average_fanout(&g, &p) - 1.0).abs() < 1e-12);
        assert_eq!(hyperedge_cut(&g, &p), 0);
        assert_eq!(weighted_edge_cut(&g, &p), 0);
        assert_eq!(sum_external_degrees(&g, &p), 0);
    }

    #[test]
    fn empty_graph_metrics_are_zero() {
        let g = GraphBuilder::new().build().unwrap();
        let p = Partition::new_uniform(&g, 3).unwrap();
        assert_eq!(average_fanout(&g, &p), 0.0);
        assert_eq!(average_p_fanout(&g, &p, 0.5), 0.0);
        assert_eq!(max_fanout(&g, &p), 0);
        assert_eq!(hyperedge_cut(&g, &p), 0);
    }

    #[test]
    fn fanout_histogram_counts_and_quantiles() {
        let (g, p) = figure1();
        let h = FanoutHistogram::compute(&g, &p);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(0), 0);
        assert!((h.mean() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(0.33), 1);
        assert_eq!(h.max(), 2);
    }

    #[test]
    fn p_fanout_with_p_zero_is_zero() {
        // With p = 0 every term (1 - (1-0)^n) vanishes, so the value is identically 0; the
        // clique-net behaviour only appears in the second-order term (see core::objective).
        let (g, p) = figure1();
        assert_eq!(average_p_fanout(&g, &p, 0.0), 0.0);
    }
}
