//! Partitions of data vertices into buckets with balance bookkeeping.

use crate::bipartite::{BipartiteGraph, DataId};
use crate::error::{GraphError, Result};
use rand::Rng;

/// Identifier of a bucket `V_i`, `0..k`.
pub type BucketId = u32;

/// An assignment of every data vertex to one of `k` buckets.
///
/// The paper's balance constraint is `|V_i| ≤ (1 + ε)·n/k` for all buckets (Section 1); this
/// struct maintains per-bucket sizes (weights) incrementally so that both the partitioner and
/// the metrics can query balance in O(1).
///
/// # Example
///
/// ```
/// use shp_hypergraph::{GraphBuilder, Partition};
///
/// let mut b = GraphBuilder::new();
/// b.add_query([0, 1, 2, 3]);
/// let graph = b.build().unwrap();
///
/// let mut part = Partition::new_uniform(&graph, 2).unwrap();
/// part.assign(3, 1);
/// assert_eq!(part.bucket_of(3), 1);
/// assert_eq!(part.bucket_weight(0), 3);
/// assert_eq!(part.bucket_weight(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Bucket of every data vertex.
    assignment: Vec<BucketId>,
    /// Number of buckets, k.
    num_buckets: u32,
    /// Total vertex weight currently assigned to each bucket.
    bucket_weights: Vec<u64>,
    /// Per-vertex weights (uniform 1 when `None`), copied from the graph at construction.
    vertex_weights: Option<Vec<u32>>,
    /// Sum of all bucket weights; invariant under [`Partition::assign`], cached so
    /// [`Partition::total_weight`] is O(1).
    total_weight: u64,
    /// Lowest-indexed bucket of minimum weight, maintained incrementally by
    /// [`Partition::assign`] (O(1) except when the least-loaded bucket itself gains weight,
    /// which triggers an O(k) rescan). Always equals what a fresh
    /// `(0..k).min_by_key(bucket_weight)` scan would return.
    least_loaded: BucketId,
}

impl Partition {
    /// Creates a partition that places every data vertex of `graph` in bucket 0.
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidBucketCount`] when `k == 0`.
    pub fn new_uniform(graph: &BipartiteGraph, k: u32) -> Result<Self> {
        if k == 0 {
            return Err(GraphError::InvalidBucketCount(k));
        }
        let n = graph.num_data();
        let vertex_weights = if graph.has_weights() {
            Some((0..n).map(|v| graph.data_weight(v as DataId)).collect())
        } else {
            None
        };
        let mut bucket_weights = vec![0u64; k as usize];
        bucket_weights[0] = graph.total_data_weight();
        let least_loaded = first_min_bucket(&bucket_weights);
        Ok(Partition {
            assignment: vec![0; n],
            num_buckets: k,
            total_weight: bucket_weights.iter().sum(),
            least_loaded,
            bucket_weights,
            vertex_weights,
        })
    }

    /// Creates a partition by assigning every data vertex to an independently uniform random
    /// bucket — the initial partitioning step of Algorithm 1.
    pub fn new_random<R: Rng>(graph: &BipartiteGraph, k: u32, rng: &mut R) -> Result<Self> {
        let mut part = Self::new_uniform(graph, k)?;
        for v in 0..graph.num_data() as DataId {
            let b = rng.gen_range(0..k);
            part.assign(v, b);
        }
        Ok(part)
    }

    /// Creates a partition from an explicit assignment vector.
    ///
    /// # Errors
    /// Fails if the vector length does not match the graph, a bucket id is out of range, or
    /// `k == 0`.
    pub fn from_assignment(
        graph: &BipartiteGraph,
        k: u32,
        assignment: Vec<BucketId>,
    ) -> Result<Self> {
        if k == 0 {
            return Err(GraphError::InvalidBucketCount(k));
        }
        if assignment.len() != graph.num_data() {
            return Err(GraphError::PartitionLengthMismatch {
                got: assignment.len(),
                expected: graph.num_data(),
            });
        }
        let vertex_weights: Option<Vec<u32>> = if graph.has_weights() {
            Some(
                (0..graph.num_data())
                    .map(|v| graph.data_weight(v as DataId))
                    .collect(),
            )
        } else {
            None
        };
        let mut bucket_weights = vec![0u64; k as usize];
        for (v, &b) in assignment.iter().enumerate() {
            if b >= k {
                return Err(GraphError::BucketOutOfRange {
                    bucket: b,
                    num_buckets: k,
                });
            }
            let w = vertex_weights.as_ref().map_or(1, |ws| ws[v]) as u64;
            bucket_weights[b as usize] += w;
        }
        let least_loaded = first_min_bucket(&bucket_weights);
        Ok(Partition {
            assignment,
            num_buckets: k,
            total_weight: bucket_weights.iter().sum(),
            least_loaded,
            bucket_weights,
            vertex_weights,
        })
    }

    /// Number of buckets `k`.
    #[inline]
    pub fn num_buckets(&self) -> u32 {
        self.num_buckets
    }

    /// Number of data vertices covered by the partition.
    #[inline]
    pub fn num_data(&self) -> usize {
        self.assignment.len()
    }

    /// Current bucket of data vertex `v`.
    #[inline]
    pub fn bucket_of(&self, v: DataId) -> BucketId {
        self.assignment[v as usize]
    }

    /// Weight of vertex `v` (1 unless the source graph carried weights).
    #[inline]
    pub fn vertex_weight(&self, v: DataId) -> u64 {
        self.vertex_weights
            .as_ref()
            .map_or(1, |w| w[v as usize] as u64)
    }

    /// Total vertex weight currently in bucket `b`.
    #[inline]
    pub fn bucket_weight(&self, b: BucketId) -> u64 {
        self.bucket_weights[b as usize]
    }

    /// Slice of all bucket weights.
    #[inline]
    pub fn bucket_weights(&self) -> &[u64] {
        &self.bucket_weights
    }

    /// Total weight across all buckets. O(1): the total is invariant under moves and cached at
    /// construction.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// The lowest-indexed bucket of minimum weight, maintained incrementally (O(1) accessor).
    ///
    /// Equals `(0..k).min_by_key(|&b| bucket_weight(b))` at all times; the refinement loop
    /// reads it once per gain sweep instead of rescanning all `k` buckets.
    #[inline]
    pub fn least_loaded_bucket(&self) -> BucketId {
        self.least_loaded
    }

    /// Read-only view of the full assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[BucketId] {
        &self.assignment
    }

    /// Consumes the partition, returning the raw assignment vector.
    pub fn into_assignment(self) -> Vec<BucketId> {
        self.assignment
    }

    /// Moves vertex `v` to bucket `b`, updating bucket weights. A no-op if `v` is already
    /// in `b`. Returns the previous bucket.
    pub fn assign(&mut self, v: DataId, b: BucketId) -> BucketId {
        let old = self.assignment[v as usize];
        if old != b {
            let w = self.vertex_weight(v);
            self.bucket_weights[old as usize] -= w;
            self.bucket_weights[b as usize] += w;
            self.assignment[v as usize] = b;
            if b == self.least_loaded {
                // The least-loaded bucket gained weight; the minimum may now sit anywhere.
                self.least_loaded = first_min_bucket(&self.bucket_weights);
            } else if (self.bucket_weights[old as usize], old)
                < (
                    self.bucket_weights[self.least_loaded as usize],
                    self.least_loaded,
                )
            {
                // Only the shrinking bucket can beat (or tie at a lower index) the incumbent:
                // every other weight is unchanged, so the lexicographic check suffices.
                self.least_loaded = old;
            }
        }
        old
    }

    /// The maximum allowed bucket weight under imbalance ratio `epsilon`:
    /// `⌊(1 + ε) · ⌈total / k⌉⌋` — the usual hypergraph-partitioning convention, which keeps
    /// perfectly balanced partitions feasible when `k` does not divide the total weight.
    pub fn max_allowed_weight(&self, epsilon: f64) -> u64 {
        let ideal = (self.total_weight() as f64 / self.num_buckets as f64).ceil();
        ((1.0 + epsilon) * ideal).floor() as u64
    }

    /// Whether every bucket satisfies the balance constraint for the given `epsilon`.
    pub fn is_balanced(&self, epsilon: f64) -> bool {
        let cap = self.max_allowed_weight(epsilon);
        self.bucket_weights.iter().all(|&w| w <= cap)
    }

    /// The realized imbalance: `max_i |V_i| / (total / k) − 1`. Zero for a perfectly balanced
    /// partition; may be negative only when some buckets are empty and `k` does not divide the
    /// total weight (clamped to 0 in that case).
    pub fn imbalance(&self) -> f64 {
        let total = self.total_weight();
        if total == 0 {
            return 0.0;
        }
        let ideal = total as f64 / self.num_buckets as f64;
        let max = *self.bucket_weights.iter().max().unwrap_or(&0) as f64;
        (max / ideal - 1.0).max(0.0)
    }

    /// Ids of the vertices currently assigned to bucket `b`.
    pub fn bucket_members(&self, b: BucketId) -> Vec<DataId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &bb)| bb == b)
            .map(|(v, _)| v as DataId)
            .collect()
    }

    /// Splits the vertex ids by bucket, returning `k` membership vectors in one pass.
    pub fn members_by_bucket(&self) -> Vec<Vec<DataId>> {
        let mut members = vec![Vec::new(); self.num_buckets as usize];
        for (v, &b) in self.assignment.iter().enumerate() {
            members[b as usize].push(v as DataId);
        }
        members
    }

    /// Remaps every bucket id through `f`, producing a partition with `new_k` buckets.
    /// Used by recursive bisection to embed per-subproblem buckets into the global numbering.
    ///
    /// # Panics
    /// Panics (in debug builds) if `f` maps any vertex to a bucket `>= new_k`.
    pub fn remap_buckets<F>(&self, new_k: u32, f: F) -> Partition
    where
        F: Fn(DataId, BucketId) -> BucketId,
    {
        let mut bucket_weights = vec![0u64; new_k as usize];
        let mut assignment = Vec::with_capacity(self.assignment.len());
        for (v, &b) in self.assignment.iter().enumerate() {
            let nb = f(v as DataId, b);
            debug_assert!(nb < new_k);
            bucket_weights[nb as usize] += self.vertex_weight(v as DataId);
            assignment.push(nb);
        }
        let least_loaded = first_min_bucket(&bucket_weights);
        Partition {
            assignment,
            num_buckets: new_k,
            total_weight: bucket_weights.iter().sum(),
            least_loaded,
            bucket_weights,
            vertex_weights: self.vertex_weights.clone(),
        }
    }

    /// Number of vertices whose bucket differs between `self` and `other`.
    ///
    /// # Panics
    /// Panics if the two partitions cover a different number of vertices.
    pub fn hamming_distance(&self, other: &Partition) -> usize {
        assert_eq!(self.assignment.len(), other.assignment.len());
        self.assignment
            .iter()
            .zip(other.assignment.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

/// The lowest-indexed bucket attaining the minimum weight (what
/// `(0..k).min_by_key(|&b| weights[b])` returns).
fn first_min_bucket(weights: &[u64]) -> BucketId {
    let mut best = 0usize;
    for (b, &w) in weights.iter().enumerate().skip(1) {
        if w < weights[best] {
            best = b;
        }
    }
    best as BucketId
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn chain_graph(n: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n.saturating_sub(1) {
            b.add_query([i, i + 1]);
        }
        b.ensure_data_count(n as usize);
        b.build().unwrap()
    }

    #[test]
    fn uniform_partition_places_everything_in_bucket_zero() {
        let g = chain_graph(10);
        let p = Partition::new_uniform(&g, 4).unwrap();
        assert_eq!(p.num_buckets(), 4);
        assert_eq!(p.bucket_weight(0), 10);
        assert_eq!(p.bucket_weight(1), 0);
        assert!(p.assignment().iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_buckets_is_rejected() {
        let g = chain_graph(3);
        assert!(Partition::new_uniform(&g, 0).is_err());
        assert!(Partition::from_assignment(&g, 0, vec![0, 0, 0]).is_err());
    }

    #[test]
    fn random_partition_is_roughly_balanced_and_seeded() {
        let g = chain_graph(10_000);
        let mut rng = Pcg64::seed_from_u64(42);
        let p = Partition::new_random(&g, 4, &mut rng).unwrap();
        // With 10k vertices and 4 buckets, each bucket should be within a few percent of 2500.
        for b in 0..4 {
            let w = p.bucket_weight(b) as f64;
            assert!((w - 2500.0).abs() < 250.0, "bucket {b} weight {w}");
        }
        // Determinism: the same seed yields the same partition.
        let mut rng2 = Pcg64::seed_from_u64(42);
        let p2 = Partition::new_random(&g, 4, &mut rng2).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn assign_updates_weights_incrementally() {
        let g = chain_graph(6);
        let mut p = Partition::new_uniform(&g, 3).unwrap();
        p.assign(0, 1);
        p.assign(1, 2);
        p.assign(2, 2);
        assert_eq!(p.bucket_weight(0), 3);
        assert_eq!(p.bucket_weight(1), 1);
        assert_eq!(p.bucket_weight(2), 2);
        // Re-assigning to the same bucket is a no-op.
        let old = p.assign(2, 2);
        assert_eq!(old, 2);
        assert_eq!(p.bucket_weight(2), 2);
        assert_eq!(p.total_weight(), 6);
    }

    #[test]
    fn from_assignment_validates_input() {
        let g = chain_graph(4);
        assert!(Partition::from_assignment(&g, 2, vec![0, 1, 0]).is_err());
        assert!(Partition::from_assignment(&g, 2, vec![0, 1, 0, 5]).is_err());
        let p = Partition::from_assignment(&g, 2, vec![0, 1, 0, 1]).unwrap();
        assert_eq!(p.bucket_weight(0), 2);
        assert_eq!(p.bucket_weight(1), 2);
    }

    #[test]
    fn weighted_vertices_affect_bucket_weights() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 2]);
        b.set_data_weights(vec![10, 1, 1]);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, 2, vec![0, 1, 1]).unwrap();
        assert_eq!(p.bucket_weight(0), 10);
        assert_eq!(p.bucket_weight(1), 2);
        assert_eq!(p.vertex_weight(0), 10);
        assert!(p.imbalance() > 0.5);
    }

    #[test]
    fn balance_checks_follow_epsilon() {
        let g = chain_graph(8);
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 0, 0, 1, 1, 1]).unwrap();
        // sizes 5 and 3, ideal 4 -> imbalance 0.25
        assert!((p.imbalance() - 0.25).abs() < 1e-12);
        assert!(!p.is_balanced(0.1));
        assert!(p.is_balanced(0.25));
        assert!(p.is_balanced(0.5));
    }

    #[test]
    fn members_and_remap() {
        let g = chain_graph(6);
        let p = Partition::from_assignment(&g, 2, vec![0, 1, 0, 1, 0, 1]).unwrap();
        assert_eq!(p.bucket_members(0), vec![0, 2, 4]);
        let by_bucket = p.members_by_bucket();
        assert_eq!(by_bucket[1], vec![1, 3, 5]);
        // Remap into 4 buckets: bucket b of vertex v becomes 2*b + (v % 2 == 0 ? 0 : 1)... keep
        // simple: shift by 2.
        let remapped = p.remap_buckets(4, |_, b| b + 2);
        assert_eq!(remapped.num_buckets(), 4);
        assert_eq!(remapped.bucket_weight(2), 3);
        assert_eq!(remapped.bucket_weight(3), 3);
        assert_eq!(remapped.bucket_weight(0), 0);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let g = chain_graph(4);
        let p1 = Partition::from_assignment(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let p2 = Partition::from_assignment(&g, 2, vec![0, 1, 1, 0]).unwrap();
        assert_eq!(p1.hamming_distance(&p2), 2);
        assert_eq!(p1.hamming_distance(&p1), 0);
    }

    #[test]
    fn least_loaded_matches_full_scan_under_random_moves() {
        let g = chain_graph(200);
        let mut rng = Pcg64::seed_from_u64(17);
        let mut p = Partition::new_random(&g, 7, &mut rng).unwrap();
        let scan = |p: &Partition| {
            (0..p.num_buckets())
                .min_by_key(|&b| p.bucket_weight(b))
                .unwrap()
        };
        assert_eq!(p.least_loaded_bucket(), scan(&p));
        // Random move sequence, including moves into and out of the least-loaded bucket.
        for step in 0..2_000u64 {
            let v = (step.wrapping_mul(48271) % 200) as DataId;
            let b = ((step.wrapping_mul(16807) >> 3) % 7) as BucketId;
            p.assign(v, b);
            assert_eq!(p.least_loaded_bucket(), scan(&p), "step {step}");
        }
        assert_eq!(p.total_weight(), 200);
    }

    #[test]
    fn least_loaded_breaks_ties_by_lowest_index() {
        let g = chain_graph(6);
        // Weights 2/2/2: the scan convention picks bucket 0.
        let p = Partition::from_assignment(&g, 3, vec![0, 0, 1, 1, 2, 2]).unwrap();
        assert_eq!(p.least_loaded_bucket(), 0);
        // Weights 3/1/2: unique minimum.
        let p = Partition::from_assignment(&g, 3, vec![0, 0, 0, 1, 2, 2]).unwrap();
        assert_eq!(p.least_loaded_bucket(), 1);
        // A decrement that ties a higher-indexed bucket with the incumbent keeps the incumbent.
        let mut p = Partition::from_assignment(&g, 3, vec![0, 0, 1, 2, 2, 2]).unwrap();
        assert_eq!(p.least_loaded_bucket(), 1);
        p.assign(5, 0); // weights 3/1/2 -> 3/1/2? no: 2/1/3 -> after move 3/1/2
        assert_eq!(p.least_loaded_bucket(), 1);
    }

    #[test]
    fn total_weight_is_cached_and_invariant_under_moves() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 2]);
        b.set_data_weights(vec![10, 1, 1]);
        let g = b.build().unwrap();
        let mut p = Partition::from_assignment(&g, 2, vec![0, 1, 1]).unwrap();
        assert_eq!(p.total_weight(), 12);
        p.assign(0, 1);
        p.assign(1, 0);
        assert_eq!(p.total_weight(), 12);
        assert_eq!(p.bucket_weights().iter().sum::<u64>(), 12);
    }

    #[test]
    fn max_allowed_weight_uses_ceiled_ideal() {
        let g = chain_graph(10);
        let p = Partition::new_uniform(&g, 3).unwrap();
        // ideal = ceil(10/3) = 4, floor(1.05 * 4) = 4
        assert_eq!(p.max_allowed_weight(0.05), 4);
        assert_eq!(p.max_allowed_weight(0.0), 4);
        assert_eq!(p.max_allowed_weight(0.5), 6);
    }
}
