//! Dataset statistics in the shape of Table 1 of the SHP paper.

use crate::bipartite::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a bipartite graph / hypergraph, matching the columns of Table 1
/// (`|Q|`, `|D|`, `|E|`) plus degree information useful for sanity-checking generators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of query vertices (hyperedges).
    pub num_queries: usize,
    /// Number of data vertices.
    pub num_data: usize,
    /// Number of bipartite edges (pins).
    pub num_edges: usize,
    /// Average hyperedge size.
    pub avg_query_degree: f64,
    /// Average data-vertex degree.
    pub avg_data_degree: f64,
    /// Largest hyperedge.
    pub max_query_degree: usize,
    /// Largest data-vertex degree.
    pub max_data_degree: usize,
    /// Number of data vertices incident to no query.
    pub isolated_data: usize,
    /// Number of queries of degree 0 or 1 (they do not contribute to fanout optimization and
    /// are removed in the paper's experiments).
    pub trivial_queries: usize,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(graph: &BipartiteGraph) -> Self {
        let isolated_data = graph
            .data_vertices()
            .filter(|&v| graph.data_degree(v) == 0)
            .count();
        let trivial_queries = graph
            .queries()
            .filter(|&q| graph.query_degree(q) <= 1)
            .count();
        GraphStats {
            num_queries: graph.num_queries(),
            num_data: graph.num_data(),
            num_edges: graph.num_edges(),
            avg_query_degree: graph.avg_query_degree(),
            avg_data_degree: graph.avg_data_degree(),
            max_query_degree: graph.max_query_degree(),
            max_data_degree: graph.max_data_degree(),
            isolated_data,
            trivial_queries,
        }
    }

    /// Renders a single row in the style of Table 1: `|Q| |D| |E|`.
    pub fn table1_row(&self, name: &str) -> String {
        format!(
            "{:<18} {:>12} {:>12} {:>14}",
            name, self.num_queries, self.num_data, self.num_edges
        )
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|Q|={} |D|={} |E|={} avg_q_deg={:.2} avg_d_deg={:.2} max_q_deg={} max_d_deg={}",
            self.num_queries,
            self.num_data,
            self.num_edges,
            self.avg_query_degree,
            self.avg_data_degree,
            self.max_query_degree,
            self.max_data_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_match_manual_counts() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 5]);
        b.add_query([0u32, 1, 2, 3]);
        b.add_query([3u32, 4, 5]);
        b.add_query([2u32]); // trivial
        b.ensure_data_count(8); // vertices 6 and 7 isolated
        let g = b.build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_queries, 4);
        assert_eq!(s.num_data, 8);
        assert_eq!(s.num_edges, 11);
        assert_eq!(s.max_query_degree, 4);
        assert_eq!(s.isolated_data, 2);
        assert_eq!(s.trivial_queries, 1);
        assert!((s.avg_query_degree - 11.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn table1_row_and_display_render() {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1]);
        let g = b.build().unwrap();
        let s = GraphStats::compute(&g);
        let row = s.table1_row("toy");
        assert!(row.contains("toy"));
        assert!(row.contains('2'));
        assert!(s.to_string().contains("|E|=2"));
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = GraphBuilder::new().build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_queries, 0);
        assert_eq!(s.num_data, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.avg_query_degree, 0.0);
        assert_eq!(s.max_data_degree, 0);
    }
}
