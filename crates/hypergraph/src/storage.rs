//! Owned-vs-borrowed backing storage for the CSR sections of a
//! [`BipartiteGraph`](crate::BipartiteGraph).
//!
//! A [`Section<T>`] is either a heap-owned `Vec<T>` (the classic path: builders, text
//! readers, the copying `.shpb` reader) or a typed window into a shared read-only
//! [`MmapRegion`] (the zero-copy `.shpb` path). Both variants dereference to `&[T]`, so the
//! graph's accessors are storage-agnostic.
//!
//! # Safety
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate root carries
//! `#![deny(unsafe_code)]`; this module is opted out via `#[allow]` on its declaration).
//! The two unsafe surfaces are:
//!
//! * the `mmap(2)`/`munmap(2)` syscalls behind [`MmapRegion`], and
//! * `slice::from_raw_parts` in [`Section::as_slice`].
//!
//! The soundness argument for the slice reinterpretation:
//!
//! * **Bounds** — [`Section::from_region`] slices `region.bytes()[byte_offset..][..byte_len]`
//!   up front, so an out-of-bounds window panics at construction instead of producing a
//!   dangling view.
//! * **Alignment & endianness** — the borrowed variant is only constructed when the window's
//!   base pointer is aligned for `T` *and* the target is little-endian (the `.shpb` on-disk
//!   byte order). Otherwise the constructor decodes into an owned `Vec<T>` — the documented
//!   fallback copy.
//! * **Validity** — `T` is `u32`/`u64` ([`LeScalar`] is only implemented for those), for
//!   which every bit pattern is a valid value.
//! * **Lifetime** — the borrowed variant holds an `Arc<MmapRegion>`, so the mapping outlives
//!   every view; `MmapRegion` unmaps only on drop of the last `Arc`.
//! * **Immutability** — the region is mapped `PROT_READ` + `MAP_PRIVATE`: writes through the
//!   mapping are impossible and writes to the underlying file by other processes are not
//!   reflected (private copy-on-write semantics). The heap fallback is a private `Vec<u8>`.

use std::path::Path;
use std::sync::Arc;

#[cfg(unix)]
mod sys {
    //! Minimal raw bindings for the two syscalls we need. `std` already links the platform
    //! libc, so the symbols resolve without adding a dependency.
    use std::ffi::{c_int, c_void};

    pub(super) const PROT_READ: c_int = 1;
    pub(super) const MAP_PRIVATE: c_int = 0x02;

    extern "C" {
        pub(super) fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub(super) fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, immutable byte region backing borrowed graph sections: a `PROT_READ`
/// `MAP_PRIVATE` file mapping on Unix, or a plain heap copy of the file where mapping is
/// unavailable (non-Unix targets, or an `mmap` failure at open time).
pub(crate) struct MmapRegion {
    /// Base of the live mapping; null when `bytes` come from the heap fallback.
    ptr: *const u8,
    /// Mapped length in bytes (only meaningful when `ptr` is non-null).
    len: usize,
    /// Heap fallback storage; empty when the region is a real mapping.
    backing: Vec<u8>,
}

// SAFETY: the region is read-only and never mutated after construction — the mapping is
// PROT_READ|MAP_PRIVATE and the fallback Vec is never written again — so shared references
// from any thread are fine and the owner can move between threads.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Maps `path` read-only. Falls back to reading the file into a heap buffer when memory
    /// mapping is unavailable; [`MmapRegion::is_mapped`] reports which one happened.
    pub(crate) fn map_file(path: &Path) -> std::io::Result<MmapRegion> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            // Zero-length mmap is EINVAL on Linux; an empty region is representable as the
            // (empty) heap fallback.
            if len > 0 && len <= usize::MAX as u64 {
                let len = len as usize;
                // SAFETY: requesting a fresh PROT_READ|MAP_PRIVATE mapping of a file we hold
                // open; the kernel picks the address. Failure is reported as MAP_FAILED and
                // handled below.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                let map_failed = usize::MAX as *mut std::ffi::c_void;
                if ptr != map_failed && !ptr.is_null() {
                    return Ok(MmapRegion {
                        ptr: ptr as *const u8,
                        len,
                        backing: Vec::new(),
                    });
                }
            }
        }
        let backing = std::fs::read(path)?;
        Ok(MmapRegion {
            ptr: std::ptr::null(),
            len: 0,
            backing,
        })
    }

    /// The full region contents.
    #[inline]
    pub(crate) fn bytes(&self) -> &[u8] {
        if self.ptr.is_null() {
            &self.backing
        } else {
            // SAFETY: `ptr` is the base of a live PROT_READ mapping of exactly `len` bytes,
            // valid until `self` is dropped.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    /// Whether this region is a real memory mapping (false: heap fallback).
    pub(crate) fn is_mapped(&self) -> bool {
        !self.ptr.is_null()
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        if !self.ptr.is_null() {
            // SAFETY: unmapping exactly the region returned by mmap in map_file; no views
            // outlive self (they hold an Arc keeping self alive).
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A fixed-width little-endian scalar that a [`Section`] can view or decode. Implemented for
/// exactly the `.shpb` section element types (`u32`, `u64`) — both admit every bit pattern,
/// which [`Section::as_slice`]'s safety relies on.
pub(crate) trait LeScalar: Copy + PartialEq + std::fmt::Debug {
    /// Decodes one value from its little-endian byte representation.
    fn from_le(bytes: &[u8]) -> Self;
}

impl LeScalar for u32 {
    #[inline]
    fn from_le(bytes: &[u8]) -> Self {
        u32::from_le_bytes(bytes.try_into().expect("chunk of exactly 4 bytes"))
    }
}

impl LeScalar for u64 {
    #[inline]
    fn from_le(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes.try_into().expect("chunk of exactly 8 bytes"))
    }
}

/// One CSR section: either heap-owned or a typed borrowed window into an [`MmapRegion`].
pub(crate) enum Section<T: LeScalar> {
    /// Heap-owned storage (builders, text readers, the copying binary reader, and the
    /// alignment/endianness fallback of [`Section::from_region`]).
    Owned(Vec<T>),
    /// Zero-copy view of `len` elements starting `byte_offset` bytes into the shared region.
    Mapped {
        /// Shared ownership of the mapping keeps the view alive.
        region: Arc<MmapRegion>,
        /// Byte offset of the first element; aligned for `T` (checked at construction).
        byte_offset: usize,
        /// Number of `T` elements in the view.
        len: usize,
    },
}

impl<T: LeScalar> Section<T> {
    /// Creates a section over `len` elements at `byte_offset` in `region`.
    ///
    /// Returns the zero-copy `Mapped` variant when the window is aligned for `T` on a
    /// little-endian target; otherwise decodes the bytes into an `Owned` copy (the documented
    /// fallback — e.g. the `u64` data-offsets section of a `.shpb` file with an odd number of
    /// pins is only 4-byte-aligned).
    ///
    /// # Panics
    /// Panics if the window is out of bounds; callers must have validated the container
    /// layout against the region length first.
    pub(crate) fn from_region(region: &Arc<MmapRegion>, byte_offset: usize, len: usize) -> Self {
        let byte_len = len * std::mem::size_of::<T>();
        let window = &region.bytes()[byte_offset..byte_offset + byte_len];
        let aligned = (window.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>());
        if cfg!(target_endian = "little") && aligned {
            Section::Mapped {
                region: Arc::clone(region),
                byte_offset,
                len,
            }
        } else {
            Section::Owned(
                window
                    .chunks_exact(std::mem::size_of::<T>())
                    .map(T::from_le)
                    .collect(),
            )
        }
    }

    /// The section contents as a slice, regardless of backing.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            Section::Owned(v) => v,
            Section::Mapped {
                region,
                byte_offset,
                len,
            } => {
                // SAFETY: see the module-level safety argument — bounds and alignment were
                // checked in from_region, T admits all bit patterns, the Arc keeps the
                // read-only region alive and immutable for the lifetime of the borrow.
                unsafe {
                    std::slice::from_raw_parts(
                        region.bytes().as_ptr().add(*byte_offset) as *const T,
                        *len,
                    )
                }
            }
        }
    }

    /// Heap bytes owned by this section (0 for a borrowed view).
    pub(crate) fn owned_bytes(&self) -> usize {
        match self {
            Section::Owned(v) => v.len() * std::mem::size_of::<T>(),
            Section::Mapped { .. } => 0,
        }
    }

    /// File-backed bytes viewed by this section (0 for owned storage).
    pub(crate) fn mapped_bytes(&self) -> usize {
        match self {
            Section::Owned(_) => 0,
            Section::Mapped { len, .. } => len * std::mem::size_of::<T>(),
        }
    }

    /// Whether this section borrows from a mapped region.
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self, Section::Mapped { .. })
    }
}

impl<T: LeScalar> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Self {
        Section::Owned(v)
    }
}

impl<T: LeScalar> std::ops::Deref for Section<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: LeScalar> Clone for Section<T> {
    fn clone(&self) -> Self {
        match self {
            Section::Owned(v) => Section::Owned(v.clone()),
            Section::Mapped {
                region,
                byte_offset,
                len,
            } => Section::Mapped {
                region: Arc::clone(region),
                byte_offset: *byte_offset,
                len: *len,
            },
        }
    }
}

/// Sections compare by contents, so an owned graph and a mapped view of its serialization
/// are equal.
impl<T: LeScalar> PartialEq for Section<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: LeScalar> Eq for Section<T> {}

impl<T: LeScalar> std::fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_mapped() {
            f.write_str("Mapped")?;
        }
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn region_from_bytes(bytes: &[u8]) -> Arc<MmapRegion> {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "shp_storage_test_{}_{}",
            std::process::id(),
            bytes.len()
        ));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        drop(f);
        let region = Arc::new(MmapRegion::map_file(&path).unwrap());
        std::fs::remove_file(&path).ok();
        region
    }

    #[test]
    fn aligned_u32_window_is_borrowed_and_decodes() {
        let mut bytes = Vec::new();
        for v in [7u32, 11, 13, 17] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let region = region_from_bytes(&bytes);
        let s = Section::<u32>::from_region(&region, 0, 4);
        assert_eq!(s.as_slice(), &[7, 11, 13, 17]);
        if region.is_mapped() {
            assert!(s.is_mapped(), "page-aligned window must borrow");
            assert_eq!(s.owned_bytes(), 0);
            assert_eq!(s.mapped_bytes(), 16);
        }
    }

    #[test]
    fn misaligned_u64_window_falls_back_to_owned_copy() {
        // 4 bytes of padding puts a u64 window at alignment 4, forcing the decode copy.
        let mut bytes = vec![0u8; 4];
        for v in [1u64, u64::MAX, 42] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let region = region_from_bytes(&bytes);
        let s = Section::<u64>::from_region(&region, 4, 3);
        assert_eq!(s.as_slice(), &[1, u64::MAX, 42]);
        if region.is_mapped() {
            assert!(!s.is_mapped(), "misaligned window must be copied");
            assert_eq!(s.mapped_bytes(), 0);
            assert_eq!(s.owned_bytes(), 24);
        }
    }

    #[test]
    fn sections_compare_by_contents_across_backings() {
        let bytes: Vec<u8> = [3u32, 1, 4].iter().flat_map(|v| v.to_le_bytes()).collect();
        let region = region_from_bytes(&bytes);
        let mapped = Section::<u32>::from_region(&region, 0, 3);
        let owned = Section::Owned(vec![3u32, 1, 4]);
        assert_eq!(mapped, owned);
        assert_eq!(mapped.clone(), owned.clone());
    }

    #[test]
    fn view_survives_source_arc_drop() {
        let bytes: Vec<u8> = (0..64u32).flat_map(|v| v.to_le_bytes()).collect();
        let region = region_from_bytes(&bytes);
        let s = Section::<u32>::from_region(&region, 0, 64);
        drop(region); // the section's own Arc must keep the mapping alive
        assert_eq!(s.as_slice()[63], 63);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_window_panics_at_construction() {
        let region = region_from_bytes(&[0u8; 8]);
        let _ = Section::<u64>::from_region(&region, 0, 2);
    }
}
