//! Warm-starting a serving tier from on-disk artifacts.
//!
//! A production restart should not re-derive its world: the graph can be loaded from the
//! `.shpb` compact binary container (skipping text parsing entirely — see
//! [`shp_hypergraph::io::shpb`]) and the placement from a previously computed partition
//! file, so [`crate::ServingEngine::new`] starts serving on the last known-good placement
//! immediately while any repartition runs off the serving path and lands through
//! [`crate::ServingEngine::install_partition`].
//!
//! Loading is an IO concern, so failures are [`GraphError`]s (typed parse/binary errors with
//! line numbers or section diagnostics), which the CLI composes into `ShpError` via `?`.

use shp_hypergraph::io;
use shp_hypergraph::{BipartiteGraph, GraphError, Partition};
use std::path::Path;

/// Everything needed to warm-start a [`crate::ServingEngine`] from disk.
#[derive(Debug)]
pub struct WarmStart {
    /// The serving graph (key universe + multiget shapes).
    pub graph: BipartiteGraph,
    /// The placement to start serving under, when a partition file was supplied.
    pub partition: Option<Partition>,
}

/// Loads a warm start: a graph in any supported format (autodetected; `.shpb` skips parsing
/// entirely) and optionally a partition file validated against that graph and `k`.
///
/// Text formats are parsed with up to `workers` threads; the loaded graph is bit-identical
/// for every worker count.
pub fn load_warm_start<P: AsRef<Path>, Q: AsRef<Path>>(
    graph_path: P,
    partition_path: Option<Q>,
    k: u32,
    workers: usize,
) -> Result<WarmStart, GraphError> {
    load_warm_start_with(graph_path, partition_path, k, workers, false)
}

/// Like [`load_warm_start`], optionally memory-mapping the graph instead of reading it.
///
/// With `mmap = true` the graph file must be a `.shpb` container and is opened through
/// [`io::map_shpb_file`]: validation touches only the header and offset tables plus one
/// sequential checksum pass, and the adjacency sections stay on disk behind borrowed views —
/// the kernel pages them in on demand. A restarting serving tier thus reaches "answering
/// multigets" without first copying a multi-gigabyte graph through the heap; pages the
/// traffic never touches are never resident. The partition file is read and validated the
/// same way in both modes.
pub fn load_warm_start_with<P: AsRef<Path>, Q: AsRef<Path>>(
    graph_path: P,
    partition_path: Option<Q>,
    k: u32,
    workers: usize,
    mmap: bool,
) -> Result<WarmStart, GraphError> {
    let graph = if mmap {
        io::map_shpb_file(graph_path)?
    } else {
        io::read_graph_file_with(graph_path, workers)?
    };
    let partition = match partition_path {
        Some(path) => Some(io::read_partition_file(&graph, k, path)?),
        None => None,
    };
    Ok(WarmStart { graph, partition })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, ServingEngine};
    use shp_hypergraph::GraphBuilder;

    fn two_communities() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_query([0u32, 1, 2]);
        b.add_query([3u32, 4, 5]);
        b.build().unwrap()
    }

    #[test]
    fn warm_start_from_shpb_graph_and_partition_file_serves_immediately() {
        let dir = std::env::temp_dir().join(format!("shp-bootstrap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.shpb");
        let part_path = dir.join("g.part");

        let graph = two_communities();
        io::write_shpb_file(&graph, &graph_path).unwrap();
        let aligned = Partition::from_assignment(&graph, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        io::write_partition_file(&aligned, &part_path).unwrap();

        let warm = load_warm_start(&graph_path, Some(&part_path), 2, 4).unwrap();
        assert_eq!(warm.graph, graph);
        let partition = warm.partition.expect("partition file was supplied");
        assert_eq!(partition, aligned);

        // The loaded placement drives a live engine: community-aligned ⇒ fanout 1.
        let engine = ServingEngine::new(&partition, EngineConfig::default()).unwrap();
        let result = engine.multiget(warm.graph.query_neighbors(0)).unwrap();
        assert_eq!(result.fanout, 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_start_without_partition_loads_only_the_graph() {
        let dir = std::env::temp_dir().join(format!("shp-bootstrap-np-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.hgr");
        io::write_hmetis_file(&two_communities(), &graph_path).unwrap();
        let warm = load_warm_start(&graph_path, None::<&Path>, 2, 1).unwrap();
        assert!(warm.partition.is_none());
        assert_eq!(warm.graph.num_data(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mapped_warm_start_serves_the_same_answers_without_owning_the_graph() {
        let dir = std::env::temp_dir().join(format!("shp-bootstrap-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.shpb");
        let part_path = dir.join("g.part");

        let graph = two_communities();
        io::write_shpb_file(&graph, &graph_path).unwrap();
        let aligned = Partition::from_assignment(&graph, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        io::write_partition_file(&aligned, &part_path).unwrap();

        let warm = load_warm_start_with(&graph_path, Some(&part_path), 2, 1, true).unwrap();
        assert_eq!(warm.graph, graph);
        assert!(warm.graph.is_mapped());
        assert_eq!(
            warm.graph.memory_bytes(),
            0,
            "mapped graph owns no CSR heap"
        );

        let partition = warm.partition.expect("partition file was supplied");
        let engine = ServingEngine::new(&partition, EngineConfig::default()).unwrap();
        let result = engine.multiget(warm.graph.query_neighbors(0)).unwrap();
        assert_eq!(result.fanout, 1);

        // mmap mode requires a binary container: a text graph is a typed error, not a panic.
        let text_path = dir.join("g.hgr");
        io::write_hmetis_file(&graph, &text_path).unwrap();
        let err = load_warm_start_with(&text_path, None::<&Path>, 2, 1, true).unwrap_err();
        assert!(matches!(err, GraphError::Binary { .. }), "{err:?}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_start_surfaces_typed_graph_errors() {
        let dir = std::env::temp_dir().join(format!("shp-bootstrap-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.shpb");
        std::fs::write(&graph_path, b"SHPB but truncated").unwrap();
        let err = load_warm_start(&graph_path, None::<&Path>, 2, 1).unwrap_err();
        assert!(matches!(err, GraphError::Binary { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
