//! A hot-key result cache with hit/miss accounting.
//!
//! Social multiget workloads are heavily skewed: a small set of hot keys (popular users)
//! appears in a large fraction of queries. Caching their records in the serving tier cuts both
//! shard load and effective fanout — a query whose remaining misses all land on one shard
//! contacts one shard instead of several. The cache is segmented (16 lock stripes) so
//! concurrent clients rarely contend, and eviction is per-segment FIFO: simple, O(1), and good
//! enough for a skewed key distribution where hot keys are re-inserted immediately after any
//! eviction.
//!
//! Cached values are placement-independent (a repartition moves records between shards but
//! never changes them), so entries survive live partition swaps untouched.

use shp_hypergraph::DataId;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NUM_SEGMENTS: usize = 16;

#[derive(Debug, Default)]
struct Segment {
    map: HashMap<DataId, u64>,
    order: VecDeque<DataId>,
}

/// Segmented FIFO cache of `key -> record` with hit/miss counters.
#[derive(Debug)]
pub struct HotKeyCache {
    segments: Vec<Mutex<Segment>>,
    capacity_per_segment: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss counters of a [`HotKeyCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the shards.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl HotKeyCache {
    /// Creates a cache holding at most `capacity` records (rounded up to a multiple of the
    /// segment count; a capacity of 0 creates a cache that never stores anything).
    pub fn new(capacity: usize) -> Self {
        HotKeyCache {
            segments: (0..NUM_SEGMENTS)
                .map(|_| Mutex::new(Segment::default()))
                .collect(),
            capacity_per_segment: capacity.div_ceil(NUM_SEGMENTS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn segment(&self, key: DataId) -> &Mutex<Segment> {
        // Multiplicative hash so contiguous key ranges spread over segments.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.segments[h as usize % NUM_SEGMENTS]
    }

    /// Looks up one key, counting the outcome.
    pub fn get(&self, key: DataId) -> Option<u64> {
        let segment = self.segment(key).lock().expect("cache segment poisoned");
        match segment.map.get(&key).copied() {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a record, evicting the oldest entry of the key's segment when full.
    pub fn insert(&self, key: DataId, value: u64) {
        if self.capacity_per_segment == 0 {
            return;
        }
        let mut segment = self.segment(key).lock().expect("cache segment poisoned");
        if segment.map.insert(key, value).is_none() {
            segment.order.push_back(key);
            if segment.order.len() > self.capacity_per_segment {
                if let Some(evicted) = segment.order.pop_front() {
                    segment.map.remove(&evicted);
                }
            }
        }
    }

    /// Number of records currently cached.
    pub fn len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.lock().expect("cache segment poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = HotKeyCache::new(64);
        assert_eq!(cache.get(1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.get(2), None);
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 1, misses: 2 });
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let cache = HotKeyCache::new(0);
        cache.insert(1, 10);
        assert_eq!(cache.get(1), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_bounds_the_size() {
        let cache = HotKeyCache::new(NUM_SEGMENTS); // one record per segment
        for key in 0..1000u32 {
            cache.insert(key, key as u64);
        }
        assert!(cache.len() <= NUM_SEGMENTS);
    }

    #[test]
    fn reinserting_an_existing_key_updates_without_growth() {
        let cache = HotKeyCache::new(64);
        cache.insert(5, 1);
        cache.insert(5, 2);
        assert_eq!(cache.get(5), Some(2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn empty_stats_have_zero_hit_rate() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
